package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/odbis/odbis/internal/bus"
	"github.com/odbis/odbis/internal/etl"
	"github.com/odbis/odbis/internal/mddws"
	"github.com/odbis/odbis/internal/mddws/process"
	"github.com/odbis/odbis/internal/metamodel/cwm"
	"github.com/odbis/odbis/internal/olap"
	"github.com/odbis/odbis/internal/rules"
	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
	"github.com/odbis/odbis/internal/storage/orm"
	"github.com/odbis/odbis/internal/workload"
)

// starOfSize builds a conceptual star schema with d dimensions (3 levels
// and 2 attributes each) and one fact with d measures.
func starOfSize(d int) (cwm.StarSpec, error) {
	spec := cwm.StarSpec{Name: fmt.Sprintf("Star%d", d)}
	var dimNames []string
	for i := 0; i < d; i++ {
		name := fmt.Sprintf("Dim%02d", i)
		dimNames = append(dimNames, name)
		spec.Dimensions = append(spec.Dimensions, cwm.DimensionSpec{
			Name: name,
			Levels: []cwm.LevelSpec{
				{Name: fmt.Sprintf("L%d_coarse", i)},
				{Name: fmt.Sprintf("L%d_mid", i), Attributes: []cwm.AttributeSpec{
					{Name: fmt.Sprintf("attr%d_a", i)},
				}},
				{Name: fmt.Sprintf("L%d_fine", i), Attributes: []cwm.AttributeSpec{
					{Name: fmt.Sprintf("attr%d_b", i), Datatype: "number"},
				}},
			},
		})
	}
	fact := cwm.FactSpec{Name: "Fact", Dimensions: dimNames}
	for i := 0; i < d; i++ {
		fact.Measures = append(fact.Measures, cwm.MeasureSpec{Name: fmt.Sprintf("m%02d", i), Aggregation: "sum"})
	}
	spec.Facts = []cwm.FactSpec{fact}
	return spec, nil
}

// E3MDAPipeline exercises Fig. 2: the full CIM→PIM→PSM→code derivation
// swept over conceptual model sizes.
func E3MDAPipeline(quick bool) (*Table, error) {
	sizes := []int{2, 4, 8, 16}
	iters := 20
	if quick {
		sizes = []int{2, 4, 8}
		iters = 5
	}
	t := &Table{
		ID:      "E3 (Fig. 2)",
		Title:   "MDDWS derivation: CIM → PIM → PSM + ETL → artifacts",
		Headers: []string{"dimensions", "cim_elems", "psm_elems", "ddl_stmts", "avg_ms"},
		Claim:   "derivation cost grows roughly linearly with conceptual model size",
	}
	for _, d := range sizes {
		spec, err := starOfSize(d)
		if err != nil {
			return nil, err
		}
		cim, err := spec.Build()
		if err != nil {
			return nil, err
		}
		var result *mddws.BuildResult
		start := time.Now()
		for i := 0; i < iters; i++ {
			result, err = mddws.BuildFromConceptual(cim)
			if err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start) / time.Duration(iters)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d), fmt.Sprint(cim.Len()), fmt.Sprint(result.PSM.Len()),
			fmt.Sprint(len(result.Artifacts.DDL)), ms(elapsed),
		})
	}
	return t, nil
}

// E4Process exercises Fig. 3: a full 2TUP run per layer, swept over
// component counts (one realization iteration per component).
func E4Process(quick bool) (*Table, error) {
	counts := []int{1, 2, 4, 8}
	iters := 200
	if quick {
		iters = 50
	}
	t := &Table{
		ID:      "E4 (Fig. 3)",
		Title:   "2TUP engineering process: disciplines × iterations per layer",
		Headers: []string{"components", "steps", "avg_us_per_run", "us_per_step"},
		Claim:   "process bookkeeping is negligible and linear in iterations (5 realization steps per component)",
	}
	for _, n := range counts {
		var components []string
		for i := 0; i < n; i++ {
			components = append(components, fmt.Sprintf("component-%d", i))
		}
		var steps int
		start := time.Now()
		for i := 0; i < iters; i++ {
			run, err := process.NewRun("layer", components)
			if err != nil {
				return nil, err
			}
			if err := run.RunAll(nil); err != nil {
				return nil, err
			}
			steps, _ = run.Progress()
		}
		elapsed := time.Since(start)
		perRun := float64(elapsed.Microseconds()) / float64(iters)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(steps),
			fmt.Sprintf("%.1f", perRun),
			fmt.Sprintf("%.2f", perRun/float64(steps)),
		})
	}
	return t, nil
}

// E6Stack exercises Fig. 5: metadata round-trips through the integrated
// technical stack — direct ORM, plus rules firing, plus ESB routing.
func E6Stack(quick bool) (*Table, error) {
	iters := 2000
	if quick {
		iters = 300
	}
	e := storage.MustOpenMemory()
	defer e.Close()
	type metaObj struct {
		ID   int64 `orm:"id,pk"`
		Name string
		Size int64
	}
	mapper, err := orm.NewMapper[metaObj](e, "meta_objs")
	if err != nil {
		return nil, err
	}

	// Rules engine validating each object.
	eng, err := rules.NewEngine(rules.Rule{
		Name: "oversize",
		When: []rules.Condition{{Var: "o", Kind: "Meta", Where: "o.size > 500"}},
		Then: func(s *rules.Session, b rules.Bindings) error {
			s.Assert("Flag", map[string]storage.Value{"id": b["o"].Get("id")})
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	// ESB channel wrapping the same persist operation.
	esb := bus.New()
	esb.Subscribe("meta.save", func(m *bus.Message) (*bus.Message, error) {
		obj := m.Body.(metaObj)
		if err := mapper.Save(&obj); err != nil {
			return nil, err
		}
		return bus.NewMessage("ok"), nil
	})

	t := &Table{
		ID:      "E6 (Fig. 5)",
		Title:   "integrated technical stack: ORM round-trips, + rules, + ESB",
		Headers: []string{"configuration", "iters", "total_ms", "us_per_op"},
		Claim:   "rules and bus indirection add overhead proportional to the work they do, not an order of magnitude",
	}
	configs := []struct {
		name string
		fn   func(i int) error
	}{
		{"orm only", func(i int) error {
			obj := metaObj{ID: int64(i), Name: "o", Size: int64(i % 1000)}
			if err := mapper.Save(&obj); err != nil {
				return err
			}
			_, _, err := mapper.Get(int64(i))
			return err
		}},
		{"orm + rules", func(i int) error {
			obj := metaObj{ID: int64(i), Name: "o", Size: int64(i % 1000)}
			if err := mapper.Save(&obj); err != nil {
				return err
			}
			s := eng.NewSession()
			s.Assert("Meta", map[string]storage.Value{"id": obj.ID, "size": obj.Size})
			_, err := s.FireAll(context.Background(), 0)
			return err
		}},
		{"orm via bus", func(i int) error {
			_, err := esb.Send("meta.save", bus.NewMessage(metaObj{ID: int64(i), Name: "o", Size: int64(i % 1000)}))
			return err
		}},
	}
	for _, cfg := range configs {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := cfg.fn(i); err != nil {
				return nil, fmt.Errorf("E6 %s: %w", cfg.name, err)
			}
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			cfg.name, fmt.Sprint(iters), ms(elapsed),
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/float64(iters)),
		})
	}
	return t, nil
}

// E8ETL exercises §3.1's Integration Service: CSV → transform → load
// throughput across input sizes.
func E8ETL(quick bool) (*Table, error) {
	sizes := []int{1000, 10000, 100000}
	if quick {
		sizes = []int{1000, 10000}
	}
	t := &Table{
		ID:      "E8 (§3.1 IS)",
		Title:   "ETL pipeline: CSV parse → filter → derive → load",
		Headers: []string{"rows", "total_ms", "rows_per_sec"},
		Claim:   "load throughput is roughly constant per row (linear scaling in input size)",
	}
	for _, n := range sizes {
		csvData := workload.Healthcare{Rows: n}.AdmissionsCSV()
		e := storage.MustOpenMemory()
		pipe := &etl.Pipeline{
			Source: &etl.CSVSource{Data: csvData},
			Transforms: []etl.Transform{
				etl.Filter{Condition: "cost IS NOT NULL"},
				etl.Derive{Field: "cost_per_day", Expression: "cost / stay_days"},
			},
			Sink: &etl.TableSink{Engine: e, Table: "admissions", CreateTable: true},
		}
		start := time.Now()
		_, written, err := pipe.Run(context.Background())
		if err != nil {
			e.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(written), ms(elapsed), opsPerSec(written, elapsed),
		})
		e.Close()
	}
	return t, nil
}

// E10Metadata exercises §3.1's MDS under concurrent readers/writers.
func E10Metadata(quick bool) (*Table, error) {
	writers := 4
	readers := 8
	opsPer := 200
	if quick {
		opsPer = 50
	}
	p, admin, err := newPlatform()
	if err != nil {
		return nil, err
	}
	sess, err := provisionTenant(p, admin, "mds")
	if err != nil {
		return nil, err
	}
	if _, err := sess.Query(context.Background(), "CREATE TABLE t (x INT)"); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E10 (§3.1 MDS)",
		Title:   "metadata service: concurrent data-set CRUD + lookups",
		Headers: []string{"workload", "goroutines", "ops", "total_ms", "ops_per_sec"},
		Claim:   "the shared metadata repository sustains concurrent service traffic",
	}
	// Concurrent writers creating + deleting data sets.
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				name := fmt.Sprintf("ds-%d-%d", w, i)
				if err := sess.CreateDataSet(context.Background(), name, "", "SELECT * FROM t", ""); err != nil {
					errs <- err
					return
				}
				if err := sess.DeleteDataSet(context.Background(), name); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if _, err := sess.DataSets(context.Background()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	elapsed := time.Since(start)
	total := writers*opsPer*2 + readers*opsPer
	t.Rows = append(t.Rows, []string{
		"mixed crud+list", fmt.Sprint(writers + readers), fmt.Sprint(total),
		ms(elapsed), opsPerSec(total, elapsed),
	})
	return t, nil
}

// A1Index is the index ablation: selective DataSet predicates with and
// without index access paths.
func A1Index(quick bool) (*Table, error) {
	rows := 100000
	iters := 50
	if quick {
		rows = 10000
		iters = 10
	}
	e := storage.MustOpenMemory()
	defer e.Close()
	db := sql.NewDB(e)
	if _, err := db.Query("CREATE TABLE ev (id INT PRIMARY KEY, bucket INT, payload TEXT)"); err != nil {
		return nil, err
	}
	const batch = 5000
	for start := 0; start < rows; start += batch {
		err := e.Update(func(tx *storage.Tx) error {
			end := start + batch
			if end > rows {
				end = rows
			}
			for i := start; i < end; i++ {
				if _, err := tx.Insert("ev", storage.Row{int64(i), int64(i % 1000), "x"}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if _, err := db.Query("CREATE INDEX ev_bucket ON ev (bucket)"); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "A1 (ablation)",
		Title:   fmt.Sprintf("index vs scan: selective predicates over %d rows", rows),
		Headers: []string{"predicate", "access", "avg_ms", "speedup"},
		Claim:   "index probes beat scans by integer factors on selective predicates",
	}
	queries := []struct {
		name string
		q    string
	}{
		{"pk point (0.001%)", "SELECT payload FROM ev WHERE id = 4242"},
		{"bucket equality (0.1%)", "SELECT COUNT(*) FROM ev WHERE bucket = 7"},
		{"bucket range (~5%)", "SELECT COUNT(*) FROM ev WHERE bucket > 950"},
	}
	for _, q := range queries {
		var scanDur, indexDur time.Duration
		for _, disabled := range []bool{true, false} {
			db.DisableIndexes = disabled
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := db.Query(q.q); err != nil {
					return nil, err
				}
			}
			d := time.Since(start) / time.Duration(iters)
			if disabled {
				scanDur = d
			} else {
				indexDur = d
			}
		}
		speed := float64(scanDur) / float64(indexDur)
		t.Rows = append(t.Rows,
			[]string{q.name, "scan", ms(scanDur), "1.00"},
			[]string{q.name, "index", ms(indexDur), fmt.Sprintf("%.2f", speed)},
		)
	}
	db.DisableIndexes = false
	return t, nil
}

// A2CubeCache is the cell-cache ablation: repeated drill paths with the
// cache on and off.
func A2CubeCache(quick bool) (*Table, error) {
	facts := 100000
	iters := 50
	if quick {
		facts = 10000
		iters = 10
	}
	e := storage.MustOpenMemory()
	defer e.Close()
	if _, err := (workload.Retail{Facts: facts, Products: 100, Stores: 20}).Load(e, nil); err != nil {
		return nil, err
	}
	cube, err := olap.Build(context.Background(), e, retailCubeSpec())
	if err != nil {
		return nil, err
	}
	drill := []olap.Query{
		{Rows: []olap.LevelRef{{Dimension: "Store", Level: "Region"}}, Measures: []string{"amount"}},
		{Rows: []olap.LevelRef{
			{Dimension: "Store", Level: "Region"}, {Dimension: "Product", Level: "Category"},
		}, Measures: []string{"amount"}},
		{Rows: []olap.LevelRef{
			{Dimension: "Store", Level: "Region"}, {Dimension: "Product", Level: "Category"},
			{Dimension: "Date", Level: "Year"},
		}, Measures: []string{"amount"}},
	}
	t := &Table{
		ID:      "A2 (ablation)",
		Title:   fmt.Sprintf("OLAP cell cache on repeated drill paths (%d facts)", facts),
		Headers: []string{"cache", "avg_ms_per_path", "speedup"},
		Claim:   "the cell cache turns repeated navigation into O(1) lookups",
	}
	var offDur, onDur time.Duration
	for _, cached := range []bool{false, true} {
		if cached {
			cube.SetCache(256)
		} else {
			cube.SetCache(0)
		}
		// Warm once (fills the cache in cached mode).
		for _, q := range drill {
			if _, err := cube.Execute(context.Background(), q); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			for _, q := range drill {
				if _, err := cube.Execute(context.Background(), q); err != nil {
					return nil, err
				}
			}
		}
		d := time.Since(start) / time.Duration(iters)
		if cached {
			onDur = d
		} else {
			offDur = d
		}
	}
	t.Rows = append(t.Rows,
		[]string{"off", ms(offDur), "1.00"},
		[]string{"on", ms(onDur), fmt.Sprintf("%.1f", float64(offDur)/float64(onDur))},
	)
	return t, nil
}

// A3Bus is the ESB-indirection ablation (it reuses E6's stack but
// isolates direct vs bus-routed calls at higher iteration counts).
func A3Bus(quick bool) (*Table, error) {
	iters := 20000
	if quick {
		iters = 2000
	}
	esb := bus.New()
	work := func(n int) int { return n*2 + 1 }
	esb.Subscribe("work", func(m *bus.Message) (*bus.Message, error) {
		return bus.NewMessage(work(m.Body.(int))), nil
	})
	t := &Table{
		ID:      "A3 (ablation)",
		Title:   "ESB indirection vs direct call",
		Headers: []string{"path", "iters", "ns_per_op", "overhead_x"},
		Claim:   "bus routing costs a small constant per message — cheap enough for service interop",
	}
	start := time.Now()
	sink := 0
	for i := 0; i < iters; i++ {
		sink += work(i)
	}
	direct := time.Since(start)
	start = time.Now()
	for i := 0; i < iters; i++ {
		reply, err := esb.Send("work", bus.NewMessage(i))
		if err != nil {
			return nil, err
		}
		sink += reply.Body.(int)
	}
	viaBus := time.Since(start)
	_ = sink
	directNs := float64(direct.Nanoseconds()) / float64(iters)
	busNs := float64(viaBus.Nanoseconds()) / float64(iters)
	if directNs <= 0 {
		directNs = 1
	}
	t.Rows = append(t.Rows,
		[]string{"direct", fmt.Sprint(iters), fmt.Sprintf("%.1f", directNs), "1.0"},
		[]string{"bus", fmt.Sprint(iters), fmt.Sprintf("%.1f", busNs), fmt.Sprintf("%.0f", busNs/directNs)},
	)
	return t, nil
}

// A4WAL is the durability ablation: insert throughput under the three
// WAL sync modes.
func A4WAL(quick bool, dir string) (*Table, error) {
	rows := 20000
	if quick {
		rows = 4000
	}
	t := &Table{
		ID:      "A4 (ablation)",
		Title:   "WAL durability modes: insert-heavy load",
		Headers: []string{"sync_mode", "rows", "total_ms", "rows_per_sec"},
		Claim:   "fsync-per-commit costs an order of magnitude on small commits; buffered mode is the SaaS default",
	}
	modes := []struct {
		name string
		mode storage.SyncMode
	}{
		{"none", storage.SyncNone},
		{"buffered", storage.SyncBuffered},
		{"full (fsync)", storage.SyncFull},
	}
	for _, m := range modes {
		subdir := fmt.Sprintf("%s/wal-%s", dir, m.name[:4])
		e, err := storage.Open(storage.Options{Dir: subdir, Sync: m.mode})
		if err != nil {
			return nil, err
		}
		schema, _ := storage.NewSchema("ev", []storage.Column{
			{Name: "id", Type: storage.TypeInt},
			{Name: "payload", Type: storage.TypeString},
		})
		if err := e.CreateTable(schema); err != nil {
			e.Close()
			return nil, err
		}
		n := rows
		if m.mode == storage.SyncFull {
			n = rows / 20 // fsync per commit: keep runtime bounded
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			err := e.Update(func(tx *storage.Tx) error {
				_, err := tx.Insert("ev", storage.Row{int64(i), "payload"})
				return err
			})
			if err != nil {
				e.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			m.name, fmt.Sprint(n), ms(elapsed), opsPerSec(n, elapsed),
		})
		e.Close()
	}
	return t, nil
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID  string
	Run func(quick bool) (*Table, error)
}

// All returns every experiment in DESIGN.md order. tmpDir hosts the
// durable files A4 needs.
func All(tmpDir string) []Experiment {
	return []Experiment{
		{"E1", E1EndToEnd},
		{"E2", E2MultiTenant},
		{"E3", E3MDAPipeline},
		{"E4", E4Process},
		{"E5", E5Layers},
		{"E6", E6Stack},
		{"E7", E7Dashboard},
		{"E8", E8ETL},
		{"E9", E9OLAP},
		{"E10", E10Metadata},
		{"A1", A1Index},
		{"A2", A2CubeCache},
		{"A3", A3Bus},
		{"A4", func(quick bool) (*Table, error) { return A4WAL(quick, tmpDir) }},
	}
}
