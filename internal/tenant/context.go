package tenant

import "context"

// ctxKey is the private type for the tenant-identity context key. A typed
// key cannot collide with keys from other packages, and keeping the type
// unexported forces all access through NewContext/FromContext.
type ctxKey struct{}

// NewContext returns a child of ctx carrying the tenant id. The server
// layer stamps the authenticated tenant here when a request enters the
// platform, so identity and request lifetime travel on the same value.
func NewContext(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext returns the tenant id carried by ctx, and whether one was
// set. Lower layers may use it for attribution (logs, metering, traces);
// authorization still flows through explicit Catalog/Session values.
func FromContext(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(ctxKey{}).(string)
	return id, ok && id != ""
}
