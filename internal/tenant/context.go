package tenant

import (
	"context"

	"github.com/odbis/odbis/internal/obs"
)

// The tenant-identity context key lives in internal/obs so layers below
// tenant in the import DAG (storage, bus) can attribute work to the
// requesting tenant. These wrappers keep the established tenant-package
// API; both packages read the same key.

// NewContext returns a child of ctx carrying the tenant id. The server
// layer stamps the authenticated tenant here when a request enters the
// platform, so identity and request lifetime travel on the same value.
func NewContext(ctx context.Context, id string) context.Context {
	return obs.WithTenant(ctx, id)
}

// FromContext returns the tenant id carried by ctx, and whether one was
// set. Lower layers may use it for attribution (logs, metering, traces);
// authorization still flows through explicit Catalog/Session values.
func FromContext(ctx context.Context) (string, bool) {
	return obs.TenantFromContext(ctx)
}
