// Package tenant implements ODBIS multi-tenancy: the paper's §2 model
// where "the physical backend hardware infrastructure is shared among
// many different customers but logically is unique for each customer"
// and "one database is used to store all customers' data".
//
// A Registry keeps tenant accounts, subscription plans and pay-as-you-go
// usage metering in the shared storage engine. Each tenant gets a
// Catalog: a logical namespace whose table names are rewritten onto
// prefixed physical tables in the shared engine, so tenants are isolated
// without per-tenant infrastructure (the economies-of-scale claim
// benchmarked as experiment E2).
package tenant

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/odbis/odbis/internal/obs"
	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
	"github.com/odbis/odbis/internal/storage/orm"
)

// Errors returned by the registry.
var (
	ErrNoTenant    = errors.New("tenant: no such tenant")
	ErrExists      = errors.New("tenant: already exists")
	ErrSuspended   = errors.New("tenant: suspended")
	ErrQuota       = errors.New("tenant: quota exceeded")
	ErrUnknownPlan = errors.New("tenant: unknown plan")
	ErrBadTenantID = errors.New("tenant: invalid tenant id")
)

// Plan is a subscription tier: quotas plus pay-as-you-go pricing.
type Plan struct {
	Name          string
	MaxTables     int // 0 = unlimited
	MaxRows       int // total rows across tenant tables; 0 = unlimited
	MonthlyFee    float64
	PricePerQuery float64
	PricePer1kRow float64 // per 1000 rows loaded
}

// DefaultPlans mirror typical SaaS tiers; registries may define others.
var DefaultPlans = []Plan{
	{Name: "free", MaxTables: 5, MaxRows: 10000, MonthlyFee: 0, PricePerQuery: 0, PricePer1kRow: 0},
	{Name: "standard", MaxTables: 50, MaxRows: 1000000, MonthlyFee: 49, PricePerQuery: 0.001, PricePer1kRow: 0.01},
	{Name: "enterprise", MonthlyFee: 499, PricePerQuery: 0.0005, PricePer1kRow: 0.005},
}

// Info is a tenant account.
type Info struct {
	ID      string `orm:"id,pk"`
	Name    string
	Plan    string
	Active  bool
	Created time.Time
}

// usage is one metering counter: (tenant, metric, period) → value. Key is
// the composite "tenant|metric|period" so counters upsert atomically.
type usageRow struct {
	Key    string `orm:"key,pk"`
	Tenant string `orm:"tenant,index"`
	Metric string
	Period string // YYYY-MM
	Value  int64
}

// Metric names recorded by the registry. They alias the obs per-tenant
// telemetry names so the live counters at /metrics and the persisted
// billing rows always speak the same vocabulary.
const (
	MetricQueries    = obs.TenantQueries
	MetricRowsLoaded = obs.TenantRowsLoaded
	MetricAPICalls   = obs.TenantAPICalls
)

var tenantIDRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,31}$`)

// Registry manages tenants over one shared engine.
type Registry struct {
	engine  *storage.Engine
	tenants *orm.Mapper[Info]
	usage   *orm.Mapper[usageRow]
	plans   map[string]Plan
	now     func() time.Time
	recMu   sync.Mutex       // guards pending
	pending map[string]int64 // "tenant|metric" → delta not yet persisted
}

// NewRegistry opens a registry, creating its tables when missing and
// registering the default plans.
func NewRegistry(e *storage.Engine) (*Registry, error) {
	tm, err := orm.NewMapper[Info](e, "tenants")
	if err != nil {
		return nil, err
	}
	um, err := orm.NewMapper[usageRow](e, "tenant_usage")
	if err != nil {
		return nil, err
	}
	r := &Registry{engine: e, tenants: tm, usage: um, plans: map[string]Plan{}, now: time.Now}
	for _, p := range DefaultPlans {
		r.plans[p.Name] = p
	}
	return r, nil
}

// Engine exposes the shared storage engine.
func (r *Registry) Engine() *storage.Engine { return r.engine }

// DefinePlan adds or replaces a plan.
func (r *Registry) DefinePlan(p Plan) error {
	if p.Name == "" {
		return fmt.Errorf("tenant: plan needs a name")
	}
	r.plans[p.Name] = p
	return nil
}

// Plan returns a plan by name.
func (r *Registry) Plan(name string) (Plan, error) {
	p, ok := r.plans[name]
	if !ok {
		return Plan{}, fmt.Errorf("%w: %s", ErrUnknownPlan, name)
	}
	return p, nil
}

// Create provisions a tenant on a plan.
func (r *Registry) Create(id, name, plan string) (*Info, error) {
	if !tenantIDRe.MatchString(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadTenantID, id)
	}
	if _, ok := r.plans[plan]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPlan, plan)
	}
	if _, ok, _ := r.tenants.Get(id); ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	info := Info{ID: id, Name: name, Plan: plan, Active: true, Created: r.now().UTC()}
	if err := r.tenants.Insert(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Get returns a tenant account.
func (r *Registry) Get(id string) (*Info, error) {
	info, ok, err := r.tenants.Get(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTenant, id)
	}
	return &info, nil
}

// List returns tenant ids sorted.
func (r *Registry) List() ([]string, error) {
	all, err := r.tenants.All()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = t.ID
	}
	sort.Strings(out)
	return out, nil
}

// Suspend blocks a tenant's catalogs.
func (r *Registry) Suspend(id string) error { return r.setActive(id, false) }

// Resume re-enables a tenant.
func (r *Registry) Resume(id string) error { return r.setActive(id, true) }

func (r *Registry) setActive(id string, active bool) error {
	info, err := r.Get(id)
	if err != nil {
		return err
	}
	info.Active = active
	return r.tenants.Save(info)
}

// SetPlan moves a tenant to another plan.
func (r *Registry) SetPlan(id, plan string) error {
	if _, ok := r.plans[plan]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPlan, plan)
	}
	info, err := r.Get(id)
	if err != nil {
		return err
	}
	info.Plan = plan
	return r.tenants.Save(info)
}

// Drop removes a tenant and every physical table in its namespace.
func (r *Registry) Drop(id string) error {
	if _, err := r.Get(id); err != nil {
		return err
	}
	prefix := physicalPrefix(id)
	for _, tbl := range r.engine.Tables() {
		if strings.HasPrefix(tbl, prefix) {
			if err := r.engine.DropTable(tbl); err != nil {
				return err
			}
		}
	}
	if _, err := r.usage.DeleteWhere("tenant", id); err != nil {
		return err
	}
	r.recMu.Lock()
	pendingPrefix := id + "|"
	for k := range r.pending {
		if strings.HasPrefix(k, pendingPrefix) {
			delete(r.pending, k)
		}
	}
	r.recMu.Unlock()
	_, err := r.tenants.Delete(id)
	return err
}

// --- metering ---

func (r *Registry) period() string { return r.now().UTC().Format("2006-01") }

// Record adds delta to a tenant metric: the live obs counter is bumped
// immediately (visible at /metrics without a storage round-trip) and
// the delta accumulates in memory until FlushUsage persists it. Earlier
// revisions wrote a usage row per bump; moving persistence off the
// query hot path is what lets metering ride inside the per-request
// budget.
func (r *Registry) Record(id, metric string, delta int64) {
	obs.AddTenantID(id, metric, delta)
	r.recMu.Lock()
	if r.pending == nil {
		r.pending = map[string]int64{}
	}
	r.pending[id+"|"+metric] += delta
	r.recMu.Unlock()
}

// FlushUsage folds pending metering deltas into the current period's
// usage rows. Usage and Invoice flush before reading, and the platform
// flushes on Close; deltas that fail to persist are merged back into
// pending rather than dropped.
func (r *Registry) FlushUsage() error {
	r.recMu.Lock()
	pending := r.pending
	r.pending = nil
	r.recMu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	keys := make([]string, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	period := r.period()
	for i, k := range keys {
		id, metric, _ := strings.Cut(k, "|")
		rowKey := k + "|" + period //odbis:ignore hotalloc -- the concat IS the storage key being built; one per flushed usage row
		row, ok, err := r.usage.Get(rowKey)
		if err == nil {
			if !ok {
				row = usageRow{Key: rowKey, Tenant: id, Metric: metric, Period: period}
			}
			row.Value += pending[k]
			err = r.usage.Save(&row)
		}
		if err != nil {
			r.recMu.Lock()
			if r.pending == nil {
				r.pending = map[string]int64{}
			}
			for _, rest := range keys[i:] {
				r.pending[rest] += pending[rest]
			}
			r.recMu.Unlock()
			return err
		}
	}
	return nil
}

// Usage returns the tenant's counters for the current period.
func (r *Registry) Usage(id string) (map[string]int64, error) {
	if _, err := r.Get(id); err != nil {
		return nil, err
	}
	if err := r.FlushUsage(); err != nil {
		return nil, err
	}
	rows, err := r.usage.Where("tenant", id)
	if err != nil {
		return nil, err
	}
	period := r.period()
	out := map[string]int64{}
	for _, row := range rows {
		if row.Period == period {
			out[row.Metric] += row.Value
		}
	}
	return out, nil
}

// InvoiceLine is one charge on an invoice.
type InvoiceLine struct {
	Item   string
	Qty    int64
	Amount float64
}

// Invoice is a pay-as-you-go bill for one period.
type Invoice struct {
	Tenant string
	Period string
	Plan   string
	Lines  []InvoiceLine
	Total  float64
}

// Invoice computes the current-period bill from the plan and usage.
func (r *Registry) Invoice(id string) (*Invoice, error) {
	info, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	plan, err := r.Plan(info.Plan)
	if err != nil {
		return nil, err
	}
	usage, err := r.Usage(id)
	if err != nil {
		return nil, err
	}
	inv := &Invoice{Tenant: id, Period: r.period(), Plan: plan.Name}
	add := func(item string, qty int64, amount float64) {
		inv.Lines = append(inv.Lines, InvoiceLine{Item: item, Qty: qty, Amount: amount})
		inv.Total += amount
	}
	add("subscription "+plan.Name, 1, plan.MonthlyFee)
	if q := usage[MetricQueries]; q > 0 && plan.PricePerQuery > 0 {
		add("queries", q, float64(q)*plan.PricePerQuery)
	}
	if rows := usage[MetricRowsLoaded]; rows > 0 && plan.PricePer1kRow > 0 {
		add("rows loaded (per 1k)", rows, float64(rows)/1000*plan.PricePer1kRow)
	}
	return inv, nil
}

// --- catalogs ---

func physicalPrefix(tenantID string) string {
	return "t_" + strings.ReplaceAll(tenantID, "-", "_") + "__"
}

// Catalog is a tenant's logical namespace over the shared engine.
type Catalog struct {
	reg    *Registry
	id     string
	prefix string
	db     *sql.DB
}

// Catalog opens a tenant's namespace, rejecting suspended tenants.
func (r *Registry) Catalog(id string) (*Catalog, error) {
	info, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	if !info.Active {
		return nil, fmt.Errorf("%w: %s", ErrSuspended, id)
	}
	return &Catalog{reg: r, id: id, prefix: physicalPrefix(id), db: sql.NewDB(r.engine)}, nil
}

// TenantID returns the owning tenant.
func (c *Catalog) TenantID() string { return c.id }

// physical maps a logical table name into the tenant namespace. Names
// already in the namespace pass through (idempotent).
func (c *Catalog) physical(logical string) string {
	if strings.HasPrefix(logical, c.prefix) {
		return logical
	}
	return c.prefix + logical
}

// logical strips the namespace prefix.
func (c *Catalog) logical(physical string) string {
	return strings.TrimPrefix(physical, c.prefix)
}

// Query executes SQL with logical table names, metering the call. ctx
// bounds the statement: cancellation or deadline expiry aborts execution
// at the next row checkpoint and the transaction rolls back.
func (c *Catalog) Query(ctx context.Context, query string, args ...storage.Value) (*sql.Result, error) {
	res, err := c.queryDB(ctx, c.db, query, args)
	if err != nil {
		return nil, err
	}
	c.reg.Record(c.id, MetricQueries, 1)
	if res.Affected > 0 {
		c.reg.Record(c.id, MetricRowsLoaded, int64(res.Affected))
	}
	return res, nil
}

// QueryOn is Query against an alternate engine — a read replica — with
// the same namespace rewriting, quota checks, and metering. The replica
// engine carries its own plan cache (a per-engine attachment) whose
// entries invalidate under the replica's own schema epoch as DDL frames
// apply, so cached plans never cross engines.
func (c *Catalog) QueryOn(ctx context.Context, eng *storage.Engine, query string, args ...storage.Value) (*sql.Result, error) {
	res, err := c.queryDB(ctx, sql.NewDB(eng), query, args)
	if err != nil {
		return nil, err
	}
	c.reg.Record(c.id, MetricQueries, 1)
	if res.Affected > 0 {
		c.reg.Record(c.id, MetricRowsLoaded, int64(res.Affected))
	}
	return res, nil
}

func (c *Catalog) queryDB(ctx context.Context, db *sql.DB, query string, args []storage.Value) (*sql.Result, error) {
	// Prepared fast path: a SELECT this tenant has run before skips
	// parse and rewrite entirely — the cache is keyed by (tenant, text)
	// and stores the already-namespaced statement. Suspension and plan
	// validity are still re-checked on every call.
	if st, ok := c.db.CachedSelect(c.id, query); ok {
		if err := c.checkQuota(ctx, st.Statement()); err != nil {
			return nil, err
		}
		return st.QueryContext(ctx, args...)
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if err := c.checkQuota(ctx, stmt); err != nil {
		return nil, err
	}
	rewritten := sql.RewriteTables(stmt, c.physical)
	if sel, ok := rewritten.(*sql.SelectStmt); ok {
		return c.db.PrepareSelect(c.id, query, sel).QueryContext(ctx, args...)
	}
	return c.db.QueryStatementContext(ctx, rewritten, args...)
}

// HasCachedSelect reports whether query is a SELECT already compiled
// into this tenant's plan cache. The metadata service uses this to
// classify repeated dashboard queries without re-parsing them.
func (c *Catalog) HasCachedSelect(query string) bool {
	return c.db.HasCachedSelect(c.id, query)
}

// Exec is Query returning only the affected count.
func (c *Catalog) Exec(ctx context.Context, query string, args ...storage.Value) (int, error) {
	res, err := c.Query(ctx, query, args...)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// checkQuota enforces plan limits for DDL/DML statements.
func (c *Catalog) checkQuota(ctx context.Context, stmt sql.Statement) error {
	info, err := c.reg.Get(c.id)
	if err != nil {
		return err
	}
	if !info.Active {
		return fmt.Errorf("%w: %s", ErrSuspended, c.id)
	}
	plan, err := c.reg.Plan(info.Plan)
	if err != nil {
		return err
	}
	switch s := stmt.(type) {
	case *sql.CreateTableStmt:
		if plan.MaxTables > 0 && len(c.Tables()) >= plan.MaxTables {
			return fmt.Errorf("%w: plan %s allows %d tables", ErrQuota, plan.Name, plan.MaxTables)
		}
	case *sql.InsertStmt:
		if plan.MaxRows > 0 {
			total, err := c.totalRows(ctx)
			if err != nil {
				return err
			}
			if total+len(s.Rows) > plan.MaxRows {
				return fmt.Errorf("%w: plan %s allows %d rows", ErrQuota, plan.Name, plan.MaxRows)
			}
		}
	}
	return nil
}

// Tables lists the tenant's logical table names sorted.
func (c *Catalog) Tables() []string {
	all := c.reg.engine.Tables()
	out := make([]string, 0, len(all))
	for _, tbl := range all {
		if strings.HasPrefix(tbl, c.prefix) {
			out = append(out, c.logical(tbl))
		}
	}
	sort.Strings(out)
	return out
}

// totalRows counts committed rows across the tenant's tables.
func (c *Catalog) totalRows(ctx context.Context) (int, error) {
	total := 0
	err := c.reg.engine.ViewCtx(ctx, func(tx *storage.Tx) error {
		for _, logical := range c.Tables() {
			n, err := tx.Count(c.physical(logical))
			if err != nil {
				return err
			}
			total += n
		}
		return nil
	})
	return total, err
}

// RowCount reports total committed rows in the tenant's namespace.
func (c *Catalog) RowCount(ctx context.Context) (int, error) { return c.totalRows(ctx) }

// Schema returns the schema of a logical table, with the logical name
// restored.
func (c *Catalog) Schema(logical string) (*storage.Schema, error) {
	s, err := c.reg.engine.Schema(c.physical(logical))
	if err != nil {
		return nil, err
	}
	s.Name = logical
	return s, nil
}

// HasTable reports whether the tenant has the logical table.
func (c *Catalog) HasTable(logical string) bool {
	return c.reg.engine.HasTable(c.physical(logical))
}

// Physical exposes the physical name mapping for substrates (ETL sinks,
// cube builds) that address the engine directly.
func (c *Catalog) Physical(logical string) string { return c.physical(logical) }
