package tenant

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/odbis/odbis/internal/storage"
)

func newRegistry(t *testing.T) *Registry {
	t.Helper()
	e := storage.MustOpenMemory()
	t.Cleanup(func() { e.Close() })
	r, err := NewRegistry(e)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCreateAndLookup(t *testing.T) {
	r := newRegistry(t)
	info, err := r.Create("acme", "Acme Corp", "standard")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Active || info.Plan != "standard" {
		t.Errorf("info = %+v", info)
	}
	if _, err := r.Create("acme", "again", "free"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := r.Create("Bad ID!", "x", "free"); !errors.Is(err, ErrBadTenantID) {
		t.Errorf("bad id: %v", err)
	}
	if _, err := r.Create("x", "x", "platinum"); !errors.Is(err, ErrUnknownPlan) {
		t.Errorf("bad plan: %v", err)
	}
	if _, err := r.Get("ghost"); !errors.Is(err, ErrNoTenant) {
		t.Errorf("missing tenant: %v", err)
	}
	r.Create("beta", "Beta", "free")
	ids, _ := r.List()
	if len(ids) != 2 || ids[0] != "acme" {
		t.Errorf("list = %v", ids)
	}
}

func TestCatalogIsolation(t *testing.T) {
	r := newRegistry(t)
	r.Create("a", "A", "standard")
	r.Create("b", "B", "standard")
	ca, err := r.Catalog("a")
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := r.Catalog("b")

	// Same logical table name, different physical tables.
	if _, err := ca.Exec(context.Background(), "CREATE TABLE sales (id INT PRIMARY KEY, amount FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Exec(context.Background(), "CREATE TABLE sales (id INT PRIMARY KEY, amount FLOAT)"); err != nil {
		t.Fatal(err)
	}
	ca.Exec(context.Background(), "INSERT INTO sales VALUES (1, 10.0), (2, 20.0)")
	cb.Exec(context.Background(), "INSERT INTO sales VALUES (1, 999.0)")

	resA, err := ca.Query(context.Background(), "SELECT COUNT(*), SUM(amount) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if resA.Rows[0][0] != int64(2) || resA.Rows[0][1] != 30.0 {
		t.Errorf("tenant a sees %v", resA.Rows[0])
	}
	resB, _ := cb.Query(context.Background(), "SELECT COUNT(*), SUM(amount) FROM sales")
	if resB.Rows[0][0] != int64(1) {
		t.Errorf("tenant b sees %v", resB.Rows[0])
	}
	// Physical names carry the tenant prefix in the shared engine.
	shared := r.Engine().Tables()
	foundA, foundB := false, false
	for _, tbl := range shared {
		if tbl == "t_a__sales" {
			foundA = true
		}
		if tbl == "t_b__sales" {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Errorf("physical tables = %v", shared)
	}
	if tables := ca.Tables(); len(tables) != 1 || tables[0] != "sales" {
		t.Errorf("logical tables = %v", tables)
	}
}

func TestCatalogJoinsAndAliases(t *testing.T) {
	r := newRegistry(t)
	r.Create("a", "A", "standard")
	c, _ := r.Catalog("a")
	c.Exec(context.Background(), "CREATE TABLE d (id INT PRIMARY KEY, name TEXT)")
	c.Exec(context.Background(), "CREATE TABLE f (d_id INT, v INT)")
	c.Exec(context.Background(), "INSERT INTO d VALUES (1, 'x'), (2, 'y')")
	c.Exec(context.Background(), "INSERT INTO f VALUES (1, 10), (1, 5), (2, 1)")
	res, err := c.Query(context.Background(), `
		SELECT d.name, SUM(f.v) AS total
		FROM f JOIN d ON f.d_id = d.id
		GROUP BY d.name ORDER BY d.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1] != int64(15) {
		t.Errorf("rows = %v", res.Rows)
	}
	// Subqueries are rewritten too.
	res, err = c.Query(context.Background(), "SELECT name FROM d WHERE id IN (SELECT d_id FROM f WHERE v > 9)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "x" {
		t.Errorf("subquery rows = %v", res.Rows)
	}
}

func TestSuspendResume(t *testing.T) {
	r := newRegistry(t)
	r.Create("a", "A", "free")
	c, _ := r.Catalog("a")
	c.Exec(context.Background(), "CREATE TABLE t (x INT)")
	if err := r.Suspend("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Catalog("a"); !errors.Is(err, ErrSuspended) {
		t.Errorf("catalog for suspended tenant: %v", err)
	}
	// An already-open catalog is blocked at the next statement.
	if _, err := c.Query(context.Background(), "SELECT * FROM t"); !errors.Is(err, ErrSuspended) {
		t.Errorf("query on suspended tenant: %v", err)
	}
	r.Resume("a")
	if _, err := c.Query(context.Background(), "SELECT * FROM t"); err != nil {
		t.Errorf("after resume: %v", err)
	}
}

func TestQuotas(t *testing.T) {
	r := newRegistry(t)
	r.DefinePlan(Plan{Name: "tiny", MaxTables: 1, MaxRows: 3})
	r.Create("a", "A", "tiny")
	c, _ := r.Catalog("a")
	if _, err := c.Exec(context.Background(), "CREATE TABLE t1 (x INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(context.Background(), "CREATE TABLE t2 (x INT)"); !errors.Is(err, ErrQuota) {
		t.Errorf("table quota: %v", err)
	}
	if _, err := c.Exec(context.Background(), "INSERT INTO t1 VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(context.Background(), "INSERT INTO t1 VALUES (4)"); !errors.Is(err, ErrQuota) {
		t.Errorf("row quota: %v", err)
	}
	// Upgrading the plan lifts the quota.
	if err := r.SetPlan("a", "enterprise"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(context.Background(), "INSERT INTO t1 VALUES (4)"); err != nil {
		t.Errorf("after upgrade: %v", err)
	}
}

func TestMeteringAndInvoice(t *testing.T) {
	r := newRegistry(t)
	r.Create("a", "A", "standard")
	c, _ := r.Catalog("a")
	c.Exec(context.Background(), "CREATE TABLE t (x INT)")
	c.Exec(context.Background(), "INSERT INTO t VALUES (1), (2)")
	c.Query(context.Background(), "SELECT * FROM t")
	c.Query(context.Background(), "SELECT COUNT(*) FROM t")
	usage, err := r.Usage("a")
	if err != nil {
		t.Fatal(err)
	}
	// 4 statements total (CREATE + INSERT + 2 SELECT).
	if usage[MetricQueries] != 4 {
		t.Errorf("queries = %d", usage[MetricQueries])
	}
	if usage[MetricRowsLoaded] != 2 {
		t.Errorf("rows loaded = %d", usage[MetricRowsLoaded])
	}
	inv, err := r.Invoice("a")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Plan != "standard" || inv.Total <= 49 {
		t.Errorf("invoice = %+v", inv)
	}
	found := false
	for _, l := range inv.Lines {
		if strings.Contains(l.Item, "queries") && l.Qty == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("invoice lines = %+v", inv.Lines)
	}
}

func TestDropTenantRemovesPhysicalTables(t *testing.T) {
	r := newRegistry(t)
	r.Create("a", "A", "standard")
	r.Create("b", "B", "standard")
	ca, _ := r.Catalog("a")
	cb, _ := r.Catalog("b")
	ca.Exec(context.Background(), "CREATE TABLE t (x INT)")
	cb.Exec(context.Background(), "CREATE TABLE t (x INT)")
	if err := r.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("a"); !errors.Is(err, ErrNoTenant) {
		t.Errorf("dropped tenant still present: %v", err)
	}
	for _, tbl := range r.Engine().Tables() {
		if strings.HasPrefix(tbl, "t_a__") {
			t.Errorf("orphan physical table %s", tbl)
		}
	}
	// Tenant b untouched.
	if !cb.HasTable("t") {
		t.Error("tenant b lost its table")
	}
}

func TestSchemaLogicalName(t *testing.T) {
	r := newRegistry(t)
	r.Create("a", "A", "standard")
	c, _ := r.Catalog("a")
	c.Exec(context.Background(), "CREATE TABLE orders (id INT PRIMARY KEY)")
	s, err := c.Schema("orders")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "orders" {
		t.Errorf("schema name = %q", s.Name)
	}
	if !c.HasTable("orders") || c.HasTable("ghost") {
		t.Error("HasTable wrong")
	}
	if c.Physical("orders") != "t_a__orders" {
		t.Errorf("physical = %q", c.Physical("orders"))
	}
}

func TestPlans(t *testing.T) {
	r := newRegistry(t)
	if _, err := r.Plan("standard"); err != nil {
		t.Error(err)
	}
	if _, err := r.Plan("ghost"); !errors.Is(err, ErrUnknownPlan) {
		t.Errorf("missing plan: %v", err)
	}
	if err := r.DefinePlan(Plan{}); err == nil {
		t.Error("unnamed plan accepted")
	}
	if err := r.SetPlan("nobody", "standard"); !errors.Is(err, ErrNoTenant) {
		t.Errorf("set plan on missing tenant: %v", err)
	}
}
