package netsrv

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/fault"
	"github.com/odbis/odbis/internal/proto"
	"github.com/odbis/odbis/internal/security"
	"github.com/odbis/odbis/internal/server"
	"github.com/odbis/odbis/internal/services"
	"github.com/odbis/odbis/internal/storage"
	"github.com/odbis/odbis/internal/tenant"
)

// newTestPlatform boots an in-memory platform with one tenant ("acme")
// and one designer user, returning the platform and the user's token.
func newTestPlatform(t *testing.T) (*services.Platform, string) {
	t.Helper()
	e := storage.MustOpenMemory()
	t.Cleanup(func() { e.Close() })
	reg, err := tenant.NewRegistry(e)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := security.NewManager(e, security.Options{HashIterations: 8, TokenSecret: []byte("test")})
	if err != nil {
		t.Fatal(err)
	}
	p := services.NewPlatform(reg, sec)
	if err := p.Bootstrap("root", "toor"); err != nil {
		t.Fatal(err)
	}
	root, _, err := p.Login("root", "toor")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := root.CreateTenant(ctx, "acme", "Acme", "standard"); err != nil {
		t.Fatal(err)
	}
	if err := root.CreateUser(ctx, security.UserSpec{
		Username: "ada", Password: "pw", Tenant: "acme",
		Roles: []string{services.RoleDesigner},
	}); err != nil {
		t.Fatal(err)
	}
	_, token, err := p.Login("ada", "pw")
	if err != nil {
		t.Fatal(err)
	}
	return p, token
}

// startServer boots a protocol listener on a loopback port.
func startServer(t *testing.T, p *services.Platform, opts Options) net.Addr {
	t.Helper()
	srv := New(p, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// wireConn is a bare test client over the raw frame protocol.
type wireConn struct {
	t    *testing.T
	conn net.Conn
	w    *proto.Writer
	r    *proto.Reader
}

func dialWire(t *testing.T, addr net.Addr) *wireConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return &wireConn{t: t, conn: conn, w: proto.NewWriter(conn), r: proto.NewReader(conn)}
}

func (c *wireConn) send(ft proto.FrameType, payload []byte) {
	c.t.Helper()
	if err := c.w.WriteFrame(ft, payload); err != nil {
		c.t.Fatalf("write %v: %v", ft, err)
	}
	if err := c.w.Flush(); err != nil {
		c.t.Fatalf("flush: %v", err)
	}
}

func (c *wireConn) recv() (proto.FrameType, []byte) {
	c.t.Helper()
	ft, payload, err := c.r.ReadFrame()
	if err != nil {
		c.t.Fatalf("read frame: %v", err)
	}
	return ft, payload
}

// handshake performs HELLO/WELCOME and fails the test on rejection.
func (c *wireConn) handshake(token string) string {
	c.t.Helper()
	c.send(proto.FrameHello, proto.AppendHello(nil, token))
	ft, payload := c.recv()
	if ft != proto.FrameWelcome {
		if ft == proto.FrameError {
			_, code, msg, _ := proto.ParseError(payload)
			c.t.Fatalf("handshake rejected: %d %s", code, msg)
		}
		c.t.Fatalf("handshake: got %v, want WELCOME", ft)
	}
	tenantID, err := proto.ParseWelcome(payload)
	if err != nil {
		c.t.Fatal(err)
	}
	return tenantID
}

// query runs one request and collects the full result.
func (c *wireConn) query(id uint32, sqlText string, args ...storage.Value) (cols []string, rows []storage.Row, affected uint32) {
	c.t.Helper()
	payload, err := proto.AppendQuery(nil, id, sqlText, args)
	if err != nil {
		c.t.Fatal(err)
	}
	c.send(proto.FrameQuery, payload)
	for {
		ft, p := c.recv()
		switch ft {
		case proto.FrameResultHeader:
			gotID, gotCols, err := proto.ParseResultHeader(p)
			if err != nil || gotID != id {
				c.t.Fatalf("header id=%d err=%v", gotID, err)
			}
			cols = gotCols
		case proto.FrameResultChunk:
			gotID, chunk, err := proto.ParseRows(p)
			if err != nil || gotID != id {
				c.t.Fatalf("chunk id=%d err=%v", gotID, err)
			}
			rows = append(rows, chunk...)
		case proto.FrameResultDone:
			gotID, aff, _, _, err := proto.ParseDone(p)
			if err != nil || gotID != id {
				c.t.Fatalf("done id=%d err=%v", gotID, err)
			}
			return cols, rows, aff
		case proto.FrameError:
			_, code, msg, _ := proto.ParseError(p)
			c.t.Fatalf("query error: %d %s", code, msg)
		default:
			c.t.Fatalf("unexpected frame %v", ft)
		}
	}
}

// queryErr runs one request and returns the ERROR frame's code+message.
func (c *wireConn) queryErr(id uint32, sqlText string) (uint16, string) {
	c.t.Helper()
	payload, err := proto.AppendQuery(nil, id, sqlText, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	c.send(proto.FrameQuery, payload)
	ft, p := c.recv()
	if ft != proto.FrameError {
		c.t.Fatalf("got %v, want ERROR", ft)
	}
	gotID, code, msg, err := proto.ParseError(p)
	if err != nil || gotID != id {
		c.t.Fatalf("error frame id=%d err=%v", gotID, err)
	}
	return code, msg
}

func TestHandshakeAndQueryRoundTrip(t *testing.T) {
	p, token := newTestPlatform(t)
	addr := startServer(t, p, Options{})
	c := dialWire(t, addr)
	if tenantID := c.handshake(token); tenantID != "acme" {
		t.Fatalf("welcome tenant = %q, want acme", tenantID)
	}

	c.query(1, "CREATE TABLE wards (name TEXT, patients INT)")
	_, _, aff := c.query(2, "INSERT INTO wards (name, patients) VALUES (?, ?)", "icu", int64(12))
	if aff != 1 {
		t.Fatalf("insert affected = %d, want 1", aff)
	}
	c.query(3, "INSERT INTO wards (name, patients) VALUES (?, ?)", "er", int64(30))

	cols, rows, _ := c.query(4, "SELECT name, patients FROM wards ORDER BY name")
	if len(cols) != 2 || cols[0] != "name" || cols[1] != "patients" {
		t.Fatalf("cols = %v", cols)
	}
	if len(rows) != 2 || rows[0][0] != "er" || rows[1][0] != "icu" || rows[1][1] != int64(12) {
		t.Fatalf("rows = %v", rows)
	}
}

// TestResultChunking proves a result larger than ChunkRows streams as
// multiple RESULT_CHUNK frames that reassemble in order.
func TestResultChunking(t *testing.T) {
	p, token := newTestPlatform(t)
	addr := startServer(t, p, Options{ChunkRows: 7})
	c := dialWire(t, addr)
	c.handshake(token)
	c.query(1, "CREATE TABLE n (i INT)")
	const total = 40
	for i := 0; i < total; i++ {
		c.query(uint32(10+i), "INSERT INTO n (i) VALUES (?)", int64(i))
	}
	// Count chunk frames by hand.
	payload, err := proto.AppendQuery(nil, 99, "SELECT i FROM n ORDER BY i", nil)
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.FrameQuery, payload)
	chunks, rows := 0, 0
	for {
		ft, p := c.recv()
		if ft == proto.FrameResultChunk {
			_, chunk, err := proto.ParseRows(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(chunk) > 7 {
				t.Fatalf("chunk carries %d rows, cap is 7", len(chunk))
			}
			chunks++
			rows += len(chunk)
			continue
		}
		if ft == proto.FrameResultDone {
			break
		}
		if ft != proto.FrameResultHeader {
			t.Fatalf("unexpected %v", ft)
		}
	}
	if rows != total {
		t.Fatalf("reassembled %d rows, want %d", rows, total)
	}
	if want := (total + 6) / 7; chunks != want {
		t.Fatalf("chunks = %d, want %d", chunks, want)
	}
}

func TestHandshakeBadToken(t *testing.T) {
	p, _ := newTestPlatform(t)
	addr := startServer(t, p, Options{})
	c := dialWire(t, addr)
	c.send(proto.FrameHello, proto.AppendHello(nil, "not-a-token"))
	ft, payload := c.recv()
	if ft != proto.FrameError {
		t.Fatalf("got %v, want ERROR", ft)
	}
	_, code, _, err := proto.ParseError(payload)
	if err != nil || code != 401 {
		t.Fatalf("code = %d err=%v, want 401", code, err)
	}
}

func TestHandshakeRequiresHello(t *testing.T) {
	p, _ := newTestPlatform(t)
	addr := startServer(t, p, Options{})
	c := dialWire(t, addr)
	c.send(proto.FramePing, []byte("nope"))
	ft, payload := c.recv()
	if ft != proto.FrameError {
		t.Fatalf("got %v, want ERROR", ft)
	}
	_, code, _, _ := proto.ParseError(payload)
	if code != 400 {
		t.Fatalf("code = %d, want 400", code)
	}
}

func TestPingPong(t *testing.T) {
	p, token := newTestPlatform(t)
	addr := startServer(t, p, Options{})
	c := dialWire(t, addr)
	c.handshake(token)
	c.send(proto.FramePing, []byte("echo-me"))
	ft, payload := c.recv()
	if ft != proto.FramePong || string(payload) != "echo-me" {
		t.Fatalf("got %v %q, want PONG echo-me", ft, payload)
	}
}

// TestReadyGateRefusesSessions: satellite 2 — a platform failing its
// readiness probe refuses the session with GOAWAY before handshake.
func TestReadyGateRefusesSessions(t *testing.T) {
	p, token := newTestPlatform(t)
	var ready atomic.Bool
	addr := startServer(t, p, Options{Ready: ready.Load})
	c := dialWire(t, addr)
	ft, payload := c.recv() // GOAWAY arrives unprompted
	if ft != proto.FrameGoAway {
		t.Fatalf("got %v, want GOAWAY", ft)
	}
	if reason, _ := proto.ParseGoAway(payload); reason != "platform not ready" {
		t.Fatalf("reason = %q", reason)
	}

	// Flipping readiness back admits new sessions.
	ready.Store(true)
	c2 := dialWire(t, addr)
	if tenantID := c2.handshake(token); tenantID != "acme" {
		t.Fatalf("tenant = %q", tenantID)
	}
}

// TestAdmissionRetryFrame: a saturated shared semaphore answers QUERY
// with RETRY + backoff instead of executing, and the session survives.
func TestAdmissionRetryFrame(t *testing.T) {
	p, token := newTestPlatform(t)
	adm := server.NewAdmission(1, 0)
	addr := startServer(t, p, Options{Admission: adm, RetryBackoff: 750 * time.Millisecond})
	c := dialWire(t, addr)
	c.handshake(token)

	// Hold the only slot, as a stuck in-flight request would.
	ok, _ := adm.Acquire(context.Background())
	if !ok {
		t.Fatal("could not saturate")
	}
	payload, err := proto.AppendQuery(nil, 5, "SELECT 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.FrameQuery, payload)
	ft, pl := c.recv()
	if ft != proto.FrameRetry {
		t.Fatalf("got %v, want RETRY", ft)
	}
	id, backoff, err := proto.ParseRetry(pl)
	if err != nil || id != 5 {
		t.Fatalf("retry id=%d err=%v", id, err)
	}
	if backoff != 750*time.Millisecond {
		t.Fatalf("backoff = %v, want 750ms", backoff)
	}

	// Free the slot: the same session executes normally again.
	adm.Release()
	c.query(6, "CREATE TABLE ok (i INT)")
}

// TestFaultNetsrvSession: arming the request fault point turns queries
// into ERROR frames (the wire twin of the HTTP 500) without killing
// the session.
func TestFaultNetsrvSession(t *testing.T) {
	p, token := newTestPlatform(t)
	addr := startServer(t, p, Options{})
	c := dialWire(t, addr)
	c.handshake(token)

	if err := fault.Arm(fault.NetsrvSession, fault.Behavior{Mode: fault.ModeError, Err: "drill"}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	code, msg := c.queryErr(1, "SELECT 1")
	if code != 500 {
		t.Fatalf("code = %d, want 500", code)
	}
	if msg == "" {
		t.Fatal("empty error message")
	}
	fault.Reset()
	c.query(2, "CREATE TABLE after_drill (i INT)")
}

// TestFaultNetsrvWrite: a write-side failure ends the session (the
// connection is unusable once a response cannot be written).
func TestFaultNetsrvWrite(t *testing.T) {
	p, token := newTestPlatform(t)
	addr := startServer(t, p, Options{})
	c := dialWire(t, addr)
	c.handshake(token)

	if err := fault.Arm(fault.NetsrvWrite, fault.Behavior{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	payload, err := proto.AppendQuery(nil, 1, "SELECT 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.FrameQuery, payload)
	if _, _, err := c.r.ReadFrame(); err == nil {
		t.Fatal("want closed connection after write fault")
	}
}

// TestRequestTimeout: a query held by a delay fault beyond the request
// timeout comes back as 504, mirroring the HTTP behavior.
func TestRequestTimeout(t *testing.T) {
	p, token := newTestPlatform(t)
	addr := startServer(t, p, Options{RequestTimeout: 50 * time.Millisecond})
	c := dialWire(t, addr)
	c.handshake(token)

	if err := fault.Arm(fault.NetsrvSession, fault.Behavior{Mode: fault.ModeDelay, Delay: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	code, _ := c.queryErr(1, "SELECT 1")
	if code != 504 {
		t.Fatalf("code = %d, want 504", code)
	}
}

// TestCloseSendsGoAway: shutting the server down broadcasts GOAWAY to
// open sessions and closes their connections.
func TestCloseSendsGoAway(t *testing.T) {
	p, token := newTestPlatform(t)
	srv := New(p, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialWire(t, addr)
	c.handshake(token)

	done := make(chan error, 1)
	go func() {
		done <- srv.Close()
	}()
	ft, payload := c.recv()
	if ft != proto.FrameGoAway {
		t.Fatalf("got %v, want GOAWAY", ft)
	}
	if reason, _ := proto.ParseGoAway(payload); reason != "server shutting down" {
		t.Fatalf("reason = %q", reason)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Connection is torn down after the notice.
	if _, _, err := c.r.ReadFrame(); err == nil {
		t.Fatal("want EOF after GOAWAY")
	}
}

// TestTenantIsolationOverWire: two tenants query the same logical
// table name over protocol sessions and see only their own rows — the
// paper's §2 isolation contract holds on the new front door.
func TestTenantIsolationOverWire(t *testing.T) {
	p, tokenAcme := newTestPlatform(t)
	root, _, err := p.Login("root", "toor")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := root.CreateTenant(ctx, "globex", "Globex", "standard"); err != nil {
		t.Fatal(err)
	}
	if err := root.CreateUser(ctx, security.UserSpec{
		Username: "bob", Password: "pw", Tenant: "globex",
		Roles: []string{services.RoleDesigner},
	}); err != nil {
		t.Fatal(err)
	}
	_, tokenGlobex, err := p.Login("bob", "pw")
	if err != nil {
		t.Fatal(err)
	}

	addr := startServer(t, p, Options{})
	ca := dialWire(t, addr)
	if tid := ca.handshake(tokenAcme); tid != "acme" {
		t.Fatalf("tenant = %q", tid)
	}
	cg := dialWire(t, addr)
	if tid := cg.handshake(tokenGlobex); tid != "globex" {
		t.Fatalf("tenant = %q", tid)
	}

	ca.query(1, "CREATE TABLE sales (amount INT)")
	cg.query(1, "CREATE TABLE sales (amount INT)")
	ca.query(2, "INSERT INTO sales (amount) VALUES (?)", int64(100))
	cg.query(2, "INSERT INTO sales (amount) VALUES (?)", int64(999))

	_, rowsA, _ := ca.query(3, "SELECT amount FROM sales")
	_, rowsG, _ := cg.query(3, "SELECT amount FROM sales")
	if len(rowsA) != 1 || rowsA[0][0] != int64(100) {
		t.Fatalf("acme rows = %v", rowsA)
	}
	if len(rowsG) != 1 || rowsG[0][0] != int64(999) {
		t.Fatalf("globex rows = %v", rowsG)
	}
}

// TestConcurrentSessions drives several authenticated sessions at once
// — the accept loop, per-session goroutines and the shared platform
// must hold up under parallel mixed traffic (run under -race in CI).
func TestConcurrentSessions(t *testing.T) {
	p, token := newTestPlatform(t)
	addr := startServer(t, p, Options{})
	setup := dialWire(t, addr)
	setup.handshake(token)
	setup.query(1, "CREATE TABLE hits (worker INT, n INT)")

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var reported error
			defer func() { errs <- reported }()
			conn, err := net.DialTimeout("tcp", addr.String(), 2*time.Second)
			if err != nil {
				reported = err
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(20 * time.Second))
			pw, pr := proto.NewWriter(conn), proto.NewReader(conn)
			send := func(ft proto.FrameType, payload []byte) error {
				if err := pw.WriteFrame(ft, payload); err != nil {
					return err
				}
				return pw.Flush()
			}
			if err := send(proto.FrameHello, proto.AppendHello(nil, token)); err != nil {
				reported = err
				return
			}
			if ft, _, err := pr.ReadFrame(); err != nil || ft != proto.FrameWelcome {
				reported = err
				return
			}
			for i := 0; i < 10; i++ {
				q, err := proto.AppendQuery(nil, uint32(i), "INSERT INTO hits (worker, n) VALUES (?, ?)", []storage.Value{int64(w), int64(i)})
				if err != nil {
					reported = err
					return
				}
				if err := send(proto.FrameQuery, q); err != nil {
					reported = err
					return
				}
				for {
					ft, _, err := pr.ReadFrame()
					if err != nil {
						reported = err
						return
					}
					if ft == proto.FrameResultDone {
						break
					}
					if ft == proto.FrameError {
						reported = errTestQueryFailed
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	_, rows, _ := setup.query(2, "SELECT COUNT(*) FROM hits")
	if len(rows) != 1 || rows[0][0] != int64(workers*10) {
		t.Fatalf("rows = %v, want %d inserts", rows, workers*10)
	}
}

var errTestQueryFailed = errTQF{}

type errTQF struct{}

func (errTQF) Error() string { return "query failed with ERROR frame" }
