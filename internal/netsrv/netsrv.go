// Package netsrv serves the ODBIS binary wire protocol (internal/proto)
// over TCP — the platform's second front door, beside the HTTP façade.
// Where HTTP pays connection setup, header parsing, JSON codec and
// token verification on every request, a protocol session pays them
// once: the handshake authenticates the connection, and every
// subsequent QUERY frame rides the open socket with binary framing.
//
// The two front doors share one operational envelope:
//
//   - Admission: both acquire from the same server.Admission semaphore,
//     so MaxInFlight bounds total in-flight work across transports. An
//     over-limit QUERY is answered with a RETRY frame carrying the same
//     backoff a 503's Retry-After would.
//   - Readiness: a platform that fails /readyz (stuck WAL latch,
//     all-tripped replica fleet) refuses new protocol sessions with
//     GOAWAY at accept time instead of accepting and erroring
//     mid-session.
//   - Timeouts: each request context derives from the session and is
//     bounded by the same request timeout the HTTP server applies.
//   - Errors: ERROR frames carry server.StatusFor codes, so a client
//     sees one error vocabulary regardless of transport.
//   - Routing: requests run through services.Session.Query, so cached
//     plans and replica read routing apply unchanged.
//
// One goroutine owns each connection end to end (read, execute, write)
// — no per-request fan-out, no shared writer, and a panic in a session
// is contained exactly like the HTTP recovery middleware contains
// handler panics.
package netsrv

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/odbis/odbis/internal/fault"
	"github.com/odbis/odbis/internal/obs"
	"github.com/odbis/odbis/internal/proto"
	"github.com/odbis/odbis/internal/server"
	"github.com/odbis/odbis/internal/services"
	"github.com/odbis/odbis/internal/tenant"
)

// Metric handles are resolved once at package init (request paths must
// not pay the registry lookup — see the obshandle analyzer).
var (
	gSessionsOpen       = obs.GetGauge("odbis_proto_sessions_open")
	mSessionsOpened     = obs.GetCounter("odbis_proto_sessions_opened_total")
	mSessionsClosed     = obs.GetCounter("odbis_proto_sessions_closed_total")
	mSessionsRefused    = obs.GetCounter("odbis_proto_sessions_refused_total")
	mHandshakeFailures  = obs.GetCounter("odbis_proto_handshake_failures_total")
	mFramesIn           = obs.GetCounter("odbis_proto_frames_in_total")
	mFramesOut          = obs.GetCounter("odbis_proto_frames_out_total")
	mBytesIn            = obs.GetCounter("odbis_proto_bytes_in_total")
	mBytesOut           = obs.GetCounter("odbis_proto_bytes_out_total")
	mRequests           = obs.GetCounter("odbis_proto_requests_total")
	mRequestErrors      = obs.GetCounter("odbis_proto_request_errors_total")
	mRetries            = obs.GetCounter("odbis_proto_retry_total")
	mSessionPanics      = obs.GetCounter("odbis_proto_session_panics_total")
	mRequestSeconds     = obs.GetHistogram("odbis_proto_request_seconds", nil)
	mHandshakeSeconds   = obs.GetHistogram("odbis_proto_handshake_seconds", nil)
	mChunkRowsStreamed  = obs.GetCounter("odbis_proto_rows_streamed_total")
	mGoAwaySent         = obs.GetCounter("odbis_proto_goaway_sent_total")
	mSessionQueueWaitNs = obs.GetHistogram("odbis_proto_queue_wait_seconds", nil)
)

// Options configure the protocol listener.
type Options struct {
	// RequestTimeout caps the wall-clock time of each QUERY, exactly as
	// the HTTP server's option does (0 = unbounded).
	RequestTimeout time.Duration
	// Admission, when non-nil, is the load-shedding semaphore shared
	// with the HTTP façade. Over-limit requests get a RETRY frame.
	Admission *server.Admission
	// RetryBackoff is the backoff advertised in RETRY frames (the
	// protocol twin of Retry-After; default 1s).
	RetryBackoff time.Duration
	// HandshakeTimeout bounds how long a new connection may take to
	// complete the HELLO/WELCOME exchange (default 5s). A connection
	// that dials and stalls must not pin a session goroutine forever.
	HandshakeTimeout time.Duration
	// ChunkRows is the row count per RESULT_CHUNK frame (default 256).
	// Chunking bounds per-frame memory on both sides of large results.
	ChunkRows int
	// MaxFrame bounds inbound frame payloads (default proto.DefaultMaxFrame).
	MaxFrame int
	// Ready gates new sessions: when it returns false the listener
	// answers the handshake with GOAWAY and closes, mirroring /readyz.
	// Nil means always ready.
	Ready func() bool
}

// Server is the protocol listener.
type Server struct {
	platform *services.Platform
	opts     Options

	// baseCtx parents every request context; Close cancels it, aborting
	// in-flight queries before connections are torn down.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	listener net.Listener
	sessions map[*session]struct{}
	closed   bool

	wg sync.WaitGroup
}

// New builds a protocol server over a platform.
func New(p *services.Platform, opts Options) *Server {
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = time.Second
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 5 * time.Second
	}
	if opts.ChunkRows <= 0 {
		opts.ChunkRows = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		platform: p,
		opts:     opts,
		baseCtx:  ctx,
		cancel:   cancel,
		sessions: make(map[*session]struct{}),
	}
}

// Listen starts accepting protocol sessions on addr and returns the
// bound address (so addr may use port 0 in tests). The accept loop and
// all sessions run on joined goroutines; Close tears everything down.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil, errors.New("netsrv: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				// Listener closed (shutdown) or fatal accept error:
				// either way the accept loop is done; sessions drain
				// independently and Close joins them.
				return
			}
			s.startSession(conn)
		}
	}()
	return l.Addr(), nil
}

// startSession launches the owning goroutine for one connection. The
// framing is wired here, before the goroutine exists, so Close's
// GOAWAY broadcast never races a half-initialized session.
func (s *Server) startSession(conn net.Conn) {
	sess := &session{srv: s, conn: conn, w: proto.NewWriter(conn), r: proto.NewReader(conn)}
	if s.opts.MaxFrame > 0 {
		sess.r.SetMaxFrame(s.opts.MaxFrame)
	}
	if !s.register(sess) {
		conn.Close()
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			// A panicking session must not take down the platform: the
			// HTTP recovery middleware is not on this stack, so the
			// protocol layer carries its own containment.
			if rec := recover(); rec != nil {
				mSessionPanics.Inc()
			}
			s.dropSession(sess)
		}()
		sess.run(s.baseCtx)
	}()
}

// register adds the session to the live set unless the server is
// already closing (in which case the caller drops the connection).
func (s *Server) register(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.sessions[sess] = struct{}{}
	return true
}

func (s *Server) dropSession(sess *session) {
	sess.conn.Close()
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

// Close stops accepting, cancels in-flight requests, sends best-effort
// GOAWAY to open sessions, closes their connections and joins every
// goroutine. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	open := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()

	// Cancel first: in-flight queries abort at their next checkpoint,
	// so sessions come home quickly instead of streaming out a large
	// result into a dying connection.
	s.cancel()
	if l != nil {
		l.Close()
	}
	for _, sess := range open {
		sess.goAway("server shutting down")
		sess.conn.Close()
	}
	s.wg.Wait()
	return nil
}

// ready reports whether new sessions should be admitted, mirroring the
// HTTP /readyz probe.
func (s *Server) ready() bool {
	if s.opts.Ready == nil {
		return true
	}
	return s.opts.Ready()
}

// session is one authenticated protocol connection, owned end to end
// by a single goroutine (run). writeMu serializes that goroutine's
// response frames against the best-effort GOAWAY Close sends from the
// shutdown path — the only cross-goroutine writer.
type session struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex
	w       *proto.Writer
	r       *proto.Reader

	sess *services.Session
	// buf is the reused frame-encode buffer: steady-state responses
	// allocate nothing on the encode side.
	buf []byte
}

// run drives the connection: readiness gate, handshake, request loop.
func (sn *session) run(base context.Context) {
	mSessionsOpened.Inc()
	gSessionsOpen.Add(1)
	defer func() {
		gSessionsOpen.Add(-1)
		mSessionsClosed.Inc()
		mFramesIn.Add(int64(sn.r.Frames()))
		mBytesIn.Add(int64(sn.r.Bytes()))
		// Writer counters are shared with the shutdown GOAWAY path, so
		// they are read under the same lock that guards those writes.
		sn.writeMu.Lock()
		mFramesOut.Add(int64(sn.w.Frames()))
		mBytesOut.Add(int64(sn.w.Bytes()))
		sn.writeMu.Unlock()
	}()

	// A degraded platform refuses the session up front — a degraded platform refuses the session up front —
	// the client's pool can dial a healthy instance instead of
	// discovering the degradation one failed query at a time.
	if !sn.srv.ready() {
		mSessionsRefused.Inc()
		sn.goAway("platform not ready")
		return
	}

	if !sn.handshake() {
		return
	}

	for {
		t, payload, err := sn.r.ReadFrame()
		if err != nil {
			// EOF, closed connection, oversized or corrupt frame: the
			// session ends. Corruption is not recoverable — framing is
			// lost — so there is no error frame to send here.
			return
		}
		switch t {
		case proto.FramePing:
			if !sn.respond(func() error {
				return sn.w.WriteFrame(proto.FramePong, payload)
			}) {
				return
			}
		case proto.FrameQuery:
			if !sn.handleQuery(base, payload) {
				return
			}
		case proto.FrameGoAway:
			// Client is done with the connection.
			return
		default:
			if !sn.respond(func() error {
				sn.buf = proto.AppendError(sn.buf[:0], 0, 400, fmt.Sprintf("unexpected %v frame", t))
				return sn.w.WriteFrame(proto.FrameError, sn.buf)
			}) {
				return
			}
		}
	}
}

// handshake performs the HELLO/WELCOME exchange under a deadline,
// resolving the bearer token to a platform session. It reports whether
// the connection is authenticated and may proceed.
func (sn *session) handshake() bool {
	start := time.Now()
	sn.conn.SetDeadline(start.Add(sn.srv.opts.HandshakeTimeout))
	defer sn.conn.SetDeadline(time.Time{})

	t, payload, err := sn.r.ReadFrame()
	if err != nil || t != proto.FrameHello {
		mHandshakeFailures.Inc()
		sn.sendError(0, 400, "expected HELLO")
		return false
	}
	token, err := proto.ParseHello(payload)
	if err != nil {
		mHandshakeFailures.Inc()
		sn.sendError(0, 400, err.Error())
		return false
	}
	sess, err := sn.srv.platform.Resume(token)
	if err != nil {
		mHandshakeFailures.Inc()
		sn.sendError(0, uint16(server.StatusFor(err)), err.Error())
		return false
	}
	sn.sess = sess
	ok := sn.respond(func() error {
		sn.buf = proto.AppendWelcome(sn.buf[:0], sess.Principal.Tenant)
		return sn.w.WriteFrame(proto.FrameWelcome, sn.buf)
	})
	mHandshakeSeconds.ObserveDuration(time.Since(start))
	return ok
}

// handleQuery executes one QUERY frame: admission, context assembly,
// execution, streamed response. It reports whether the session should
// continue (false = write side failed, connection is dead).
func (sn *session) handleQuery(base context.Context, payload []byte) bool {
	start := time.Now()
	mRequests.Inc()
	id, sqlText, args, err := proto.ParseQuery(payload)
	if err != nil {
		mRequestErrors.Inc()
		return sn.sendError(0, 400, "malformed QUERY: "+err.Error())
	}

	// Admission: the shared semaphore bounds in-flight work across both
	// front doors. Shedding answers with RETRY — the protocol twin of
	// 503 + Retry-After — and keeps the session alive.
	admitted, wait := sn.srv.opts.Admission.Acquire(base)
	if wait > 0 {
		mSessionQueueWaitNs.ObserveDuration(wait)
	}
	if !admitted {
		mRetries.Inc()
		return sn.respond(func() error {
			sn.buf = proto.AppendRetry(sn.buf[:0], id, sn.srv.opts.RetryBackoff)
			return sn.w.WriteFrame(proto.FrameRetry, sn.buf)
		})
	}
	defer sn.srv.opts.Admission.Release()

	// The request context mirrors withSession on the HTTP side: tenant
	// identity from the handshake, per-tenant usage accounting, trace
	// root, request timeout, and the injection point for fault drills.
	ctx, root := obs.StartTrace(base, "PROTO query")
	if tid := sn.sess.Principal.Tenant; tid != "" {
		ctx = tenant.NewContext(ctx, tid)
		obs.SetTraceTenant(ctx, tid)
		obs.AddTenant(ctx, obs.TenantRequests, 1)
		if wait > 0 {
			obs.AddTenant(ctx, obs.TenantQueueWaitNs, wait.Nanoseconds())
		}
	}
	if to := sn.srv.opts.RequestTimeout; to > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, to)
		defer cancel()
	}
	defer root.End()

	if err := fault.PointCtx(ctx, fault.NetsrvSession); err != nil {
		mRequestErrors.Inc()
		return sn.sendError(id, uint16(server.StatusFor(err)), err.Error())
	}

	res, err := sn.sess.Query(ctx, sqlText, args...)
	if err != nil {
		mRequestErrors.Inc()
		return sn.sendError(id, uint16(server.StatusFor(err)), err.Error())
	}

	ok := sn.respond(func() error {
		sn.buf = proto.AppendResultHeader(sn.buf[:0], id, res.Columns)
		if err := sn.w.WriteFrame(proto.FrameResultHeader, sn.buf); err != nil {
			return err
		}
		rows := res.Rows
		for len(rows) > 0 {
			n := sn.srv.opts.ChunkRows
			if n > len(rows) {
				n = len(rows)
			}
			var err error
			if sn.buf, err = proto.AppendRows(sn.buf[:0], id, rows[:n]); err != nil {
				return err
			}
			if err := sn.w.WriteFrame(proto.FrameResultChunk, sn.buf); err != nil {
				return err
			}
			mChunkRowsStreamed.Add(int64(n))
			rows = rows[n:]
		}
		sn.buf = proto.AppendDone(sn.buf[:0], id, uint32(res.Affected), uint32(len(res.Rows)), res.Plan)
		return sn.w.WriteFrame(proto.FrameResultDone, sn.buf)
	})
	mRequestSeconds.ObserveDuration(time.Since(start))
	return ok
}

// respond runs a write sequence under the write lock and flushes. The
// netsrv.write fault point fires first: arming it simulates the
// connection dying mid-response. Returns false when the write side
// failed (the caller should end the session).
func (sn *session) respond(write func() error) bool {
	sn.writeMu.Lock()
	defer sn.writeMu.Unlock()
	if err := fault.Point(fault.NetsrvWrite); err != nil {
		return false
	}
	if err := write(); err != nil {
		return false
	}
	return sn.w.Flush() == nil
}

// sendError writes an ERROR frame; the session continues (true) unless
// the write itself failed.
func (sn *session) sendError(id uint32, code uint16, msg string) bool {
	return sn.respond(func() error {
		sn.buf = proto.AppendError(sn.buf[:0], id, code, msg)
		return sn.w.WriteFrame(proto.FrameError, sn.buf)
	})
}

// goAway sends a best-effort GOAWAY frame. Called from the session's
// own goroutine (refused sessions) and from Close (shutdown broadcast)
// — the write lock makes the two safe together.
func (sn *session) goAway(reason string) {
	sn.writeMu.Lock()
	defer sn.writeMu.Unlock()
	// The GOAWAY payload is built on a local buffer, not sn.buf: the
	// shutdown path runs concurrently with the session goroutine, which
	// owns sn.buf.
	payload := proto.AppendGoAway(nil, reason)
	if err := sn.w.WriteFrame(proto.FrameGoAway, payload); err != nil {
		return
	}
	sn.w.Flush()
	mGoAwaySent.Inc()
}
