package metamodel

import (
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// XML interchange in the spirit of XMI: models serialize to a
// deterministic XML document and can be re-imported against the same
// metamodel. The paper's platform relies on JMI's XMI support for
// "metamodel and metadata interchange via XML"; this file provides the
// equivalent facility.

type xmiDoc struct {
	XMLName   xml.Name     `xml:"xmi"`
	Metamodel string       `xml:"metamodel,attr"`
	Version   string       `xml:"version,attr"`
	Elements  []xmiElement `xml:"element"`
}

type xmiElement struct {
	ID    string    `xml:"id,attr"`
	Class string    `xml:"class,attr"`
	Attrs []xmiAttr `xml:"attr"`
	Refs  []xmiRef  `xml:"ref"`
}

type xmiAttr struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
	// Enc marks base64-encoded values: strings containing characters XML
	// cannot carry (control characters, invalid UTF-8) are transported
	// opaquely so every Go string round-trips.
	Enc   string `xml:"enc,attr,omitempty"`
	Value string `xml:",chardata"`
}

// xmlSafe reports whether s consists solely of characters representable
// in XML 1.0 character data.
func xmlSafe(s string) bool {
	if !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		// \r is representable but parsers normalize it to \n, so it is
		// treated as unsafe to keep round-trips byte-exact.
		ok := r == 0x9 || r == 0xA ||
			(r >= 0x20 && r <= 0xD7FF) ||
			(r >= 0xE000 && r <= 0xFFFD) ||
			(r >= 0x10000 && r <= 0x10FFFF)
		if !ok {
			return false
		}
	}
	return true
}

type xmiRef struct {
	Name    string `xml:"name,attr"`
	Targets string `xml:"targets,attr"` // space-separated element ids
}

const xmiVersion = "1.0"

// Export writes the model as XML.
func (m *Model) Export(w io.Writer) error {
	doc := xmiDoc{Metamodel: m.mm.Name, Version: xmiVersion}
	for _, e := range m.elements {
		xe := xmiElement{ID: e.id, Class: e.class.Name}
		for _, name := range e.sortedAttrNames() {
			v := e.attrs[name]
			var typ, val, enc string
			switch x := v.(type) {
			case string:
				typ, val = "string", x
				if !xmlSafe(x) {
					val = base64.StdEncoding.EncodeToString([]byte(x))
					enc = "base64"
				}
			case int64:
				typ, val = "int", strconv.FormatInt(x, 10)
			case float64:
				typ, val = "float", strconv.FormatFloat(x, 'g', -1, 64)
			case bool:
				typ, val = "bool", strconv.FormatBool(x)
			default:
				return fmt.Errorf("metamodel: cannot export attribute %s=%T", name, v)
			}
			xe.Attrs = append(xe.Attrs, xmiAttr{Name: name, Type: typ, Enc: enc, Value: val})
		}
		for _, name := range e.sortedRefNames() {
			ids := make([]string, len(e.refs[name]))
			for i, t := range e.refs[name] {
				ids[i] = t.id
			}
			xe.Refs = append(xe.Refs, xmiRef{Name: name, Targets: strings.Join(ids, " ")})
		}
		doc.Elements = append(doc.Elements, xe)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ExportString renders the model as an XML string.
func (m *Model) ExportString() (string, error) {
	var sb strings.Builder
	if err := m.Export(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Import reads an XML document produced by Export into a fresh model over
// mm. Element ids are preserved.
func Import(mm *Metamodel, r io.Reader) (*Model, error) {
	var doc xmiDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("metamodel: import: %w", err)
	}
	if doc.Metamodel != mm.Name {
		return nil, fmt.Errorf("metamodel: document targets metamodel %q, not %q", doc.Metamodel, mm.Name)
	}
	m := NewModel(mm)
	// First pass: create elements with their original ids.
	for _, xe := range doc.Elements {
		c, ok := mm.classes[xe.Class]
		if !ok {
			return nil, fmt.Errorf("metamodel: import: unknown class %q", xe.Class)
		}
		if c.Abstract {
			return nil, fmt.Errorf("metamodel: import: abstract class %q", xe.Class)
		}
		if _, dup := m.byID[xe.ID]; dup {
			return nil, fmt.Errorf("metamodel: import: duplicate id %q", xe.ID)
		}
		e := &Element{id: xe.ID, class: c, attrs: make(map[string]any), refs: make(map[string][]*Element), model: m}
		m.elements = append(m.elements, e)
		m.byID[e.id] = e
		// Keep the id counter ahead of any imported numeric suffix so new
		// elements cannot collide with imported ids.
		m.nextID++
		if dash := strings.LastIndexByte(xe.ID, '-'); dash >= 0 {
			if n, err := strconv.Atoi(xe.ID[dash+1:]); err == nil && n > m.nextID {
				m.nextID = n
			}
		}
		for _, xa := range xe.Attrs {
			var v any
			var err error
			switch xa.Type {
			case "string":
				if xa.Enc == "base64" {
					raw, derr := base64.StdEncoding.DecodeString(xa.Value)
					if derr != nil {
						err = fmt.Errorf("bad base64 value: %w", derr)
						break
					}
					v = string(raw)
					break
				}
				v = xa.Value
			case "int":
				v, err = strconv.ParseInt(xa.Value, 10, 64)
			case "float":
				v, err = strconv.ParseFloat(xa.Value, 64)
			case "bool":
				v, err = strconv.ParseBool(xa.Value)
			default:
				err = fmt.Errorf("unknown attribute type %q", xa.Type)
			}
			if err != nil {
				return nil, fmt.Errorf("metamodel: import %s.%s: %w", xe.ID, xa.Name, err)
			}
			if err := e.Set(xa.Name, v); err != nil {
				return nil, err
			}
		}
	}
	// Second pass: resolve references.
	for _, xe := range doc.Elements {
		e := m.byID[xe.ID]
		for _, xr := range xe.Refs {
			for _, tid := range strings.Fields(xr.Targets) {
				t, ok := m.byID[tid]
				if !ok {
					return nil, fmt.Errorf("metamodel: import: %s.%s references missing element %q", xe.ID, xr.Name, tid)
				}
				if err := e.Add(xr.Name, t); err != nil {
					return nil, err
				}
			}
		}
	}
	return m, nil
}

// ImportString is Import from a string.
func ImportString(mm *Metamodel, s string) (*Model, error) {
	return Import(mm, strings.NewReader(s))
}

// Clone deep-copies a model via an in-memory export/import round-trip.
func (m *Model) Clone() (*Model, error) {
	s, err := m.ExportString()
	if err != nil {
		return nil, err
	}
	return ImportString(m.mm, s)
}
