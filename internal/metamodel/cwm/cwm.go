// Package cwm defines the Common Warehouse Metamodel packages the ODBIS
// domain model is built on (paper §3.2/§3.3): Relational,
// Multidimensional (OLAP), Transformation, and the Business Nomenclature
// extension, plus the conceptual (CIM-level) star-schema metamodel used
// by the model-driven DW service.
//
// Each metamodel is constructed once at package init on the reflective
// kernel of package metamodel — the same layering as CWM on MOF/JMI.
package cwm

import (
	"github.com/odbis/odbis/internal/metamodel"
)

// Metamodel names.
const (
	ConceptualName     = "CWM-Conceptual"
	RelationalName     = "CWM-Relational"
	OLAPName           = "CWM-OLAP"
	TransformationName = "CWM-Transformation"
	NomenclatureName   = "CWMX-Nomenclature"
)

var (
	// Conceptual is the CIM-level metamodel: business facts, dimensions,
	// measures and goals, before any platform commitment.
	Conceptual = buildConceptual()
	// Relational is the CWM Relational package subset: catalogs, schemas,
	// tables, columns, keys.
	Relational = buildRelational()
	// OLAP is the CWM OLAP package subset: cubes, dimensions,
	// hierarchies, levels and measures.
	OLAP = buildOLAP()
	// Transformation is the CWM Transformation package subset: activities
	// composed of steps mapping sources to targets.
	Transformation = buildTransformation()
	// Nomenclature is the CWMX business-nomenclature extension:
	// glossaries of business terms linked to technical elements.
	Nomenclature = buildNomenclature()
)

func named(required bool) metamodel.Attribute {
	return metamodel.Attribute{Name: "name", Type: metamodel.AttrString, Required: required}
}

func buildConceptual() *metamodel.Metamodel {
	mm := metamodel.New(ConceptualName)
	mm.MustDefine(metamodel.ClassSpec{
		Name:     "BusinessElement",
		Abstract: true,
		Attributes: []metamodel.Attribute{
			named(true),
			{Name: "description", Type: metamodel.AttrString},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "BusinessGoal",
		Super: "BusinessElement",
		Attributes: []metamodel.Attribute{
			{Name: "priority", Type: metamodel.AttrInt},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "BusinessProcess",
		Super: "BusinessElement",
		References: []metamodel.Reference{
			{Name: "goals", Target: "BusinessGoal", Many: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "MeasureConcept",
		Super: "BusinessElement",
		Attributes: []metamodel.Attribute{
			{Name: "aggregation", Type: metamodel.AttrString,
				Enum: []string{"sum", "avg", "min", "max", "count"}},
			{Name: "unit", Type: metamodel.AttrString},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "AttributeConcept",
		Super: "BusinessElement",
		Attributes: []metamodel.Attribute{
			{Name: "datatype", Type: metamodel.AttrString,
				Enum: []string{"text", "number", "date", "flag"}},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "LevelConcept",
		Super: "BusinessElement",
		References: []metamodel.Reference{
			{Name: "attributes", Target: "AttributeConcept", Containment: true, Many: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "DimensionConcept",
		Super: "BusinessElement",
		Attributes: []metamodel.Attribute{
			{Name: "temporal", Type: metamodel.AttrBool},
		},
		References: []metamodel.Reference{
			// Levels ordered coarse→fine (year → month → day).
			{Name: "levels", Target: "LevelConcept", Containment: true, Many: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "FactConcept",
		Super: "BusinessElement",
		References: []metamodel.Reference{
			{Name: "measures", Target: "MeasureConcept", Containment: true, Many: true, Required: true},
			{Name: "dimensions", Target: "DimensionConcept", Many: true, Required: true},
			{Name: "process", Target: "BusinessProcess"},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "ConceptualSchema",
		Super: "BusinessElement",
		References: []metamodel.Reference{
			{Name: "facts", Target: "FactConcept", Containment: true, Many: true},
			{Name: "dimensions", Target: "DimensionConcept", Containment: true, Many: true},
			{Name: "processes", Target: "BusinessProcess", Containment: true, Many: true},
		},
	})
	if err := mm.Validate(); err != nil {
		panic(err)
	}
	return mm
}

func buildRelational() *metamodel.Metamodel {
	mm := metamodel.New(RelationalName)
	mm.MustDefine(metamodel.ClassSpec{
		Name:     "ModelElement",
		Abstract: true,
		Attributes: []metamodel.Attribute{
			named(true),
			{Name: "description", Type: metamodel.AttrString},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Column",
		Super: "ModelElement",
		Attributes: []metamodel.Attribute{
			{Name: "type", Type: metamodel.AttrString, Required: true,
				Enum: []string{"INT", "FLOAT", "TEXT", "BOOL", "TIMESTAMP", "BYTES"}},
			{Name: "nullable", Type: metamodel.AttrBool},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "PrimaryKey",
		Super: "ModelElement",
		References: []metamodel.Reference{
			{Name: "columns", Target: "Column", Many: true, Required: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Table",
		Super: "ModelElement",
		Attributes: []metamodel.Attribute{
			// Role distinguishes star-schema parts for downstream
			// transformations.
			{Name: "role", Type: metamodel.AttrString,
				Enum: []string{"fact", "dimension", "staging", "plain"}},
		},
		References: []metamodel.Reference{
			{Name: "columns", Target: "Column", Containment: true, Many: true, Required: true},
			{Name: "primaryKey", Target: "PrimaryKey", Containment: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "ForeignKey",
		Super: "ModelElement",
		References: []metamodel.Reference{
			{Name: "columns", Target: "Column", Many: true, Required: true},
			{Name: "referencedTable", Target: "Table", Required: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Schema",
		Super: "ModelElement",
		References: []metamodel.Reference{
			{Name: "tables", Target: "Table", Containment: true, Many: true},
			{Name: "foreignKeys", Target: "ForeignKey", Containment: true, Many: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Catalog",
		Super: "ModelElement",
		References: []metamodel.Reference{
			{Name: "schemas", Target: "Schema", Containment: true, Many: true},
		},
	})
	if err := mm.Validate(); err != nil {
		panic(err)
	}
	return mm
}

func buildOLAP() *metamodel.Metamodel {
	mm := metamodel.New(OLAPName)
	mm.MustDefine(metamodel.ClassSpec{
		Name:     "OLAPElement",
		Abstract: true,
		Attributes: []metamodel.Attribute{
			named(true),
			{Name: "description", Type: metamodel.AttrString},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "LevelAttribute",
		Super: "OLAPElement",
		Attributes: []metamodel.Attribute{
			{Name: "column", Type: metamodel.AttrString, Required: true},
			// datatype carries the conceptual typing down to the PSM:
			// text, number, date or flag.
			{Name: "datatype", Type: metamodel.AttrString,
				Enum: []string{"text", "number", "date", "flag"}},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Level",
		Super: "OLAPElement",
		Attributes: []metamodel.Attribute{
			{Name: "column", Type: metamodel.AttrString, Required: true},
		},
		References: []metamodel.Reference{
			{Name: "attributes", Target: "LevelAttribute", Containment: true, Many: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Hierarchy",
		Super: "OLAPElement",
		References: []metamodel.Reference{
			{Name: "levels", Target: "Level", Containment: true, Many: true, Required: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Dimension",
		Super: "OLAPElement",
		Attributes: []metamodel.Attribute{
			{Name: "table", Type: metamodel.AttrString, Required: true},
			{Name: "keyColumn", Type: metamodel.AttrString, Required: true},
			{Name: "temporal", Type: metamodel.AttrBool},
		},
		References: []metamodel.Reference{
			{Name: "hierarchies", Target: "Hierarchy", Containment: true, Many: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Measure",
		Super: "OLAPElement",
		Attributes: []metamodel.Attribute{
			{Name: "column", Type: metamodel.AttrString, Required: true},
			{Name: "aggregation", Type: metamodel.AttrString, Required: true,
				Enum: []string{"sum", "avg", "min", "max", "count"}},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "CubeDimensionAssociation",
		Super: "OLAPElement",
		Attributes: []metamodel.Attribute{
			{Name: "foreignKeyColumn", Type: metamodel.AttrString, Required: true},
		},
		References: []metamodel.Reference{
			{Name: "dimension", Target: "Dimension", Required: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Cube",
		Super: "OLAPElement",
		Attributes: []metamodel.Attribute{
			{Name: "factTable", Type: metamodel.AttrString, Required: true},
		},
		References: []metamodel.Reference{
			{Name: "measures", Target: "Measure", Containment: true, Many: true, Required: true},
			{Name: "dimensionAssociations", Target: "CubeDimensionAssociation", Containment: true, Many: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Schema",
		Super: "OLAPElement",
		References: []metamodel.Reference{
			{Name: "cubes", Target: "Cube", Containment: true, Many: true},
			{Name: "dimensions", Target: "Dimension", Containment: true, Many: true},
		},
	})
	if err := mm.Validate(); err != nil {
		panic(err)
	}
	return mm
}

func buildTransformation() *metamodel.Metamodel {
	mm := metamodel.New(TransformationName)
	mm.MustDefine(metamodel.ClassSpec{
		Name:     "TransformationElement",
		Abstract: true,
		Attributes: []metamodel.Attribute{
			named(true),
			{Name: "description", Type: metamodel.AttrString},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "DataObject",
		Super: "TransformationElement",
		Attributes: []metamodel.Attribute{
			{Name: "kind", Type: metamodel.AttrString, Required: true,
				Enum: []string{"csv", "json", "table"}},
			{Name: "location", Type: metamodel.AttrString, Required: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "FeatureMap",
		Super: "TransformationElement",
		Attributes: []metamodel.Attribute{
			{Name: "source", Type: metamodel.AttrString, Required: true},
			{Name: "target", Type: metamodel.AttrString, Required: true},
			{Name: "expression", Type: metamodel.AttrString},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "TransformationStep",
		Super: "TransformationElement",
		Attributes: []metamodel.Attribute{
			{Name: "operation", Type: metamodel.AttrString, Required: true,
				Enum: []string{"extract", "filter", "map", "lookup", "aggregate", "load"}},
			{Name: "condition", Type: metamodel.AttrString},
		},
		References: []metamodel.Reference{
			{Name: "source", Target: "DataObject"},
			{Name: "target", Target: "DataObject"},
			{Name: "featureMaps", Target: "FeatureMap", Containment: true, Many: true},
			{Name: "precedes", Target: "TransformationStep", Many: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "TransformationActivity",
		Super: "TransformationElement",
		Attributes: []metamodel.Attribute{
			{Name: "schedule", Type: metamodel.AttrString},
		},
		References: []metamodel.Reference{
			{Name: "steps", Target: "TransformationStep", Containment: true, Many: true, Required: true},
			{Name: "dataObjects", Target: "DataObject", Containment: true, Many: true},
		},
	})
	if err := mm.Validate(); err != nil {
		panic(err)
	}
	return mm
}

func buildNomenclature() *metamodel.Metamodel {
	mm := metamodel.New(NomenclatureName)
	mm.MustDefine(metamodel.ClassSpec{
		Name: "Term",
		Attributes: []metamodel.Attribute{
			named(true),
			{Name: "definition", Type: metamodel.AttrString, Required: true},
			{Name: "technicalElement", Type: metamodel.AttrString},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name: "Glossary",
		Attributes: []metamodel.Attribute{
			named(true),
			{Name: "language", Type: metamodel.AttrString},
		},
		References: []metamodel.Reference{
			{Name: "terms", Target: "Term", Containment: true, Many: true},
			{Name: "related", Target: "Glossary", Many: true},
		},
	})
	if err := mm.Validate(); err != nil {
		panic(err)
	}
	return mm
}
