package cwm

import (
	"testing"

	"github.com/odbis/odbis/internal/metamodel"
)

func TestMetamodelsWellFormed(t *testing.T) {
	for _, mm := range []*metamodel.Metamodel{Conceptual, Relational, OLAP, Transformation, Nomenclature} {
		if err := mm.Validate(); err != nil {
			t.Errorf("%s: %v", mm.Name, err)
		}
		if len(mm.Classes()) == 0 {
			t.Errorf("%s: no classes", mm.Name)
		}
	}
}

func salesStar() StarSpec {
	return StarSpec{
		Name: "RetailSales",
		Dimensions: []DimensionSpec{
			{Name: "Date", Temporal: true, Levels: []LevelSpec{
				{Name: "Year"}, {Name: "Month"}, {Name: "Day"},
			}},
			{Name: "Product", Levels: []LevelSpec{
				{Name: "Category", Attributes: []AttributeSpec{{Name: "category_name"}}},
				{Name: "SKU", Attributes: []AttributeSpec{{Name: "sku_name"}, {Name: "price", Datatype: "number"}}},
			}},
			{Name: "Store", Levels: []LevelSpec{
				{Name: "Region"}, {Name: "City"}, {Name: "Store"},
			}},
		},
		Facts: []FactSpec{
			{
				Name:       "Sales",
				Measures:   []MeasureSpec{{Name: "amount", Aggregation: "sum", Unit: "EUR"}, {Name: "qty", Aggregation: "sum"}},
				Dimensions: []string{"Date", "Product", "Store"},
			},
		},
	}
}

func TestStarSpecBuild(t *testing.T) {
	m, err := salesStar().Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	facts := m.ElementsOf("FactConcept")
	if len(facts) != 1 {
		t.Fatalf("facts = %d", len(facts))
	}
	f := facts[0]
	if len(f.Refs("measures")) != 2 || len(f.Refs("dimensions")) != 3 {
		t.Errorf("fact shape wrong: %d measures, %d dims", len(f.Refs("measures")), len(f.Refs("dimensions")))
	}
	date, ok := m.FindByName("DimensionConcept", "Date")
	if !ok || !date.Bool("temporal") {
		t.Error("Date dimension wrong")
	}
	if len(date.Refs("levels")) != 3 {
		t.Errorf("date levels = %d", len(date.Refs("levels")))
	}
}

func TestStarSpecUnknownDimension(t *testing.T) {
	spec := StarSpec{
		Name:  "Bad",
		Facts: []FactSpec{{Name: "f", Measures: []MeasureSpec{{Name: "m"}}, Dimensions: []string{"Ghost"}}},
	}
	if _, err := spec.Build(); err == nil {
		t.Error("unknown dimension accepted")
	}
}

func TestStarSpecDefaults(t *testing.T) {
	spec := StarSpec{
		Name:       "D",
		Dimensions: []DimensionSpec{{Name: "X", Levels: []LevelSpec{{Name: "L", Attributes: []AttributeSpec{{Name: "a"}}}}}},
		Facts:      []FactSpec{{Name: "f", Measures: []MeasureSpec{{Name: "m"}}, Dimensions: []string{"X"}}},
	}
	m, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	meas := m.ElementsOf("MeasureConcept")[0]
	if meas.Str("aggregation") != "sum" {
		t.Errorf("default aggregation = %q", meas.Str("aggregation"))
	}
	attr := m.ElementsOf("AttributeConcept")[0]
	if attr.Str("datatype") != "text" {
		t.Errorf("default datatype = %q", attr.Str("datatype"))
	}
}

func TestConceptualXMLRoundTrip(t *testing.T) {
	m, err := salesStar().Build()
	if err != nil {
		t.Fatal(err)
	}
	xml, err := m.ExportString()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := metamodel.ImportString(Conceptual, xml)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != m.Len() {
		t.Errorf("round trip len = %d, want %d", m2.Len(), m.Len())
	}
	if err := m2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRelationalModelConstruction(t *testing.T) {
	m := metamodel.NewModel(Relational)
	cat := m.MustNew("Catalog").MustSet("name", "dw")
	sch := m.MustNew("Schema").MustSet("name", "public")
	cat.MustAdd("schemas", sch)
	tab := m.MustNew("Table").MustSet("name", "fact_sales").MustSet("role", "fact")
	sch.MustAdd("tables", tab)
	col := m.MustNew("Column").MustSet("name", "amount").MustSet("type", "FLOAT")
	tab.MustAdd("columns", col)
	pkCol := m.MustNew("Column").MustSet("name", "id").MustSet("type", "INT")
	tab.MustAdd("columns", pkCol)
	pk := m.MustNew("PrimaryKey").MustSet("name", "fact_sales_pk")
	pk.MustAdd("columns", pkCol)
	tab.MustAdd("primaryKey", pk)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if col2 := m.ElementsOf("Column"); len(col2) != 2 {
		t.Errorf("columns = %d", len(col2))
	}
}

func TestOLAPModelConstruction(t *testing.T) {
	m := metamodel.NewModel(OLAP)
	cube := m.MustNew("Cube").MustSet("name", "Sales").MustSet("factTable", "fact_sales")
	meas := m.MustNew("Measure").MustSet("name", "amount").MustSet("column", "amount").MustSet("aggregation", "sum")
	cube.MustAdd("measures", meas)
	dim := m.MustNew("Dimension").MustSet("name", "Date").MustSet("table", "dim_date").MustSet("keyColumn", "id")
	h := m.MustNew("Hierarchy").MustSet("name", "calendar")
	lvl := m.MustNew("Level").MustSet("name", "Year").MustSet("column", "year")
	h.MustAdd("levels", lvl)
	dim.MustAdd("hierarchies", h)
	assoc := m.MustNew("CubeDimensionAssociation").MustSet("name", "date_assoc").MustSet("foreignKeyColumn", "date_id")
	assoc.MustAdd("dimension", dim)
	cube.MustAdd("dimensionAssociations", assoc)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Enum enforcement on aggregation.
	if err := meas.Set("aggregation", "median"); err == nil {
		t.Error("invalid aggregation accepted")
	}
}

func TestNomenclature(t *testing.T) {
	m := metamodel.NewModel(Nomenclature)
	g := m.MustNew("Glossary").MustSet("name", "healthcare").MustSet("language", "en")
	term := m.MustNew("Term").MustSet("name", "admission").
		MustSet("definition", "a patient entering care").
		MustSet("technicalElement", "fact_admissions")
	g.MustAdd("terms", term)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
