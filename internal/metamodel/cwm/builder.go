package cwm

import (
	"fmt"

	"github.com/odbis/odbis/internal/metamodel"
)

// StarSpec is a convenience description of a conceptual star schema, the
// usual starting point of a DW project in the MDDWS workflow. Build turns
// it into a validated CIM (Conceptual) model.
type StarSpec struct {
	Name       string
	Facts      []FactSpec
	Dimensions []DimensionSpec
}

// FactSpec describes one business fact.
type FactSpec struct {
	Name        string
	Description string
	Measures    []MeasureSpec
	// Dimensions lists dimension names (must appear in StarSpec.Dimensions).
	Dimensions []string
}

// MeasureSpec describes one measure of a fact.
type MeasureSpec struct {
	Name        string
	Aggregation string // sum, avg, min, max, count
	Unit        string
}

// DimensionSpec describes one analysis dimension.
type DimensionSpec struct {
	Name     string
	Temporal bool
	// Levels are ordered coarse→fine; each level has typed attributes.
	Levels []LevelSpec
}

// LevelSpec describes one level of a dimension.
type LevelSpec struct {
	Name       string
	Attributes []AttributeSpec
}

// AttributeSpec describes one attribute of a level.
type AttributeSpec struct {
	Name     string
	Datatype string // text, number, date, flag
}

// Build constructs the conceptual model for the spec.
func (s StarSpec) Build() (*metamodel.Model, error) {
	m := metamodel.NewModel(Conceptual)
	schema, err := m.New("ConceptualSchema")
	if err != nil {
		return nil, err
	}
	if err := schema.Set("name", s.Name); err != nil {
		return nil, err
	}
	dims := make(map[string]*metamodel.Element, len(s.Dimensions))
	for _, ds := range s.Dimensions {
		d, err := m.New("DimensionConcept")
		if err != nil {
			return nil, err
		}
		if err := d.Set("name", ds.Name); err != nil {
			return nil, err
		}
		if err := d.Set("temporal", ds.Temporal); err != nil {
			return nil, err
		}
		for _, ls := range ds.Levels {
			l, err := m.New("LevelConcept")
			if err != nil {
				return nil, err
			}
			if err := l.Set("name", ls.Name); err != nil {
				return nil, err
			}
			for _, as := range ls.Attributes {
				a, err := m.New("AttributeConcept")
				if err != nil {
					return nil, err
				}
				if err := a.Set("name", as.Name); err != nil {
					return nil, err
				}
				dt := as.Datatype
				if dt == "" {
					dt = "text"
				}
				if err := a.Set("datatype", dt); err != nil {
					return nil, err
				}
				if err := l.Add("attributes", a); err != nil {
					return nil, err
				}
			}
			if err := d.Add("levels", l); err != nil {
				return nil, err
			}
		}
		if err := schema.Add("dimensions", d); err != nil {
			return nil, err
		}
		dims[ds.Name] = d
	}
	for _, fs := range s.Facts {
		f, err := m.New("FactConcept")
		if err != nil {
			return nil, err
		}
		if err := f.Set("name", fs.Name); err != nil {
			return nil, err
		}
		if fs.Description != "" {
			if err := f.Set("description", fs.Description); err != nil {
				return nil, err
			}
		}
		for _, ms := range fs.Measures {
			me, err := m.New("MeasureConcept")
			if err != nil {
				return nil, err
			}
			if err := me.Set("name", ms.Name); err != nil {
				return nil, err
			}
			agg := ms.Aggregation
			if agg == "" {
				agg = "sum"
			}
			if err := me.Set("aggregation", agg); err != nil {
				return nil, err
			}
			if ms.Unit != "" {
				if err := me.Set("unit", ms.Unit); err != nil {
					return nil, err
				}
			}
			if err := f.Add("measures", me); err != nil {
				return nil, err
			}
		}
		for _, dn := range fs.Dimensions {
			d, ok := dims[dn]
			if !ok {
				return nil, fmt.Errorf("cwm: fact %s references undeclared dimension %q", fs.Name, dn)
			}
			if err := f.Add("dimensions", d); err != nil {
				return nil, err
			}
		}
		if err := schema.Add("facts", f); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
