// Package metamodel is a reflective metamodeling kernel in the spirit of
// MOF/JMI — the stand-in for Sun's Metadata Repository (MDR) in the
// paper's technical architecture (Fig. 5). It provides:
//
//   - the M3→M2 facility: define metamodels (classes with single
//     inheritance, typed attributes, references with containment and
//     multiplicity),
//   - the M2→M1 facility: instantiate models whose elements are validated
//     against their metamodel,
//   - XMI-style XML interchange of models (Export/Import),
//
// The ODBIS domain model (CWM and its extensions, package cwm) is built
// on this kernel, exactly as the paper bases its domain model on a JMI
// implementation of CWM.
package metamodel

import (
	"fmt"
	"sort"
)

// AttrType is the type of a metamodel attribute.
type AttrType uint8

// Attribute types.
const (
	AttrString AttrType = iota
	AttrInt
	AttrFloat
	AttrBool
)

func (t AttrType) String() string {
	switch t {
	case AttrString:
		return "string"
	case AttrInt:
		return "int"
	case AttrFloat:
		return "float"
	default:
		return "bool"
	}
}

// Attribute is a typed attribute of a class.
type Attribute struct {
	Name     string
	Type     AttrType
	Required bool
	// Enum restricts string attributes to a fixed vocabulary when
	// non-empty.
	Enum []string
}

// Reference is a typed link from one class to another.
type Reference struct {
	Name string
	// Target is the name of the referenced class (or any subclass).
	Target string
	// Containment marks composite ownership: contained elements belong to
	// exactly one container and containment must be acyclic.
	Containment bool
	// Many permits multiple targets; otherwise at most one.
	Many bool
	// Required demands at least one target.
	Required bool
}

// Class is an M2-level class.
type Class struct {
	Name     string
	Abstract bool
	super    *Class
	attrs    []Attribute
	refs     []Reference
	mm       *Metamodel
}

// Super returns the superclass (nil at the root).
func (c *Class) Super() *Class { return c.super }

// Attributes returns all attributes including inherited ones,
// superclass-first.
func (c *Class) Attributes() []Attribute {
	var out []Attribute
	if c.super != nil {
		out = c.super.Attributes()
	}
	return append(out, c.attrs...)
}

// References returns all references including inherited ones.
func (c *Class) References() []Reference {
	var out []Reference
	if c.super != nil {
		out = c.super.References()
	}
	return append(out, c.refs...)
}

// attribute finds an attribute by name along the inheritance chain.
func (c *Class) attribute(name string) (Attribute, bool) {
	for cur := c; cur != nil; cur = cur.super {
		for _, a := range cur.attrs {
			if a.Name == name {
				return a, true
			}
		}
	}
	return Attribute{}, false
}

func (c *Class) reference(name string) (Reference, bool) {
	for cur := c; cur != nil; cur = cur.super {
		for _, r := range cur.refs {
			if r.Name == name {
				return r, true
			}
		}
	}
	return Reference{}, false
}

// IsA reports whether c is name or a subclass of it.
func (c *Class) IsA(name string) bool {
	for cur := c; cur != nil; cur = cur.super {
		if cur.Name == name {
			return true
		}
	}
	return false
}

// Metamodel is an M2-level metamodel: a named set of classes.
type Metamodel struct {
	Name    string
	classes map[string]*Class
}

// New creates an empty metamodel.
func New(name string) *Metamodel {
	return &Metamodel{Name: name, classes: make(map[string]*Class)}
}

// ClassSpec declares a class for Define.
type ClassSpec struct {
	Name       string
	Super      string // empty for a root class
	Abstract   bool
	Attributes []Attribute
	References []Reference
}

// Define adds a class. Superclasses must already be defined.
func (m *Metamodel) Define(spec ClassSpec) (*Class, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("metamodel: class name required")
	}
	if _, dup := m.classes[spec.Name]; dup {
		return nil, fmt.Errorf("metamodel: class %s already defined in %s", spec.Name, m.Name)
	}
	c := &Class{Name: spec.Name, Abstract: spec.Abstract, attrs: spec.Attributes, refs: spec.References, mm: m}
	if spec.Super != "" {
		super, ok := m.classes[spec.Super]
		if !ok {
			return nil, fmt.Errorf("metamodel: superclass %s of %s not defined", spec.Super, spec.Name)
		}
		c.super = super
	}
	// Reject shadowed attribute/reference names along the chain.
	for _, a := range spec.Attributes {
		if c.super != nil {
			if _, exists := c.super.attribute(a.Name); exists {
				return nil, fmt.Errorf("metamodel: attribute %s.%s shadows an inherited attribute", spec.Name, a.Name)
			}
		}
	}
	for _, r := range spec.References {
		if c.super != nil {
			if _, exists := c.super.reference(r.Name); exists {
				return nil, fmt.Errorf("metamodel: reference %s.%s shadows an inherited reference", spec.Name, r.Name)
			}
		}
	}
	m.classes[spec.Name] = c
	return c, nil
}

// MustDefine is Define, panicking on error; for static metamodel
// construction (cwm package).
func (m *Metamodel) MustDefine(spec ClassSpec) *Class {
	c, err := m.Define(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// Class looks up a class by name.
func (m *Metamodel) Class(name string) (*Class, bool) {
	c, ok := m.classes[name]
	return c, ok
}

// Classes lists class names sorted.
func (m *Metamodel) Classes() []string {
	names := make([]string, 0, len(m.classes))
	for n := range m.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks the metamodel itself: reference targets must exist.
func (m *Metamodel) Validate() error {
	for _, c := range m.classes {
		for _, r := range c.refs {
			if _, ok := m.classes[r.Target]; !ok {
				return fmt.Errorf("metamodel: reference %s.%s targets undefined class %s", c.Name, r.Name, r.Target)
			}
		}
	}
	return nil
}
