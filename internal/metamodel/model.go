package metamodel

import (
	"fmt"
	"sort"
)

// Element is an M1-level model element: an instance of a class with
// attribute values and reference targets.
type Element struct {
	id    string
	class *Class
	attrs map[string]any
	refs  map[string][]*Element
	model *Model
}

// ID returns the element's model-unique identifier.
func (e *Element) ID() string { return e.id }

// Class returns the element's class.
func (e *Element) Class() *Class { return e.class }

// Set assigns an attribute after validating its type against the class.
func (e *Element) Set(attr string, value any) error {
	a, ok := e.class.attribute(attr)
	if !ok {
		return fmt.Errorf("metamodel: class %s has no attribute %q", e.class.Name, attr)
	}
	v, err := coerceAttr(a, value)
	if err != nil {
		return fmt.Errorf("metamodel: %s.%s: %w", e.class.Name, attr, err)
	}
	e.attrs[attr] = v
	return nil
}

// MustSet is Set, panicking on error.
func (e *Element) MustSet(attr string, value any) *Element {
	if err := e.Set(attr, value); err != nil {
		panic(err)
	}
	return e
}

func coerceAttr(a Attribute, value any) (any, error) {
	switch a.Type {
	case AttrString:
		s, ok := value.(string)
		if !ok {
			return nil, fmt.Errorf("expected string, got %T", value)
		}
		if len(a.Enum) > 0 {
			for _, allowed := range a.Enum {
				if s == allowed {
					return s, nil
				}
			}
			return nil, fmt.Errorf("value %q not in enum %v", s, a.Enum)
		}
		return s, nil
	case AttrInt:
		switch x := value.(type) {
		case int:
			return int64(x), nil
		case int64:
			return x, nil
		}
		return nil, fmt.Errorf("expected int, got %T", value)
	case AttrFloat:
		switch x := value.(type) {
		case float64:
			return x, nil
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		}
		return nil, fmt.Errorf("expected float, got %T", value)
	case AttrBool:
		b, ok := value.(bool)
		if !ok {
			return nil, fmt.Errorf("expected bool, got %T", value)
		}
		return b, nil
	}
	return nil, fmt.Errorf("unknown attribute type")
}

// Get reads an attribute; the boolean reports whether it was set.
func (e *Element) Get(attr string) (any, bool) {
	v, ok := e.attrs[attr]
	return v, ok
}

// Str reads a string attribute, returning "" when unset.
func (e *Element) Str(attr string) string {
	if v, ok := e.attrs[attr]; ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return ""
}

// Int reads an int attribute, returning 0 when unset.
func (e *Element) Int(attr string) int64 {
	if v, ok := e.attrs[attr]; ok {
		if i, ok := v.(int64); ok {
			return i
		}
	}
	return 0
}

// Bool reads a bool attribute, returning false when unset.
func (e *Element) Bool(attr string) bool {
	if v, ok := e.attrs[attr]; ok {
		if b, ok := v.(bool); ok {
			return b
		}
	}
	return false
}

// Float reads a float attribute, returning 0 when unset.
func (e *Element) Float(attr string) float64 {
	if v, ok := e.attrs[attr]; ok {
		if f, ok := v.(float64); ok {
			return f
		}
	}
	return 0
}

// Add appends target to a reference after validating the target class and
// multiplicity.
func (e *Element) Add(ref string, target *Element) error {
	r, ok := e.class.reference(ref)
	if !ok {
		return fmt.Errorf("metamodel: class %s has no reference %q", e.class.Name, ref)
	}
	if target == nil {
		return fmt.Errorf("metamodel: %s.%s: nil target", e.class.Name, ref)
	}
	if target.model != e.model {
		return fmt.Errorf("metamodel: %s.%s: target belongs to a different model", e.class.Name, ref)
	}
	if !target.class.IsA(r.Target) {
		return fmt.Errorf("metamodel: %s.%s requires %s, got %s", e.class.Name, ref, r.Target, target.class.Name)
	}
	if !r.Many && len(e.refs[ref]) > 0 {
		return fmt.Errorf("metamodel: %s.%s is single-valued", e.class.Name, ref)
	}
	e.refs[ref] = append(e.refs[ref], target)
	return nil
}

// MustAdd is Add, panicking on error.
func (e *Element) MustAdd(ref string, target *Element) *Element {
	if err := e.Add(ref, target); err != nil {
		panic(err)
	}
	return e
}

// Refs returns the targets of a reference (nil when empty).
func (e *Element) Refs(ref string) []*Element {
	ts := e.refs[ref]
	if ts == nil {
		return nil
	}
	return append([]*Element(nil), ts...)
}

// Ref returns the single target of a reference (nil when unset).
func (e *Element) Ref(ref string) *Element {
	if ts := e.refs[ref]; len(ts) > 0 {
		return ts[0]
	}
	return nil
}

// Name is a convenience for the ubiquitous "name" attribute.
func (e *Element) Name() string { return e.Str("name") }

// Model is an M1-level model: a set of elements conforming to one
// metamodel.
type Model struct {
	mm       *Metamodel
	elements []*Element
	byID     map[string]*Element
	nextID   int
}

// NewModel creates an empty model over a metamodel.
func NewModel(mm *Metamodel) *Model {
	return &Model{mm: mm, byID: make(map[string]*Element)}
}

// Metamodel returns the model's metamodel.
func (m *Model) Metamodel() *Metamodel { return m.mm }

// New instantiates a class. Abstract classes cannot be instantiated.
func (m *Model) New(className string) (*Element, error) {
	c, ok := m.mm.classes[className]
	if !ok {
		return nil, fmt.Errorf("metamodel: metamodel %s has no class %q", m.mm.Name, className)
	}
	if c.Abstract {
		return nil, fmt.Errorf("metamodel: class %s is abstract", className)
	}
	m.nextID++
	e := &Element{
		id:    fmt.Sprintf("%s-%d", className, m.nextID),
		class: c,
		attrs: make(map[string]any),
		refs:  make(map[string][]*Element),
		model: m,
	}
	m.elements = append(m.elements, e)
	m.byID[e.id] = e
	return e, nil
}

// MustNew is New, panicking on error.
func (m *Model) MustNew(className string) *Element {
	e, err := m.New(className)
	if err != nil {
		panic(err)
	}
	return e
}

// Lookup finds an element by id.
func (m *Model) Lookup(id string) (*Element, bool) {
	e, ok := m.byID[id]
	return e, ok
}

// Elements returns every element in creation order.
func (m *Model) Elements() []*Element { return append([]*Element(nil), m.elements...) }

// ElementsOf returns elements whose class is name or a subclass of it.
func (m *Model) ElementsOf(className string) []*Element {
	out := make([]*Element, 0, len(m.elements))
	for _, e := range m.elements {
		if e.class.IsA(className) {
			out = append(out, e)
		}
	}
	return out
}

// FindByName returns the first element of the class with the given "name"
// attribute.
func (m *Model) FindByName(className, name string) (*Element, bool) {
	for _, e := range m.ElementsOf(className) {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}

// Len reports the element count.
func (m *Model) Len() int { return len(m.elements) }

// Validate checks every element for required attributes and references,
// and containment for single ownership and acyclicity.
func (m *Model) Validate() error {
	owner := make(map[*Element]*Element)
	for _, e := range m.elements {
		for _, a := range e.class.Attributes() {
			if a.Required {
				if _, ok := e.attrs[a.Name]; !ok {
					return fmt.Errorf("metamodel: %s (%s): required attribute %q unset", e.id, e.class.Name, a.Name)
				}
			}
		}
		for _, r := range e.class.References() {
			targets := e.refs[r.Name]
			if r.Required && len(targets) == 0 {
				return fmt.Errorf("metamodel: %s (%s): required reference %q empty", e.id, e.class.Name, r.Name)
			}
			if !r.Many && len(targets) > 1 {
				return fmt.Errorf("metamodel: %s (%s): reference %q is single-valued, has %d targets", e.id, e.class.Name, r.Name, len(targets))
			}
			if r.Containment {
				for _, t := range targets {
					if prev, owned := owner[t]; owned && prev != e {
						return fmt.Errorf("metamodel: element %s contained by both %s and %s", t.id, prev.id, e.id)
					}
					owner[t] = e
				}
			}
		}
	}
	// Containment acyclicity. One map reused across starts: allocating a
	// fresh set per element is pure garbage on the validation hot path.
	seen := map[*Element]bool{}
	for e := range owner {
		clear(seen)
		for cur := e; cur != nil; cur = owner[cur] {
			if seen[cur] {
				return fmt.Errorf("metamodel: containment cycle through %s", cur.id)
			}
			seen[cur] = true
		}
	}
	return nil
}

// sortedAttrNames returns an element's set attribute names sorted, for
// deterministic serialization.
func (e *Element) sortedAttrNames() []string {
	names := make([]string, 0, len(e.attrs))
	for n := range e.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (e *Element) sortedRefNames() []string {
	names := make([]string, 0, len(e.refs))
	for n := range e.refs {
		if len(e.refs[n]) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
