// Package odm implements the Ontology Definition Metamodel and the
// semantic integration it enables — the paper's declared future work:
// "The Ontology Definition Metamodel (ODM) is proposed to design some
// model presented as ontology, used to solve the semantic schemas
// integration and the semantic data integration problems" (§3.2), and
// "for the future, we plan to integrate other metamodels as the ODM"
// (§3.3).
//
// The metamodel is a pragmatic OWL-lite subset on the reflective kernel:
// ontologies contain classes (with subclassing and synonyms), properties
// (datatype or object, with domain/range), and individuals. On top of it,
// align.go matches heterogeneous relational schemas through shared
// ontology concepts.
package odm

import (
	"fmt"
	"strings"

	"github.com/odbis/odbis/internal/metamodel"
)

// Name of the ODM metamodel.
const Name = "ODM"

// MM is the ODM metamodel, built once at package init.
var MM = build()

func build() *metamodel.Metamodel {
	mm := metamodel.New(Name)
	mm.MustDefine(metamodel.ClassSpec{
		Name:     "OntologyElement",
		Abstract: true,
		Attributes: []metamodel.Attribute{
			{Name: "name", Type: metamodel.AttrString, Required: true},
			{Name: "label", Type: metamodel.AttrString},
			// synonyms is a comma-separated list of alternate names used
			// by the schema matcher.
			{Name: "synonyms", Type: metamodel.AttrString},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "OntClass",
		Super: "OntologyElement",
		References: []metamodel.Reference{
			{Name: "subClassOf", Target: "OntClass"},
			{Name: "equivalentTo", Target: "OntClass", Many: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Property",
		Super: "OntologyElement",
		Attributes: []metamodel.Attribute{
			{Name: "kind", Type: metamodel.AttrString, Required: true,
				Enum: []string{"datatype", "object"}},
			{Name: "datatype", Type: metamodel.AttrString,
				Enum: []string{"", "text", "number", "date", "flag"}},
		},
		References: []metamodel.Reference{
			{Name: "domain", Target: "OntClass", Required: true},
			{Name: "range", Target: "OntClass"},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Individual",
		Super: "OntologyElement",
		References: []metamodel.Reference{
			{Name: "type", Target: "OntClass", Required: true},
		},
	})
	mm.MustDefine(metamodel.ClassSpec{
		Name:  "Ontology",
		Super: "OntologyElement",
		Attributes: []metamodel.Attribute{
			{Name: "namespace", Type: metamodel.AttrString},
		},
		References: []metamodel.Reference{
			{Name: "classes", Target: "OntClass", Containment: true, Many: true},
			{Name: "properties", Target: "Property", Containment: true, Many: true},
			{Name: "individuals", Target: "Individual", Containment: true, Many: true},
		},
	})
	if err := mm.Validate(); err != nil {
		panic(err)
	}
	return mm
}

// ClassSpec declares one ontology class for Build.
type ClassSpec struct {
	Name     string
	Label    string
	Synonyms []string
	// SubClassOf names the parent class (declared earlier in the spec).
	SubClassOf string
}

// PropertySpec declares one property for Build.
type PropertySpec struct {
	Name     string
	Synonyms []string
	Domain   string // class name
	Range    string // class name (object properties)
	Datatype string // text, number, date, flag (datatype properties)
}

// Spec is a convenience description of an ontology.
type Spec struct {
	Name       string
	Namespace  string
	Classes    []ClassSpec
	Properties []PropertySpec
}

// Build constructs a validated ODM model from the spec.
func (s Spec) Build() (*metamodel.Model, error) {
	m := metamodel.NewModel(MM)
	onto, err := m.New("Ontology")
	if err != nil {
		return nil, err
	}
	if err := onto.Set("name", s.Name); err != nil {
		return nil, err
	}
	if s.Namespace != "" {
		if err := onto.Set("namespace", s.Namespace); err != nil {
			return nil, err
		}
	}
	classes := map[string]*metamodel.Element{}
	for _, cs := range s.Classes {
		c, err := m.New("OntClass")
		if err != nil {
			return nil, err
		}
		if err := c.Set("name", cs.Name); err != nil {
			return nil, err
		}
		if cs.Label != "" {
			if err := c.Set("label", cs.Label); err != nil {
				return nil, err
			}
		}
		if len(cs.Synonyms) > 0 {
			if err := c.Set("synonyms", strings.Join(cs.Synonyms, ",")); err != nil {
				return nil, err
			}
		}
		if cs.SubClassOf != "" {
			parent, ok := classes[cs.SubClassOf]
			if !ok {
				return nil, fmt.Errorf("odm: class %s extends undeclared %s", cs.Name, cs.SubClassOf)
			}
			if err := c.Add("subClassOf", parent); err != nil {
				return nil, err
			}
		}
		if err := onto.Add("classes", c); err != nil {
			return nil, err
		}
		classes[cs.Name] = c
	}
	for _, ps := range s.Properties {
		p, err := m.New("Property")
		if err != nil {
			return nil, err
		}
		if err := p.Set("name", ps.Name); err != nil {
			return nil, err
		}
		if len(ps.Synonyms) > 0 {
			if err := p.Set("synonyms", strings.Join(ps.Synonyms, ",")); err != nil {
				return nil, err
			}
		}
		kind := "datatype"
		if ps.Range != "" {
			kind = "object"
		}
		if err := p.Set("kind", kind); err != nil {
			return nil, err
		}
		if ps.Datatype != "" {
			if err := p.Set("datatype", ps.Datatype); err != nil {
				return nil, err
			}
		}
		domain, ok := classes[ps.Domain]
		if !ok {
			return nil, fmt.Errorf("odm: property %s has undeclared domain %q", ps.Name, ps.Domain)
		}
		if err := p.Add("domain", domain); err != nil {
			return nil, err
		}
		if ps.Range != "" {
			rng, ok := classes[ps.Range]
			if !ok {
				return nil, fmt.Errorf("odm: property %s has undeclared range %q", ps.Name, ps.Range)
			}
			if err := p.Add("range", rng); err != nil {
				return nil, err
			}
		}
		if err := onto.Add("properties", p); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Vocabulary indexes an ontology's names and synonyms onto canonical
// concepts, the structure the schema matcher consumes.
type Vocabulary struct {
	// canon maps every normalized name/label/synonym to the canonical
	// concept name.
	canon map[string]string
}

// BuildVocabulary indexes an ODM model. Equivalent classes collapse onto
// one canonical concept (the first declared).
func BuildVocabulary(onto *metamodel.Model) (*Vocabulary, error) {
	if onto.Metamodel() != MM {
		return nil, fmt.Errorf("odm: model conforms to %s, not %s", onto.Metamodel().Name, Name)
	}
	v := &Vocabulary{canon: map[string]string{}}
	add := func(alias, canonical string) {
		key := normalize(alias)
		if key == "" {
			return
		}
		if _, exists := v.canon[key]; !exists {
			v.canon[key] = canonical
		}
	}
	index := func(e *metamodel.Element) {
		canonical := e.Name()
		// Equivalent classes share the target concept.
		if eq := e.Refs("equivalentTo"); len(eq) > 0 {
			canonical = eq[0].Name()
		}
		add(e.Name(), canonical)
		add(e.Str("label"), canonical)
		for _, syn := range strings.Split(e.Str("synonyms"), ",") {
			add(syn, canonical)
		}
	}
	for _, c := range onto.ElementsOf("OntClass") {
		index(c)
	}
	for _, p := range onto.ElementsOf("Property") {
		index(p)
	}
	return v, nil
}

// Concept resolves a schema identifier to its canonical ontology concept
// ("" when unknown).
func (v *Vocabulary) Concept(identifier string) string {
	return v.canon[normalize(identifier)]
}

// normalize folds case and separators: "Sales_Amount" and "sales amount"
// meet at "salesamount".
func normalize(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(s)) {
		switch r {
		case '_', '-', ' ', '.':
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
