package odm

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/odbis/odbis/internal/etl"
	"github.com/odbis/odbis/internal/metamodel"
	"github.com/odbis/odbis/internal/metamodel/cwm"
)

func salesOntology(t testing.TB) *metamodel.Model {
	t.Helper()
	m, err := Spec{
		Name:      "commerce",
		Namespace: "http://odbis.example/commerce#",
		Classes: []ClassSpec{
			{Name: "Party"},
			{Name: "Customer", SubClassOf: "Party", Synonyms: []string{"client", "buyer"}},
			{Name: "Transaction"},
			{Name: "Sale", SubClassOf: "Transaction", Label: "sale event"},
		},
		Properties: []PropertySpec{
			{Name: "revenue", Domain: "Sale", Datatype: "number",
				Synonyms: []string{"sales_amount", "turnover", "amount"}},
			{Name: "customerName", Domain: "Customer", Datatype: "text",
				Synonyms: []string{"client_name", "buyer name"}},
			{Name: "buyer", Domain: "Sale", Range: "Customer"},
		},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMetamodelWellFormed(t *testing.T) {
	if err := MM.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(MM.Classes()) != 5 {
		t.Errorf("classes = %v", MM.Classes())
	}
}

func TestSpecBuild(t *testing.T) {
	m := salesOntology(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	sale, ok := m.FindByName("OntClass", "Sale")
	if !ok {
		t.Fatal("Sale missing")
	}
	if sale.Ref("subClassOf") == nil || sale.Ref("subClassOf").Name() != "Transaction" {
		t.Error("subclassing lost")
	}
	buyer, _ := m.FindByName("Property", "buyer")
	if buyer.Str("kind") != "object" || buyer.Ref("range").Name() != "Customer" {
		t.Errorf("object property wrong: %s", buyer.Str("kind"))
	}
	rev, _ := m.FindByName("Property", "revenue")
	if rev.Str("kind") != "datatype" {
		t.Error("datatype property wrong")
	}
}

func TestSpecBuildErrors(t *testing.T) {
	if _, err := (Spec{Name: "x", Classes: []ClassSpec{{Name: "A", SubClassOf: "Ghost"}}}).Build(); err == nil {
		t.Error("undeclared parent accepted")
	}
	if _, err := (Spec{Name: "x", Properties: []PropertySpec{{Name: "p", Domain: "Ghost"}}}).Build(); err == nil {
		t.Error("undeclared domain accepted")
	}
	if _, err := (Spec{
		Name:       "x",
		Classes:    []ClassSpec{{Name: "A"}},
		Properties: []PropertySpec{{Name: "p", Domain: "A", Range: "Ghost"}},
	}).Build(); err == nil {
		t.Error("undeclared range accepted")
	}
}

func TestVocabulary(t *testing.T) {
	v, err := BuildVocabulary(salesOntology(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"revenue":      "revenue",
		"Sales_Amount": "revenue", // synonym, normalized
		"TURNOVER":     "revenue",
		"client":       "Customer",
		"buyer name":   "customerName",
		"sale event":   "Sale", // label
		"unrelated":    "",
	}
	for in, want := range cases {
		if got := v.Concept(in); got != want {
			t.Errorf("Concept(%q) = %q, want %q", in, got, want)
		}
	}
	// Vocabulary only accepts ODM models.
	if _, err := BuildVocabulary(metamodel.NewModel(cwm.Relational)); err == nil {
		t.Error("non-ODM model accepted")
	}
}

func TestEquivalentClassesShareConcept(t *testing.T) {
	m := metamodel.NewModel(MM)
	onto := m.MustNew("Ontology").MustSet("name", "o")
	a := m.MustNew("OntClass").MustSet("name", "Patient")
	b := m.MustNew("OntClass").MustSet("name", "Subject")
	b.MustAdd("equivalentTo", a)
	onto.MustAdd("classes", a)
	onto.MustAdd("classes", b)
	v, err := BuildVocabulary(m)
	if err != nil {
		t.Fatal(err)
	}
	if v.Concept("Subject") != "Patient" || v.Concept("Patient") != "Patient" {
		t.Errorf("equivalence not collapsed: %q / %q", v.Concept("Subject"), v.Concept("Patient"))
	}
}

// relSchema builds a CWM Relational model with one table.
func relSchema(t testing.TB, table string, cols ...string) *metamodel.Model {
	t.Helper()
	m := metamodel.NewModel(cwm.Relational)
	tab := m.MustNew("Table").MustSet("name", table)
	for _, c := range cols {
		col := m.MustNew("Column").MustSet("name", c).MustSet("type", "TEXT")
		tab.MustAdd("columns", col)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAlignSchemas(t *testing.T) {
	// Legacy CRM schema vs the warehouse target: different vocabularies.
	src := relSchema(t, "crm_orders", "order_id", "client_name", "turnover", "ship_datee")
	dst := relSchema(t, "fact_sales", "order_id", "customer_name", "revenue", "ship_date", "untouched")
	matches, err := AlignSchemas(src, dst, salesOntology(t), AlignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byCol := map[string]Match{}
	for _, m := range matches {
		byCol[m.SourceColumn] = m
	}
	if m := byCol["order_id"]; m.TargetColumn != "order_id" || m.Via != "exact" || m.Confidence != 1.0 {
		t.Errorf("order_id match = %+v", m)
	}
	if m := byCol["turnover"]; m.TargetColumn != "revenue" || !strings.HasPrefix(m.Via, "ontology:") {
		t.Errorf("turnover match = %+v", m)
	}
	if m := byCol["client_name"]; m.TargetColumn != "customer_name" || !strings.HasPrefix(m.Via, "ontology:") {
		t.Errorf("client_name match = %+v", m)
	}
	// Typo matched by similarity fallback.
	if m := byCol["ship_datee"]; m.TargetColumn != "ship_date" || m.Via != "similarity" || m.Confidence < 0.75 {
		t.Errorf("ship_datee match = %+v", m)
	}
	if len(matches) != 4 {
		t.Errorf("matches:\n%s", Explain(matches))
	}
}

func TestAlignWithoutOntology(t *testing.T) {
	src := relSchema(t, "a", "order_id", "turnover")
	dst := relSchema(t, "b", "order_id", "revenue")
	matches, err := AlignSchemas(src, dst, nil, AlignOptions{MinSimilarity: 2}) // fallback disabled
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].SourceColumn != "order_id" {
		t.Errorf("matches = %+v", matches)
	}
}

func TestAlignRejectsWrongMetamodels(t *testing.T) {
	onto := salesOntology(t)
	if _, err := AlignSchemas(onto, onto, nil, AlignOptions{}); err == nil {
		t.Error("non-relational inputs accepted")
	}
}

func TestRenameMappingDrivesETL(t *testing.T) {
	src := relSchema(t, "crm_orders", "client_name", "turnover")
	dst := relSchema(t, "fact_sales", "customer_name", "revenue")
	matches, err := AlignSchemas(src, dst, salesOntology(t), AlignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mapping := RenameMapping(matches)
	out, err := etl.Rename{Mapping: mapping}.Apply([]etl.Record{
		{"client_name": "acme", "turnover": 12.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := out[0]
	if rec["customer_name"] != "acme" || rec["revenue"] != 12.5 {
		t.Errorf("semantic integration failed: %v", rec)
	}
	if _, stale := rec["client_name"]; stale {
		t.Error("old field name survived")
	}
}

func TestSimilarityProperties(t *testing.T) {
	if Similarity("ship_date", "ship_datee") < 0.8 {
		t.Error("near-identical strings score low")
	}
	if Similarity("alpha", "omega3") > 0.5 {
		t.Error("dissimilar strings score high")
	}
	// Symmetry and identity, property-based.
	f := func(a, b string) bool {
		sab, sba := Similarity(a, b), Similarity(b, a)
		if sab != sba {
			return false
		}
		if Similarity(a, a) != 1.0 {
			return false
		}
		return sab >= 0 && sab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestODMXMIRoundTrip(t *testing.T) {
	m := salesOntology(t)
	xml, err := m.ExportString()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := metamodel.ImportString(MM, xml)
	if err != nil {
		t.Fatal(err)
	}
	v, err := BuildVocabulary(m2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Concept("turnover") != "revenue" {
		t.Error("vocabulary lost in round trip")
	}
}
