package odm

import (
	"fmt"
	"sort"
	"strings"

	"github.com/odbis/odbis/internal/metamodel"
	"github.com/odbis/odbis/internal/metamodel/cwm"
	"github.com/odbis/odbis/internal/storage"
)

// Match aligns one source column with one target column.
type Match struct {
	SourceTable  string
	SourceColumn string
	TargetTable  string
	TargetColumn string
	// Via explains the evidence: "exact", "ontology:<concept>" or
	// "similarity".
	Via string
	// Confidence ∈ (0, 1]: 1.0 exact, 0.9 ontology, similarity score
	// otherwise.
	Confidence float64
}

// AlignOptions tune the matcher.
type AlignOptions struct {
	// MinSimilarity is the cut-off for name-similarity fallback matches
	// (default 0.75; set above 1 to disable the fallback).
	MinSimilarity float64
}

// AlignSchemas matches the columns of two CWM Relational models through
// exact names, ontology concepts (names, labels, synonyms, equivalent
// classes), and finally string similarity — the "semantic schemas
// integration" the paper assigns to the ODM. The ontology may be nil
// (pure lexical matching).
func AlignSchemas(source, target *metamodel.Model, onto *metamodel.Model, opts AlignOptions) ([]Match, error) {
	if source.Metamodel() != cwm.Relational || target.Metamodel() != cwm.Relational {
		return nil, fmt.Errorf("odm: AlignSchemas expects %s models", cwm.RelationalName)
	}
	if opts.MinSimilarity == 0 {
		opts.MinSimilarity = 0.75
	}
	var vocab *Vocabulary
	if onto != nil {
		var err error
		vocab, err = BuildVocabulary(onto)
		if err != nil {
			return nil, err
		}
	}

	type columnRef struct {
		table, column string
	}
	collect := func(m *metamodel.Model) []columnRef {
		var out []columnRef
		for _, t := range m.ElementsOf("Table") {
			for _, c := range t.Refs("columns") {
				out = append(out, columnRef{table: t.Name(), column: c.Name()})
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].table != out[j].table {
				return out[i].table < out[j].table
			}
			return out[i].column < out[j].column
		})
		return out
	}
	src := collect(source)
	dst := collect(target)

	concept := func(name string) string {
		if vocab == nil {
			return ""
		}
		return vocab.Concept(name)
	}

	var matches []Match
	usedTarget := map[columnRef]bool{}
	claim := func(s, d columnRef, via string, conf float64) {
		usedTarget[d] = true
		matches = append(matches, Match{
			SourceTable: s.table, SourceColumn: s.column,
			TargetTable: d.table, TargetColumn: d.column,
			Via: via, Confidence: conf,
		})
	}

	// Pass 1: exact normalized names.
	matchedSrc := map[columnRef]bool{}
	for _, s := range src {
		for _, d := range dst {
			if usedTarget[d] {
				continue
			}
			if normalize(s.column) == normalize(d.column) {
				claim(s, d, "exact", 1.0)
				matchedSrc[s] = true
				break
			}
		}
	}
	// Pass 2: shared ontology concept.
	for _, s := range src {
		if matchedSrc[s] {
			continue
		}
		sc := concept(s.column)
		if sc == "" {
			continue
		}
		for _, d := range dst {
			if usedTarget[d] {
				continue
			}
			if concept(d.column) == sc {
				claim(s, d, "ontology:"+sc, 0.9)
				matchedSrc[s] = true
				break
			}
		}
	}
	// Pass 3: string similarity fallback.
	if opts.MinSimilarity <= 1 {
		for _, s := range src {
			if matchedSrc[s] {
				continue
			}
			best := columnRef{}
			bestScore := 0.0
			for _, d := range dst {
				if usedTarget[d] {
					continue
				}
				score := Similarity(s.column, d.column)
				if score > bestScore {
					best, bestScore = d, score
				}
			}
			if bestScore >= opts.MinSimilarity {
				claim(s, best, "similarity", bestScore)
				matchedSrc[s] = true
			}
		}
	}
	return matches, nil
}

// RenameMapping converts matches into the old-name → new-name map an
// etl.Rename transform consumes, turning schema alignment into runnable
// data integration (the paper's "semantic data integration").
func RenameMapping(matches []Match) map[string]string {
	out := make(map[string]string, len(matches))
	for _, m := range matches {
		if m.SourceColumn != m.TargetColumn {
			out[m.SourceColumn] = m.TargetColumn
		}
	}
	return out
}

// RelationalFromSchemas lifts storage schemas into a CWM Relational
// model so physical tables can participate in semantic alignment.
func RelationalFromSchemas(schemas ...*storage.Schema) (*metamodel.Model, error) {
	m := metamodel.NewModel(cwm.Relational)
	for _, s := range schemas {
		tab, err := m.New("Table")
		if err != nil {
			return nil, err
		}
		if err := tab.Set("name", s.Name); err != nil {
			return nil, err
		}
		for _, c := range s.Columns {
			col, err := m.New("Column")
			if err != nil {
				return nil, err
			}
			if err := col.Set("name", c.Name); err != nil {
				return nil, err
			}
			if err := col.Set("type", c.Type.String()); err != nil {
				return nil, err
			}
			if err := col.Set("nullable", !c.NotNull); err != nil {
				return nil, err
			}
			if err := tab.Add("columns", col); err != nil {
				return nil, err
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Similarity is a normalized Levenshtein similarity over normalized
// identifiers: 1.0 identical, 0.0 disjoint.
func Similarity(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == nb {
		return 1.0
	}
	if len(na) == 0 || len(nb) == 0 {
		return 0.0
	}
	d := levenshtein(na, nb)
	longest := len(na)
	if len(nb) > longest {
		longest = len(nb)
	}
	return 1.0 - float64(d)/float64(longest)
}

func levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func minInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Explain renders matches as a readable table for design-time review.
func Explain(matches []Match) string {
	var sb strings.Builder
	for _, m := range matches {
		fmt.Fprintf(&sb, "%s.%s -> %s.%s  (%s, %.2f)\n",
			m.SourceTable, m.SourceColumn, m.TargetTable, m.TargetColumn, m.Via, m.Confidence)
	}
	return sb.String()
}
