package metamodel

import (
	"strings"
	"testing"
	"testing/quick"
)

func testMM(t *testing.T) *Metamodel {
	t.Helper()
	mm := New("Test")
	mm.MustDefine(ClassSpec{
		Name:     "Named",
		Abstract: true,
		Attributes: []Attribute{
			{Name: "name", Type: AttrString, Required: true},
		},
	})
	mm.MustDefine(ClassSpec{
		Name:  "Column",
		Super: "Named",
		Attributes: []Attribute{
			{Name: "type", Type: AttrString, Enum: []string{"INT", "TEXT"}},
			{Name: "nullable", Type: AttrBool},
			{Name: "position", Type: AttrInt},
			{Name: "weight", Type: AttrFloat},
		},
	})
	mm.MustDefine(ClassSpec{
		Name:  "Table",
		Super: "Named",
		References: []Reference{
			{Name: "columns", Target: "Column", Containment: true, Many: true, Required: true},
			{Name: "parent", Target: "Table"},
		},
	})
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	return mm
}

func TestDefineValidation(t *testing.T) {
	mm := New("X")
	if _, err := mm.Define(ClassSpec{}); err == nil {
		t.Error("empty class name accepted")
	}
	mm.MustDefine(ClassSpec{Name: "A", Attributes: []Attribute{{Name: "x", Type: AttrInt}}})
	if _, err := mm.Define(ClassSpec{Name: "A"}); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := mm.Define(ClassSpec{Name: "B", Super: "Missing"}); err == nil {
		t.Error("missing superclass accepted")
	}
	if _, err := mm.Define(ClassSpec{Name: "C", Super: "A", Attributes: []Attribute{{Name: "x", Type: AttrInt}}}); err == nil {
		t.Error("shadowed attribute accepted")
	}
	mm.MustDefine(ClassSpec{Name: "D", References: []Reference{{Name: "r", Target: "Nowhere"}}})
	if err := mm.Validate(); err == nil {
		t.Error("dangling reference target accepted")
	}
}

func TestInstantiateAndAttrs(t *testing.T) {
	mm := testMM(t)
	m := NewModel(mm)
	if _, err := m.New("Named"); err == nil {
		t.Error("abstract class instantiated")
	}
	if _, err := m.New("Nope"); err == nil {
		t.Error("unknown class instantiated")
	}
	col := m.MustNew("Column")
	if err := col.Set("name", "id"); err != nil {
		t.Fatal(err)
	}
	if err := col.Set("type", "INT"); err != nil {
		t.Fatal(err)
	}
	if err := col.Set("type", "BLOB"); err == nil {
		t.Error("enum violation accepted")
	}
	if err := col.Set("nullable", "yes"); err == nil {
		t.Error("bool attr with string accepted")
	}
	if err := col.Set("position", 3); err != nil {
		t.Errorf("int coercion: %v", err)
	}
	if err := col.Set("weight", 1); err != nil {
		t.Errorf("int→float coercion: %v", err)
	}
	if err := col.Set("bogus", 1); err == nil {
		t.Error("unknown attribute accepted")
	}
	if col.Str("name") != "id" || col.Int("position") != 3 || col.Float("weight") != 1 {
		t.Error("typed getters wrong")
	}
	if col.Bool("nullable") {
		t.Error("unset bool should read false")
	}
}

func TestReferences(t *testing.T) {
	mm := testMM(t)
	m := NewModel(mm)
	tab := m.MustNew("Table").MustSet("name", "t")
	col := m.MustNew("Column").MustSet("name", "c").MustSet("type", "INT")
	if err := tab.Add("columns", col); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add("bogus", col); err == nil {
		t.Error("unknown reference accepted")
	}
	if err := tab.Add("columns", nil); err == nil {
		t.Error("nil target accepted")
	}
	// Wrong target class.
	other := m.MustNew("Table").MustSet("name", "o")
	if err := tab.Add("columns", other); err == nil {
		t.Error("wrong target class accepted")
	}
	// Single-valued multiplicity.
	if err := tab.Add("parent", other); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add("parent", other); err == nil {
		t.Error("second target on single-valued reference accepted")
	}
	// Cross-model reference.
	m2 := NewModel(mm)
	foreign := m2.MustNew("Column").MustSet("name", "f").MustSet("type", "INT")
	if err := tab.Add("columns", foreign); err == nil {
		t.Error("cross-model reference accepted")
	}
	if got := len(tab.Refs("columns")); got != 1 {
		t.Errorf("columns = %d", got)
	}
	if tab.Ref("parent") != other {
		t.Error("Ref(parent) wrong")
	}
}

func TestModelValidate(t *testing.T) {
	mm := testMM(t)
	m := NewModel(mm)
	tab := m.MustNew("Table")
	if err := m.Validate(); err == nil {
		t.Error("missing required attribute accepted")
	}
	tab.MustSet("name", "t")
	if err := m.Validate(); err == nil {
		t.Error("missing required reference accepted")
	}
	col := m.MustNew("Column").MustSet("name", "c").MustSet("type", "INT")
	tab.MustAdd("columns", col)
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	// Double containment.
	tab2 := m.MustNew("Table").MustSet("name", "t2").MustAdd("columns", col)
	if err := m.Validate(); err == nil {
		t.Error("double containment accepted")
	}
	_ = tab2
}

func TestElementsOfAndFind(t *testing.T) {
	mm := testMM(t)
	m := NewModel(mm)
	m.MustNew("Table").MustSet("name", "a")
	m.MustNew("Column").MustSet("name", "b").MustSet("type", "INT")
	if got := len(m.ElementsOf("Named")); got != 2 {
		t.Errorf("ElementsOf(Named) = %d", got)
	}
	if got := len(m.ElementsOf("Table")); got != 1 {
		t.Errorf("ElementsOf(Table) = %d", got)
	}
	if _, ok := m.FindByName("Column", "b"); !ok {
		t.Error("FindByName failed")
	}
	if _, ok := m.FindByName("Column", "zzz"); ok {
		t.Error("FindByName found ghost")
	}
}

func TestXMIRoundTrip(t *testing.T) {
	mm := testMM(t)
	m := NewModel(mm)
	tab := m.MustNew("Table").MustSet("name", "sales & orders <q>")
	for i, cn := range []string{"id", "amount"} {
		col := m.MustNew("Column").MustSet("name", cn).MustSet("type", "INT").
			MustSet("position", i).MustSet("nullable", i == 1).MustSet("weight", 1.5)
		tab.MustAdd("columns", col)
	}
	xml, err := m.ExportString()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "metamodel=\"Test\"") {
		t.Errorf("xml header missing metamodel: %s", xml[:80])
	}
	m2, err := ImportString(mm, xml)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if m2.Len() != m.Len() {
		t.Fatalf("len = %d, want %d", m2.Len(), m.Len())
	}
	tab2, ok := m2.FindByName("Table", "sales & orders <q>")
	if !ok {
		t.Fatal("table lost in round trip")
	}
	cols := tab2.Refs("columns")
	if len(cols) != 2 || cols[0].Name() != "id" || cols[1].Name() != "amount" {
		t.Errorf("columns = %v", cols)
	}
	if cols[1].Int("position") != 1 || !cols[1].Bool("nullable") || cols[1].Float("weight") != 1.5 {
		t.Error("attribute values lost")
	}
	// Re-export must be byte-identical (deterministic serialization).
	xml2, err := m2.ExportString()
	if err != nil {
		t.Fatal(err)
	}
	if xml != xml2 {
		t.Error("export not deterministic across round trip")
	}
}

func TestImportErrors(t *testing.T) {
	mm := testMM(t)
	cases := []string{
		"not xml at all",
		`<xmi metamodel="Other" version="1.0"></xmi>`,
		`<xmi metamodel="Test" version="1.0"><element id="x" class="Ghost"/></xmi>`,
		`<xmi metamodel="Test" version="1.0"><element id="x" class="Named"/></xmi>`,
		`<xmi metamodel="Test" version="1.0"><element id="x" class="Column"/><element id="x" class="Column"/></xmi>`,
		`<xmi metamodel="Test" version="1.0"><element id="x" class="Table"><ref name="columns" targets="ghost"/></element></xmi>`,
	}
	for _, doc := range cases {
		if _, err := ImportString(mm, doc); err == nil {
			t.Errorf("ImportString(%.40q) should fail", doc)
		}
	}
}

func TestImportPreservesIDCounter(t *testing.T) {
	mm := testMM(t)
	m := NewModel(mm)
	for i := 0; i < 5; i++ {
		m.MustNew("Column").MustSet("name", "c").MustSet("type", "INT")
	}
	xml, _ := m.ExportString()
	m2, err := ImportString(mm, xml)
	if err != nil {
		t.Fatal(err)
	}
	fresh := m2.MustNew("Column")
	if _, dup := m.byID[fresh.ID()]; dup {
		// IDs only need to be unique within one model; check within m2.
	}
	if cnt := 0; true {
		for _, e := range m2.Elements() {
			if e.ID() == fresh.ID() {
				cnt++
			}
		}
		if cnt != 1 {
			t.Errorf("fresh id %s collides in imported model", fresh.ID())
		}
	}
}

// Property: models built from random attribute values survive the XML
// round trip.
func TestXMIQuick(t *testing.T) {
	mm := testMM(t)
	f := func(names []string, positions []int64) bool {
		m := NewModel(mm)
		tab := m.MustNew("Table").MustSet("name", "t")
		n := len(names)
		if n > 20 {
			n = 20
		}
		for i := 0; i < n; i++ {
			col := m.MustNew("Column").MustSet("name", names[i]).MustSet("type", "TEXT")
			if i < len(positions) {
				col.MustSet("position", positions[i])
			}
			tab.MustAdd("columns", col)
		}
		xml, err := m.ExportString()
		if err != nil {
			return false
		}
		m2, err := ImportString(mm, xml)
		if err != nil {
			return false
		}
		if m2.Len() != m.Len() {
			return false
		}
		cols2 := m2.Elements()[0].Refs("columns")
		for i := 0; i < n; i++ {
			if cols2[i].Str("name") != names[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	mm := testMM(t)
	m := NewModel(mm)
	tab := m.MustNew("Table").MustSet("name", "t")
	tab.MustAdd("columns", m.MustNew("Column").MustSet("name", "c").MustSet("type", "INT"))
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	ct, _ := c.FindByName("Table", "t")
	ct.MustSet("name", "changed")
	if tab.Name() != "t" {
		t.Error("clone aliases original")
	}
}

func TestXMIRoundTripHostileStrings(t *testing.T) {
	mm := testMM(t)
	hostile := []string{
		"control \x06 char",
		"carriage\rreturn",
		"null\x00byte",
		"invalid utf8 \xff\xfe",
		"fine <xml> & 'quotes' \"too\"",
		"tabs\tand\nnewlines",
		"",
	}
	m := NewModel(mm)
	tab := m.MustNew("Table").MustSet("name", "t")
	for i, s := range hostile {
		col := m.MustNew("Column").MustSet("type", "TEXT")
		if err := col.Set("name", s); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		tab.MustAdd("columns", col)
	}
	xml, err := m.ExportString()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ImportString(mm, xml)
	if err != nil {
		t.Fatalf("import: %v\n%s", err, xml)
	}
	cols := m2.Elements()[0].Refs("columns")
	for i, s := range hostile {
		if got := cols[i].Str("name"); got != s {
			t.Errorf("string %d: %q != %q", i, got, s)
		}
	}
}
