// Package bus is an in-process enterprise service bus — the stand-in for
// the Spring Integration module the paper plans to use for
// "interoperability between all of these tools and APIs" (§3.1). It
// provides named channels, point-to-point request/reply, publish/
// subscribe fan-out, and the classic EIP building blocks: router, filter,
// transformer.
package bus

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/odbis/odbis/internal/fault"
	"github.com/odbis/odbis/internal/obs"
)

// Message is the unit of communication on the bus.
type Message struct {
	// ID is assigned by the bus on first send.
	ID string
	// Headers carry routing and metadata.
	Headers map[string]string
	// Body is the payload.
	Body any
}

// NewMessage builds a message with a body and optional header pairs.
func NewMessage(body any, headerPairs ...string) *Message {
	m := &Message{Body: body, Headers: map[string]string{}}
	for i := 0; i+1 < len(headerPairs); i += 2 {
		m.Headers[headerPairs[i]] = headerPairs[i+1]
	}
	return m
}

// Header reads one header ("" when absent).
func (m *Message) Header(key string) string {
	if m.Headers == nil {
		return ""
	}
	return m.Headers[key]
}

// clone copies the message for fan-out so subscribers cannot interfere.
func (m *Message) clone() *Message {
	h := make(map[string]string, len(m.Headers))
	for k, v := range m.Headers {
		h[k] = v
	}
	return &Message{ID: m.ID, Headers: h, Body: m.Body}
}

// Handler consumes a message; the returned message (may be nil) is the
// reply for request/reply sends.
type Handler func(*Message) (*Message, error)

// ChannelStats counts traffic through one channel.
type ChannelStats struct {
	Sent      uint64
	Delivered uint64
	Errors    uint64
	// Redelivered counts detached deliveries that succeeded only on a
	// retry; DeadLettered counts those that exhausted every attempt.
	Redelivered  uint64
	DeadLettered uint64
}

// DeadLetter is a detached delivery that failed every redelivery
// attempt, parked on its channel's dead-letter queue for inspection or
// manual replay.
type DeadLetter struct {
	Channel  string
	Msg      *Message
	Err      string
	Attempts int
}

// Each channel's dead-letter queue is bounded; beyond the cap the oldest
// letter is dropped (the queue is a diagnostic buffer, not durable
// storage — unbounded growth under a persistent failure would turn one
// broken subscriber into a platform OOM). The default suits small
// deployments; SetDeadLetterCap tunes it within [1, maxDeadLetterCap].
const (
	defaultDeadLetterCap = 128
	maxDeadLetterCap     = 65536
)

type channel struct {
	mu           sync.RWMutex
	handlers     []Handler
	sent         atomic.Uint64
	delivered    atomic.Uint64
	errors       atomic.Uint64
	redelivered  atomic.Uint64
	deadLettered atomic.Uint64

	dlqMu sync.Mutex
	dlq   []DeadLetter
	//odbis:guardedby dlqMu -- snapshot of the bus-wide cap, kept in sync
	// by SetDeadLetterCap
	dlqCap int

	// Per-channel obs handles, resolved once when the channel is created
	// so delivery paths never touch the obs registry lock.
	mDelivered    *obs.Counter
	mErrors       *obs.Counter
	mRedelivered  *obs.Counter
	mDeadLettered *obs.Counter
	gDLQDepth     *obs.Gauge
}

// park appends a dead letter, dropping the oldest beyond the cap.
func (c *channel) park(dl DeadLetter) {
	c.dlqMu.Lock()
	if len(c.dlq) >= c.dlqCap {
		copy(c.dlq, c.dlq[1:])
		c.dlq = c.dlq[:c.dlqCap-1]
	}
	c.dlq = append(c.dlq, dl)
	depth := len(c.dlq)
	c.dlqMu.Unlock()
	c.deadLettered.Add(1)
	c.mDeadLettered.Inc()
	c.gDLQDepth.Set(int64(depth))
	// Detached events carry the originating tenant in a header (see
	// services' event publisher); attribute the loss when present.
	if id := dl.Msg.Header("tenant"); id != "" {
		obs.AddTenantID(id, obs.TenantDeadLetters, 1)
	}
}

// Bus is a set of named channels. All operations are safe for concurrent
// use; dispatch is synchronous (the caller's goroutine runs the
// handlers), which keeps ordering deterministic — except PublishDetached,
// whose fan-out goroutines are bound to the bus lifetime and joined by
// Close.
type Bus struct {
	mu       sync.RWMutex
	channels map[string]*channel
	nextID   atomic.Uint64

	// lifeMu guards closed and the wg.Add race against Close; wg counts
	// in-flight detached deliveries. closeCh interrupts redelivery
	// backoff sleeps so Close never waits out a retry schedule.
	lifeMu  sync.Mutex
	closed  bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	// Redelivery policy for detached deliveries (see SetRedelivery).
	redeliverAttempts int
	redeliverBase     time.Duration

	//odbis:guardedby mu -- dead-letter cap inherited by new channels
	dlqCap int
}

// Redelivery defaults: a detached delivery gets defaultAttempts tries in
// total, with capped exponential backoff starting at defaultBase between
// them.
const (
	defaultAttempts   = 3
	defaultBase       = 5 * time.Millisecond
	maxRedeliverSleep = 2 * time.Second
)

// New returns an empty bus.
func New() *Bus {
	return &Bus{
		channels:          make(map[string]*channel),
		closeCh:           make(chan struct{}),
		redeliverAttempts: defaultAttempts,
		redeliverBase:     defaultBase,
		dlqCap:            defaultDeadLetterCap,
	}
}

// SetDeadLetterCap bounds every channel's dead-letter queue (default
// 128). The cap applies to channels created later and retroactively to
// existing ones, trimming their oldest letters past the new bound.
// Out-of-range values ([1, 65536]) are rejected rather than clamped:
// a misconfigured operational limit should fail loudly at boot, not
// silently hold a different value than the one deployed.
func (b *Bus) SetDeadLetterCap(n int) error {
	if n < 1 || n > maxDeadLetterCap {
		return fmt.Errorf("bus: dead-letter cap %d out of range [1, %d]", n, maxDeadLetterCap)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dlqCap = n
	for _, c := range b.channels {
		c.dlqMu.Lock()
		c.dlqCap = n
		if len(c.dlq) > n {
			c.dlq = append([]DeadLetter(nil), c.dlq[len(c.dlq)-n:]...)
		}
		c.dlqMu.Unlock()
	}
	return nil
}

// SetRedelivery tunes the detached-delivery retry policy: attempts is
// the total number of tries (minimum 1), base the first backoff sleep.
// Call before traffic flows; it is not synchronized with in-flight
// deliveries.
func (b *Bus) SetRedelivery(attempts int, base time.Duration) {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = defaultBase
	}
	b.redeliverAttempts = attempts
	b.redeliverBase = base
}

// Close marks the bus closed and waits for every in-flight detached
// delivery to finish. Further PublishDetached calls schedule nothing;
// backoff sleeps are interrupted (the pending message dead-letters);
// synchronous operations keep working (draining a queue during shutdown
// is legitimate). Close is idempotent.
func (b *Bus) Close() {
	b.lifeMu.Lock()
	if !b.closed {
		b.closed = true
		close(b.closeCh)
	}
	b.lifeMu.Unlock()
	b.wg.Wait()
}

// safeCall runs one handler with panic isolation and the bus.deliver
// fault point in front: a panicking subscriber becomes a delivery error
// on its channel instead of a platform crash.
func safeCall(channelName string, h Handler, m *Message) (reply *Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("handler panic on %q: %v", channelName, r)
		}
	}()
	if err := fault.Point(fault.BusDeliver); err != nil {
		return nil, err
	}
	return h(m)
}

// backoffSleep sleeps the capped-exponential backoff for the given
// attempt (1-based) with ±50% jitter, returning false when the bus
// closed during the sleep.
func (b *Bus) backoffSleep(attempt int) bool {
	d := b.redeliverBase << (attempt - 1)
	if d > maxRedeliverSleep || d <= 0 {
		d = maxRedeliverSleep
	}
	// Full jitter on the top half de-synchronizes subscribers that all
	// failed on the same downstream outage.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-b.closeCh:
		return false
	case <-t.C:
		return true
	}
}

func (b *Bus) channelFor(name string, create bool) (*channel, error) {
	b.mu.RLock()
	ch, ok := b.channels[name]
	b.mu.RUnlock()
	if ok {
		return ch, nil
	}
	if !create {
		return nil, fmt.Errorf("bus: no channel %q", name)
	}
	// Resolve the labeled handles BEFORE taking the bus write lock:
	// each lookup acquires the obs registry lock, and nesting it under
	// b.mu would serialize channel creation behind unrelated metric
	// traffic. The lookups run once per channel lifetime (the handles
	// are cached in the channel struct), so the per-call cost the
	// analyzer guards against is already amortized.
	fresh := &channel{
		mDelivered:    obs.GetCounterL("odbis_bus_deliveries_total", "channel", name),   //odbis:ignore obshandle -- label value is dynamic; handle cached per channel, resolved outside b.mu
		mErrors:       obs.GetCounterL("odbis_bus_errors_total", "channel", name),       //odbis:ignore obshandle -- label value is dynamic; handle cached per channel, resolved outside b.mu
		mRedelivered:  obs.GetCounterL("odbis_bus_redeliveries_total", "channel", name), //odbis:ignore obshandle -- label value is dynamic; handle cached per channel, resolved outside b.mu
		mDeadLettered: obs.GetCounterL("odbis_bus_deadlettered_total", "channel", name), //odbis:ignore obshandle -- label value is dynamic; handle cached per channel, resolved outside b.mu
		gDLQDepth:     obs.GetGaugeL("odbis_bus_deadletter_depth", "channel", name),     //odbis:ignore obshandle -- label value is dynamic; handle cached per channel, resolved outside b.mu
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.channels[name]; ok {
		return ch, nil
	}
	// Safe without dlqMu: the channel is unpublished until the map insert
	// below, and b.mu orders this write before any reader's lookup.
	fresh.dlqCap = b.dlqCap
	b.channels[name] = fresh
	return fresh, nil
}

// Subscribe registers a handler on a channel, creating the channel if
// needed.
func (b *Bus) Subscribe(channelName string, h Handler) error {
	if h == nil {
		return fmt.Errorf("bus: nil handler for %q", channelName)
	}
	ch, err := b.channelFor(channelName, true)
	if err != nil {
		return err
	}
	ch.mu.Lock()
	ch.handlers = append(ch.handlers, h)
	ch.mu.Unlock()
	return nil
}

func (b *Bus) stamp(m *Message) *Message {
	if m.ID == "" {
		m.ID = "msg-" + strconv.FormatUint(b.nextID.Add(1), 10)
	}
	if m.Headers == nil {
		m.Headers = map[string]string{}
	}
	return m
}

// Send is point-to-point request/reply: the message goes to exactly one
// subscriber (the first registered) and its reply is returned.
func (b *Bus) Send(channelName string, m *Message) (*Message, error) {
	ch, err := b.channelFor(channelName, false)
	if err != nil {
		return nil, err
	}
	b.stamp(m)
	ch.sent.Add(1)
	ch.mu.RLock()
	var h Handler
	if len(ch.handlers) > 0 {
		h = ch.handlers[0]
	}
	ch.mu.RUnlock()
	if h == nil {
		ch.errors.Add(1)
		ch.mErrors.Inc()
		return nil, fmt.Errorf("bus: channel %q has no subscriber", channelName)
	}
	reply, err := safeCall(channelName, h, m)
	if err != nil {
		ch.errors.Add(1)
		ch.mErrors.Inc()
		return nil, fmt.Errorf("bus: %q: %w", channelName, err)
	}
	ch.delivered.Add(1)
	ch.mDelivered.Inc()
	return reply, nil
}

// Publish fans the message out to every subscriber (each gets its own
// copy). The first handler error aborts and is returned; earlier
// deliveries stand.
func (b *Bus) Publish(channelName string, m *Message) error {
	ch, err := b.channelFor(channelName, false)
	if err != nil {
		return err
	}
	b.stamp(m)
	ch.sent.Add(1)
	ch.mu.RLock()
	handlers := append([]Handler(nil), ch.handlers...)
	ch.mu.RUnlock()
	if len(handlers) == 0 {
		ch.errors.Add(1)
		ch.mErrors.Inc()
		return fmt.Errorf("bus: channel %q has no subscriber", channelName)
	}
	for _, h := range handlers {
		if _, err := safeCall(channelName, h, m.clone()); err != nil {
			ch.errors.Add(1)
			ch.mErrors.Inc()
			return fmt.Errorf("bus: %q: %w", channelName, err)
		}
		ch.delivered.Add(1)
		ch.mDelivered.Inc()
	}
	return nil
}

// PublishBestEffort fans the message out to every subscriber, continuing
// past handler errors (event-stream semantics: observers must not veto
// each other). It returns the number of successful deliveries; a missing
// channel delivers zero.
func (b *Bus) PublishBestEffort(channelName string, m *Message) int {
	ch, err := b.channelFor(channelName, false)
	if err != nil {
		return 0
	}
	b.stamp(m)
	ch.sent.Add(1)
	ch.mu.RLock()
	handlers := append([]Handler(nil), ch.handlers...)
	ch.mu.RUnlock()
	delivered := 0
	for _, h := range handlers {
		if _, err := safeCall(channelName, h, m.clone()); err != nil {
			ch.errors.Add(1)
			ch.mErrors.Inc()
			continue
		}
		ch.delivered.Add(1)
		ch.mDelivered.Inc()
		delivered++
	}
	return delivered
}

// PublishDetached fans the message out to every subscriber on separate
// goroutines, continuing past handler errors, and returns the number of
// deliveries scheduled without waiting for them. A failed delivery is
// retried with capped exponential backoff (SetRedelivery); one that
// exhausts every attempt — or whose backoff is cut short by Close —
// parks on the channel's dead-letter queue. Every goroutine is
// registered with the bus lifetime, so Close blocks until all detached
// deliveries have finished — the platform cannot leak dispatch goroutines
// on shutdown. After Close, PublishDetached schedules nothing.
func (b *Bus) PublishDetached(channelName string, m *Message) int {
	ch, err := b.channelFor(channelName, false)
	if err != nil {
		return 0
	}
	b.stamp(m)
	ch.sent.Add(1)
	ch.mu.RLock()
	handlers := append([]Handler(nil), ch.handlers...)
	ch.mu.RUnlock()
	scheduled := 0
	for _, h := range handlers {
		b.lifeMu.Lock()
		if b.closed {
			b.lifeMu.Unlock()
			break
		}
		b.wg.Add(1)
		b.lifeMu.Unlock()
		scheduled++
		go func(h Handler, m *Message) {
			defer b.wg.Done()
			b.deliverDetached(channelName, ch, h, m)
		}(h, m.clone())
	}
	return scheduled
}

// deliverDetached runs one detached delivery to completion: success,
// or dead-letter after the retry budget (or a shutdown mid-backoff).
func (b *Bus) deliverDetached(channelName string, ch *channel, h Handler, m *Message) {
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= b.redeliverAttempts; attempt++ {
		attempts = attempt
		_, err := safeCall(channelName, h, m)
		if err == nil {
			if attempt > 1 {
				ch.redelivered.Add(1)
				ch.mRedelivered.Inc()
			}
			ch.delivered.Add(1)
			ch.mDelivered.Inc()
			return
		}
		lastErr = err
		ch.errors.Add(1)
		ch.mErrors.Inc()
		if attempt == b.redeliverAttempts || !b.backoffSleep(attempt) {
			break
		}
	}
	ch.park(DeadLetter{Channel: channelName, Msg: m, Err: lastErr.Error(), Attempts: attempts})
}

// DeadLetters returns a copy of the channel's dead-letter queue, oldest
// first. A missing channel has none.
func (b *Bus) DeadLetters(channelName string) []DeadLetter {
	ch, err := b.channelFor(channelName, false)
	if err != nil {
		return nil
	}
	ch.dlqMu.Lock()
	defer ch.dlqMu.Unlock()
	return append([]DeadLetter(nil), ch.dlq...)
}

// DrainDeadLetters removes and returns the channel's dead letters,
// oldest first — the hook for manual replay after the downstream fault
// is fixed.
func (b *Bus) DrainDeadLetters(channelName string) []DeadLetter {
	ch, err := b.channelFor(channelName, false)
	if err != nil {
		return nil
	}
	ch.dlqMu.Lock()
	defer ch.dlqMu.Unlock()
	out := ch.dlq
	ch.dlq = nil
	return out
}

// Channels lists channel names sorted.
func (b *Bus) Channels() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.channels))
	for n := range b.channels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats reports a channel's counters.
func (b *Bus) Stats(channelName string) (ChannelStats, error) {
	ch, err := b.channelFor(channelName, false)
	if err != nil {
		return ChannelStats{}, err
	}
	return ChannelStats{
		Sent:         ch.sent.Load(),
		Delivered:    ch.delivered.Load(),
		Errors:       ch.errors.Load(),
		Redelivered:  ch.redelivered.Load(),
		DeadLettered: ch.deadLettered.Load(),
	}, nil
}

// --- EIP building blocks ---

// Route forwards messages from one channel to the channel chosen by
// selector (a content-based router). A selector returning "" drops the
// message.
func (b *Bus) Route(from string, selector func(*Message) string) error {
	return b.Subscribe(from, func(m *Message) (*Message, error) {
		target := selector(m)
		if target == "" {
			return nil, nil
		}
		return b.Send(target, m)
	})
}

// Filter forwards messages from one channel to another when pred holds.
func (b *Bus) Filter(from, to string, pred func(*Message) bool) error {
	return b.Subscribe(from, func(m *Message) (*Message, error) {
		if !pred(m) {
			return nil, nil
		}
		return b.Send(to, m)
	})
}

// Transform rewrites messages from one channel onto another.
func (b *Bus) Transform(from, to string, fn func(*Message) (*Message, error)) error {
	return b.Subscribe(from, func(m *Message) (*Message, error) {
		nm, err := fn(m)
		if err != nil {
			return nil, err
		}
		if nm == nil {
			return nil, nil
		}
		return b.Send(to, nm)
	})
}
