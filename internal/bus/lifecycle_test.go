package bus

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseJoinsDetachedDeliveries: Close must block until every
// goroutine spawned by PublishDetached has finished — the platform's
// guarantee that shutdown leaks no dispatch goroutines.
func TestCloseJoinsDetachedDeliveries(t *testing.T) {
	b := New()
	release := make(chan struct{})
	var delivered atomic.Int64
	for i := 0; i < 3; i++ {
		b.Subscribe("events", func(m *Message) (*Message, error) {
			<-release
			delivered.Add(1)
			return nil, nil
		})
	}
	if n := b.PublishDetached("events", NewMessage("tick")); n != 3 {
		t.Fatalf("scheduled %d deliveries, want 3", n)
	}

	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while detached deliveries were in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close never returned after deliveries finished")
	}
	if got := delivered.Load(); got != 3 {
		t.Errorf("delivered = %d after Close, want 3 — Close did not join all goroutines", got)
	}
}

// TestPublishDetachedAfterClose: a closed bus schedules nothing — no
// goroutine can outlive Close.
func TestPublishDetachedAfterClose(t *testing.T) {
	b := New()
	var delivered atomic.Int64
	b.Subscribe("events", func(m *Message) (*Message, error) {
		delivered.Add(1)
		return nil, nil
	})
	b.Close()
	if n := b.PublishDetached("events", NewMessage("late")); n != 0 {
		t.Errorf("post-Close PublishDetached scheduled %d deliveries", n)
	}
	time.Sleep(20 * time.Millisecond)
	if got := delivered.Load(); got != 0 {
		t.Errorf("handler ran %d times after Close", got)
	}
	// Close is idempotent.
	b.Close()
}

// TestSynchronousPathsSurviveClose: Send/Publish are caller-synchronous
// and thus not lifecycle-managed; they still work after Close (the
// caller owns its own lifetime), keeping legacy call sites safe.
func TestSynchronousPathsSurviveClose(t *testing.T) {
	b := New()
	b.Subscribe("echo", func(m *Message) (*Message, error) {
		return NewMessage(m.Body), nil
	})
	b.Close()
	reply, err := b.Send("echo", NewMessage("x"))
	if err != nil || reply.Body != "x" {
		t.Errorf("Send after Close = %v, %v", reply, err)
	}
}
