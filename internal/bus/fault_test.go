package bus

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/fault"
)

// TestPanicSafeDispatch: a panicking subscriber must surface as a
// delivery error on every synchronous path, never as a process crash.
func TestPanicSafeDispatch(t *testing.T) {
	b := New()
	defer b.Close()
	if err := b.Subscribe("orders", func(*Message) (*Message, error) {
		panic("subscriber bug")
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := b.Send("orders", NewMessage("x")); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Send after panic: err = %v, want handler-panic error", err)
	}
	if err := b.Publish("orders", NewMessage("x")); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Publish after panic: err = %v, want handler-panic error", err)
	}
	if n := b.PublishBestEffort("orders", NewMessage("x")); n != 0 {
		t.Fatalf("PublishBestEffort delivered %d past a panic, want 0", n)
	}
	st, err := b.Stats("orders")
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 3 {
		t.Fatalf("Errors = %d, want 3 (one per dispatch)", st.Errors)
	}
}

// TestPanicIsolationAcrossSubscribers: with best-effort fan-out, one
// panicking subscriber must not veto delivery to the others.
func TestPanicIsolationAcrossSubscribers(t *testing.T) {
	b := New()
	defer b.Close()
	var got atomic.Int64
	b.Subscribe("events", func(*Message) (*Message, error) { panic("bad observer") })
	b.Subscribe("events", func(*Message) (*Message, error) { got.Add(1); return nil, nil })
	if n := b.PublishBestEffort("events", NewMessage("e")); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if got.Load() != 1 {
		t.Fatalf("healthy subscriber saw %d messages, want 1", got.Load())
	}
}

// TestBusDeliverFaultPoint: the bus.deliver point injects a delivery
// failure without any cooperating subscriber.
func TestBusDeliverFaultPoint(t *testing.T) {
	defer fault.Reset()
	b := New()
	defer b.Close()
	b.Subscribe("q", func(m *Message) (*Message, error) { return m, nil })
	if err := fault.Arm(fault.BusDeliver, fault.Behavior{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	_, err := b.Send("q", NewMessage("x"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Send under armed bus.deliver: err = %v, want ErrInjected", err)
	}
	fault.Reset()
	if _, err := b.Send("q", NewMessage("x")); err != nil {
		t.Fatalf("Send after disarm: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline passes. Close
// interrupts redelivery backoff by design, so tests that assert on a
// completed retry schedule must wait for the outcome before closing.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDetachedRedelivery: a transiently failing subscriber is retried
// with backoff and eventually succeeds; the redelivery is counted and
// nothing dead-letters.
func TestDetachedRedelivery(t *testing.T) {
	b := New()
	b.SetRedelivery(3, time.Millisecond)
	var calls atomic.Int64
	b.Subscribe("jobs", func(*Message) (*Message, error) {
		if calls.Add(1) < 3 {
			return nil, fmt.Errorf("transient")
		}
		return nil, nil
	})
	if n := b.PublishDetached("jobs", NewMessage("j")); n != 1 {
		t.Fatalf("scheduled %d, want 1", n)
	}
	waitFor(t, func() bool { st, _ := b.Stats("jobs"); return st.Delivered == 1 })
	b.Close()
	st, _ := b.Stats("jobs")
	if st.Delivered != 1 || st.Redelivered != 1 || st.DeadLettered != 0 {
		t.Fatalf("stats = %+v, want delivered 1, redelivered 1, dead-lettered 0", st)
	}
	if calls.Load() != 3 {
		t.Fatalf("handler called %d times, want 3", calls.Load())
	}
	if dls := b.DeadLetters("jobs"); len(dls) != 0 {
		t.Fatalf("unexpected dead letters: %+v", dls)
	}
}

// TestDeadLetterAfterExhaustedRetries: a persistently failing
// subscriber exhausts the retry budget and the message parks on the
// channel's dead-letter queue with the final error and attempt count.
func TestDeadLetterAfterExhaustedRetries(t *testing.T) {
	b := New()
	b.SetRedelivery(3, time.Millisecond)
	var calls atomic.Int64
	b.Subscribe("jobs", func(*Message) (*Message, error) {
		calls.Add(1)
		return nil, fmt.Errorf("downstream hard down")
	})
	m := NewMessage("payload", "tenant", "t1")
	b.PublishDetached("jobs", m)
	waitFor(t, func() bool { st, _ := b.Stats("jobs"); return st.DeadLettered == 1 })
	b.Close()

	if calls.Load() != 3 {
		t.Fatalf("handler called %d times, want 3", calls.Load())
	}
	dls := b.DrainDeadLetters("jobs")
	if len(dls) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(dls))
	}
	dl := dls[0]
	if dl.Channel != "jobs" || dl.Attempts != 3 || !strings.Contains(dl.Err, "hard down") {
		t.Fatalf("dead letter = %+v", dl)
	}
	if dl.Msg.Header("tenant") != "t1" {
		t.Fatalf("dead letter lost headers: %+v", dl.Msg)
	}
	if len(b.DeadLetters("jobs")) != 0 {
		t.Fatal("drain did not clear the queue")
	}
	st, _ := b.Stats("jobs")
	if st.DeadLettered != 1 || st.Errors != 3 {
		t.Fatalf("stats = %+v, want dead-lettered 1, errors 3", st)
	}
}

// TestPanickingDetachedSubscriberDeadLetters: panics on the detached
// path are recovered per attempt and the message still dead-letters —
// the platform never loses the goroutine or the evidence.
func TestPanickingDetachedSubscriberDeadLetters(t *testing.T) {
	b := New()
	b.SetRedelivery(2, time.Millisecond)
	b.Subscribe("jobs", func(*Message) (*Message, error) { panic("boom") })
	b.PublishDetached("jobs", NewMessage("j"))
	waitFor(t, func() bool { st, _ := b.Stats("jobs"); return st.DeadLettered == 1 })
	b.Close()
	dls := b.DeadLetters("jobs")
	if len(dls) != 1 || !strings.Contains(dls[0].Err, "panic") {
		t.Fatalf("dead letters = %+v, want one panic letter", dls)
	}
}

// TestCloseInterruptsBackoff: Close during a redelivery backoff must
// return promptly (the sleep is interrupted) and the pending message
// dead-letters rather than vanishing.
func TestCloseInterruptsBackoff(t *testing.T) {
	b := New()
	b.SetRedelivery(5, time.Hour) // would block Close for hours if not interruptible
	b.Subscribe("jobs", func(*Message) (*Message, error) { return nil, fmt.Errorf("down") })
	b.PublishDetached("jobs", NewMessage("j"))

	done := make(chan struct{})
	go func() { b.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on redelivery backoff")
	}
	dls := b.DeadLetters("jobs")
	if len(dls) != 1 {
		t.Fatalf("dead letters after interrupted backoff = %d, want 1", len(dls))
	}
	if dls[0].Attempts >= 5 {
		t.Fatalf("attempts = %d, want < 5 (shutdown cut the schedule short)", dls[0].Attempts)
	}
}

// TestDeadLetterQueueBounded: the queue drops oldest beyond defaultDeadLetterCap so a
// persistently broken subscriber cannot grow memory without bound.
func TestDeadLetterQueueBounded(t *testing.T) {
	b := New()
	b.SetRedelivery(1, time.Millisecond)
	b.Subscribe("jobs", func(*Message) (*Message, error) { return nil, fmt.Errorf("down") })
	for i := 0; i < defaultDeadLetterCap+10; i++ {
		b.PublishDetached("jobs", NewMessage(i))
	}
	waitFor(t, func() bool { st, _ := b.Stats("jobs"); return st.DeadLettered == uint64(defaultDeadLetterCap+10) })
	b.Close()
	dls := b.DeadLetters("jobs")
	if len(dls) != defaultDeadLetterCap {
		t.Fatalf("dead letters = %d, want capped at %d", len(dls), defaultDeadLetterCap)
	}
	st, _ := b.Stats("jobs")
	if st.DeadLettered != uint64(defaultDeadLetterCap+10) {
		t.Fatalf("DeadLettered counter = %d, want %d (counts drops too)", st.DeadLettered, defaultDeadLetterCap+10)
	}
}

// TestDeadLetterCapConfigurable: SetDeadLetterCap rejects out-of-range
// values, applies retroactively to existing channels (trimming oldest),
// and governs subsequently created channels.
func TestDeadLetterCapConfigurable(t *testing.T) {
	b := New()
	defer b.Close()
	if err := b.SetDeadLetterCap(0); err == nil {
		t.Fatal("SetDeadLetterCap(0) accepted, want error")
	}
	if err := b.SetDeadLetterCap(maxDeadLetterCap + 1); err == nil {
		t.Fatalf("SetDeadLetterCap(%d) accepted, want error", maxDeadLetterCap+1)
	}
	b.SetRedelivery(1, time.Millisecond)
	b.Subscribe("jobs", func(*Message) (*Message, error) { return nil, fmt.Errorf("down") })
	for i := 0; i < 8; i++ {
		b.PublishDetached("jobs", NewMessage(i))
	}
	waitFor(t, func() bool { st, _ := b.Stats("jobs"); return st.DeadLettered == 8 })
	if err := b.SetDeadLetterCap(3); err != nil {
		t.Fatalf("SetDeadLetterCap(3): %v", err)
	}
	dls := b.DeadLetters("jobs")
	if len(dls) != 3 {
		t.Fatalf("dead letters after retroactive trim = %d, want 3", len(dls))
	}
	// Detached deliveries land in goroutine-scheduling order, so which
	// letters survive is nondeterministic — only the bound is asserted.
	// A channel created after the change inherits the new cap.
	b.Subscribe("etl", func(*Message) (*Message, error) { return nil, fmt.Errorf("down") })
	for i := 0; i < 10; i++ {
		b.PublishDetached("etl", NewMessage(i))
	}
	waitFor(t, func() bool { st, _ := b.Stats("etl"); return st.DeadLettered == 10 })
	if got := len(b.DeadLetters("etl")); got != 3 {
		t.Fatalf("new channel dead letters = %d, want capped at 3", got)
	}
}
