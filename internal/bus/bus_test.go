package bus

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestSendRequestReply(t *testing.T) {
	b := New()
	err := b.Subscribe("echo", func(m *Message) (*Message, error) {
		return NewMessage(fmt.Sprintf("re: %v", m.Body)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := b.Send("echo", NewMessage("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Body != "re: hello" {
		t.Errorf("reply = %v", reply.Body)
	}
}

func TestSendErrors(t *testing.T) {
	b := New()
	if _, err := b.Send("ghost", NewMessage(1)); err == nil {
		t.Error("send to missing channel accepted")
	}
	b.Subscribe("boom", func(m *Message) (*Message, error) {
		return nil, errors.New("kaboom")
	})
	if _, err := b.Send("boom", NewMessage(1)); err == nil {
		t.Error("handler error swallowed")
	}
	if err := b.Subscribe("x", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestPublishFanOut(t *testing.T) {
	b := New()
	var got []string
	for i := 0; i < 3; i++ {
		i := i
		b.Subscribe("events", func(m *Message) (*Message, error) {
			got = append(got, fmt.Sprintf("%d:%v", i, m.Body))
			return nil, nil
		})
	}
	if err := b.Publish("events", NewMessage("tick")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("deliveries = %v", got)
	}
}

func TestPublishCopiesHeaders(t *testing.T) {
	b := New()
	b.Subscribe("c", func(m *Message) (*Message, error) {
		m.Headers["mutated"] = "yes"
		return nil, nil
	})
	saw := ""
	b.Subscribe("c", func(m *Message) (*Message, error) {
		saw = m.Header("mutated")
		return nil, nil
	})
	b.Publish("c", NewMessage(1, "k", "v"))
	if saw != "" {
		t.Error("subscriber saw another subscriber's header mutation")
	}
}

func TestMessageIDsAssigned(t *testing.T) {
	b := New()
	b.Subscribe("c", func(m *Message) (*Message, error) { return nil, nil })
	m1, m2 := NewMessage(1), NewMessage(2)
	b.Send("c", m1)
	b.Send("c", m2)
	if m1.ID == "" || m1.ID == m2.ID {
		t.Errorf("ids = %q, %q", m1.ID, m2.ID)
	}
}

func TestRouter(t *testing.T) {
	b := New()
	var big, small []any
	b.Subscribe("big", func(m *Message) (*Message, error) { big = append(big, m.Body); return nil, nil })
	b.Subscribe("small", func(m *Message) (*Message, error) { small = append(small, m.Body); return nil, nil })
	b.Route("in", func(m *Message) string {
		if n, ok := m.Body.(int); ok && n > 10 {
			return "big"
		}
		if _, ok := m.Body.(int); ok {
			return "small"
		}
		return "" // drop
	})
	for _, n := range []int{5, 50, 7} {
		if _, err := b.Send("in", NewMessage(n)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Send("in", NewMessage("not-a-number")); err != nil {
		t.Fatal(err) // dropped, not an error
	}
	if len(big) != 1 || len(small) != 2 {
		t.Errorf("big=%v small=%v", big, small)
	}
}

func TestFilterAndTransform(t *testing.T) {
	b := New()
	var out []any
	b.Subscribe("out", func(m *Message) (*Message, error) { out = append(out, m.Body); return nil, nil })
	b.Filter("raw", "pos", func(m *Message) bool { return m.Body.(int) > 0 })
	b.Transform("pos", "out", func(m *Message) (*Message, error) {
		return NewMessage(m.Body.(int) * 10), nil
	})
	for _, n := range []int{-1, 2, 3} {
		if _, err := b.Send("raw", NewMessage(n)); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 2 || out[0] != 20 || out[1] != 30 {
		t.Errorf("out = %v", out)
	}
}

func TestStats(t *testing.T) {
	b := New()
	b.Subscribe("c", func(m *Message) (*Message, error) { return nil, nil })
	b.Send("c", NewMessage(1))
	b.Send("c", NewMessage(2))
	st, err := b.Stats("c")
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 2 || st.Delivered != 2 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := b.Stats("ghost"); err == nil {
		t.Error("stats for missing channel accepted")
	}
	if chs := b.Channels(); len(chs) != 1 || chs[0] != "c" {
		t.Errorf("channels = %v", chs)
	}
}

func TestConcurrentSends(t *testing.T) {
	b := New()
	var mu sync.Mutex
	count := 0
	b.Subscribe("c", func(m *Message) (*Message, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return nil, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b.Send("c", NewMessage(j))
			}
		}()
	}
	wg.Wait()
	if count != 1000 {
		t.Errorf("count = %d", count)
	}
	st, _ := b.Stats("c")
	if st.Sent != 1000 {
		t.Errorf("sent = %d", st.Sent)
	}
}

func TestPublishBestEffort(t *testing.T) {
	b := New()
	var got []any
	b.Subscribe("ev", func(m *Message) (*Message, error) { got = append(got, m.Body); return nil, nil })
	b.Subscribe("ev", func(m *Message) (*Message, error) { return nil, errors.New("crash") })
	b.Subscribe("ev", func(m *Message) (*Message, error) { got = append(got, m.Body); return nil, nil })
	delivered := b.PublishBestEffort("ev", NewMessage("x"))
	if delivered != 2 || len(got) != 2 {
		t.Errorf("delivered=%d got=%v", delivered, got)
	}
	st, _ := b.Stats("ev")
	if st.Errors != 1 || st.Delivered != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Missing channel: zero deliveries, no panic.
	if n := b.PublishBestEffort("ghost", NewMessage(1)); n != 0 {
		t.Errorf("ghost deliveries = %d", n)
	}
}
