package mda

import (
	"strings"
	"testing"

	"github.com/odbis/odbis/internal/metamodel"
)

// Toy metamodels: a "class diagram" source and an "entity" target.
func toyMetamodels(t *testing.T) (*metamodel.Metamodel, *metamodel.Metamodel) {
	t.Helper()
	src := metamodel.New("Src")
	src.MustDefine(metamodel.ClassSpec{
		Name: "Box",
		Attributes: []metamodel.Attribute{
			{Name: "name", Type: metamodel.AttrString, Required: true},
			{Name: "big", Type: metamodel.AttrBool},
		},
		References: []metamodel.Reference{
			{Name: "next", Target: "Box"},
		},
	})
	dst := metamodel.New("Dst")
	dst.MustDefine(metamodel.ClassSpec{
		Name: "Entity",
		Attributes: []metamodel.Attribute{
			{Name: "name", Type: metamodel.AttrString, Required: true},
		},
		References: []metamodel.Reference{
			{Name: "follows", Target: "Entity"},
		},
	})
	return src, dst
}

func boxToEntity(src, dst *metamodel.Metamodel) *Transformation {
	return &Transformation{
		Name:   "box2entity",
		Source: src,
		Target: dst,
		Rules: []Rule{
			{
				Name: "BoxToEntity",
				From: "Box",
				To: func(ctx *Context, b *metamodel.Element) error {
					e := ctx.MustCreate("Entity")
					if err := e.Set("name", "e_"+b.Name()); err != nil {
						return err
					}
					// Wire the "next" reference after all entities exist.
					ctx.Defer(func() error {
						nb := b.Ref("next")
						if nb == nil {
							return nil
						}
						target, err := ctx.ResolveOne(nb, "Entity")
						if err != nil {
							return err
						}
						return e.Add("follows", target)
					})
					return nil
				},
			},
		},
	}
}

func TestTransformationRun(t *testing.T) {
	srcMM, dstMM := toyMetamodels(t)
	m := metamodel.NewModel(srcMM)
	a := m.MustNew("Box").MustSet("name", "a")
	b := m.MustNew("Box").MustSet("name", "b")
	a.MustAdd("next", b)

	tr := boxToEntity(srcMM, dstMM)
	out, trace, err := tr.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("target len = %d", out.Len())
	}
	ea, ok := out.FindByName("Entity", "e_a")
	if !ok {
		t.Fatal("e_a missing")
	}
	if ea.Ref("follows") == nil || ea.Ref("follows").Name() != "e_b" {
		t.Error("deferred reference not wired")
	}
	// Trace must link a → e_a.
	targets := trace.TargetsOf(a)
	if len(targets) != 1 || targets[0].Name() != "e_a" {
		t.Errorf("trace targets of a = %v", targets)
	}
	if !strings.Contains(trace.String(), "BoxToEntity") {
		t.Error("trace string lacks rule name")
	}
}

func TestRuleGuard(t *testing.T) {
	srcMM, dstMM := toyMetamodels(t)
	m := metamodel.NewModel(srcMM)
	m.MustNew("Box").MustSet("name", "small").MustSet("big", false)
	m.MustNew("Box").MustSet("name", "large").MustSet("big", true)
	tr := &Transformation{
		Name: "bigOnly", Source: srcMM, Target: dstMM,
		Rules: []Rule{{
			Name: "big", From: "Box",
			When: func(b *metamodel.Element) bool { return b.Bool("big") },
			To: func(ctx *Context, b *metamodel.Element) error {
				return ctx.MustCreate("Entity").Set("name", b.Name())
			},
		}},
	}
	out, _, err := tr.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("guard ignored: len = %d", out.Len())
	}
	if _, ok := out.FindByName("Entity", "large"); !ok {
		t.Error("wrong element selected")
	}
}

func TestRunRejectsWrongMetamodel(t *testing.T) {
	srcMM, dstMM := toyMetamodels(t)
	tr := boxToEntity(srcMM, dstMM)
	wrong := metamodel.NewModel(dstMM)
	if _, _, err := tr.Run(wrong); err == nil {
		t.Error("wrong source metamodel accepted")
	}
}

func TestRunRejectsInvalidSource(t *testing.T) {
	srcMM, dstMM := toyMetamodels(t)
	m := metamodel.NewModel(srcMM)
	m.MustNew("Box") // name missing
	tr := boxToEntity(srcMM, dstMM)
	if _, _, err := tr.Run(m); err == nil {
		t.Error("invalid source model accepted")
	}
}

func TestRunRejectsInvalidTarget(t *testing.T) {
	srcMM, dstMM := toyMetamodels(t)
	m := metamodel.NewModel(srcMM)
	m.MustNew("Box").MustSet("name", "x")
	tr := &Transformation{
		Name: "broken", Source: srcMM, Target: dstMM,
		Rules: []Rule{{
			Name: "r", From: "Box",
			To: func(ctx *Context, b *metamodel.Element) error {
				_, err := ctx.Create("Entity") // required name never set
				return err
			},
		}},
	}
	if _, _, err := tr.Run(m); err == nil {
		t.Error("invalid target model accepted")
	}
}

func TestResolveOneErrors(t *testing.T) {
	srcMM, dstMM := toyMetamodels(t)
	m := metamodel.NewModel(srcMM)
	m.MustNew("Box").MustSet("name", "x")
	tr := &Transformation{
		Name: "multi", Source: srcMM, Target: dstMM,
		Rules: []Rule{{
			Name: "r", From: "Box",
			To: func(ctx *Context, b *metamodel.Element) error {
				ctx.MustCreate("Entity").MustSet("name", "one")
				ctx.MustCreate("Entity").MustSet("name", "two")
				ctx.Defer(func() error {
					_, err := ctx.ResolveOne(b, "Entity")
					if err == nil {
						t.Error("ResolveOne on ambiguous derivation should fail")
					}
					return nil
				})
				return nil
			},
		}},
	}
	if _, _, err := tr.Run(m); err != nil {
		t.Fatal(err)
	}
}

func TestChainAndLineage(t *testing.T) {
	srcMM, midMM := toyMetamodels(t)
	// Third metamodel for the second hop.
	finMM := metamodel.New("Fin")
	finMM.MustDefine(metamodel.ClassSpec{
		Name:       "Rec",
		Attributes: []metamodel.Attribute{{Name: "name", Type: metamodel.AttrString, Required: true}},
	})
	hop1 := boxToEntity(srcMM, midMM)
	hop2 := &Transformation{
		Name: "entity2rec", Source: midMM, Target: finMM,
		Rules: []Rule{{
			Name: "r", From: "Entity",
			To: func(ctx *Context, e *metamodel.Element) error {
				return ctx.MustCreate("Rec").Set("name", "r_"+e.Name())
			},
		}},
	}
	m := metamodel.NewModel(srcMM)
	box := m.MustNew("Box").MustSet("name", "a")
	chain := &Chain{Name: "c", Stages: []*Transformation{hop1, hop2}}
	res, err := chain.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 3 || len(res.Traces) != 2 {
		t.Fatalf("chain result shape: %d models, %d traces", len(res.Models), len(res.Traces))
	}
	rec, ok := res.Final().FindByName("Rec", "r_e_a")
	if !ok {
		t.Fatal("final element missing")
	}
	lin := res.Lineage(rec)
	if len(lin) != 3 || lin[0] != box.ID() || lin[2] != rec.ID() {
		t.Errorf("lineage = %v", lin)
	}
}
