// Package mda implements the model-transformation engine of the MDDWS
// design layer — the stand-in for QVT in the paper's MDA-based DW design
// framework (§3.2, Fig. 3). Transformations are declarative rule sets
// mapping elements of a source metamodel to elements of a target
// metamodel, with full traceability: every produced element is linked to
// the source element it was derived from, exactly as QVT trace models
// link viewpoints (CIM→PIM→PSM).
package mda

import (
	"fmt"
	"strings"

	"github.com/odbis/odbis/internal/metamodel"
)

// Rule maps source elements of one class (including subclasses) to target
// elements.
type Rule struct {
	// Name identifies the rule in traces and errors.
	Name string
	// From is the source class the rule matches.
	From string
	// When optionally guards the rule; nil means always.
	When func(src *metamodel.Element) bool
	// To builds target elements for one source element. Use ctx.Create to
	// instantiate targets (which records trace links) and ctx.Defer for
	// work that needs other rules' outputs (cross-references).
	To func(ctx *Context, src *metamodel.Element) error
}

// Transformation is an ordered rule set between two metamodels.
type Transformation struct {
	Name   string
	Source *metamodel.Metamodel
	Target *metamodel.Metamodel
	Rules  []Rule
}

// TraceLink records that rule Rule derived Targets from Source.
type TraceLink struct {
	Rule    string
	Source  string // source element id
	Targets []string
}

// Trace is the QVT-style trace model of one transformation run.
type Trace struct {
	Transformation string
	Links          []TraceLink
	bySource       map[string][]*metamodel.Element
}

// TargetsOf returns the target elements derived from the given source
// element.
func (t *Trace) TargetsOf(src *metamodel.Element) []*metamodel.Element {
	return append([]*metamodel.Element(nil), t.bySource[src.ID()]...)
}

// String renders the trace as a readable table.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace of %s (%d links)\n", t.Transformation, len(t.Links))
	for _, l := range t.Links {
		fmt.Fprintf(&sb, "  %-28s %s -> %s\n", l.Rule, l.Source, strings.Join(l.Targets, ", "))
	}
	return sb.String()
}

// Context is passed to rule bodies.
type Context struct {
	// Source and Target are the models being read and built.
	Source *metamodel.Model
	Target *metamodel.Model

	trace    *Trace
	current  *metamodel.Element // source element the running rule matched
	curRule  string
	deferred []func() error
}

// Create instantiates a target-class element and records a trace link
// from the current source element.
func (ctx *Context) Create(className string) (*metamodel.Element, error) {
	e, err := ctx.Target.New(className)
	if err != nil {
		return nil, fmt.Errorf("mda: rule %s: %w", ctx.curRule, err)
	}
	ctx.recordTrace(e)
	return e, nil
}

// MustCreate is Create, panicking on error (for statically-known class
// names inside rule bodies).
func (ctx *Context) MustCreate(className string) *metamodel.Element {
	e, err := ctx.Create(className)
	if err != nil {
		panic(err)
	}
	return e
}

func (ctx *Context) recordTrace(target *metamodel.Element) {
	srcID := ctx.current.ID()
	ctx.trace.bySource[srcID] = append(ctx.trace.bySource[srcID], target)
	for i := range ctx.trace.Links {
		l := &ctx.trace.Links[i]
		if l.Source == srcID && l.Rule == ctx.curRule {
			l.Targets = append(l.Targets, target.ID())
			return
		}
	}
	ctx.trace.Links = append(ctx.trace.Links, TraceLink{
		Rule:    ctx.curRule,
		Source:  srcID,
		Targets: []string{target.ID()},
	})
}

// Resolve returns the elements previously derived from src (by any rule),
// optionally filtered to a class. It is the QVT "resolve" primitive; use
// it inside Defer callbacks, after all rules have run.
func (ctx *Context) Resolve(src *metamodel.Element, className string) []*metamodel.Element {
	targets := ctx.trace.bySource[src.ID()]
	if className == "" {
		return append([]*metamodel.Element(nil), targets...)
	}
	var out []*metamodel.Element
	for _, t := range targets {
		if t.Class().IsA(className) {
			out = append(out, t)
		}
	}
	return out
}

// ResolveOne returns the single derived element of a class, erroring when
// absent or ambiguous.
func (ctx *Context) ResolveOne(src *metamodel.Element, className string) (*metamodel.Element, error) {
	targets := ctx.Resolve(src, className)
	switch len(targets) {
	case 0:
		return nil, fmt.Errorf("mda: no %s derived from %s", className, src.ID())
	case 1:
		return targets[0], nil
	default:
		return nil, fmt.Errorf("mda: %d %s elements derived from %s", len(targets), className, src.ID())
	}
}

// Defer schedules fn to run after every rule has fired, in registration
// order. Use it to wire references between elements created by different
// rules.
func (ctx *Context) Defer(fn func() error) {
	ctx.deferred = append(ctx.deferred, fn)
}

// Run executes the transformation over src, returning the target model
// and the trace. The source model is validated first and the target model
// after; rule order follows the declaration order, and within one rule
// source elements are visited in creation order.
func (t *Transformation) Run(src *metamodel.Model) (*metamodel.Model, *Trace, error) {
	if src.Metamodel() != t.Source {
		return nil, nil, fmt.Errorf("mda: %s expects source metamodel %s, got %s",
			t.Name, t.Source.Name, src.Metamodel().Name)
	}
	if err := src.Validate(); err != nil {
		return nil, nil, fmt.Errorf("mda: %s: invalid source model: %w", t.Name, err)
	}
	target := metamodel.NewModel(t.Target)
	trace := &Trace{Transformation: t.Name, bySource: make(map[string][]*metamodel.Element)}
	ctx := &Context{Source: src, Target: target, trace: trace}

	for _, rule := range t.Rules {
		ctx.curRule = rule.Name
		for _, e := range src.ElementsOf(rule.From) {
			if rule.When != nil && !rule.When(e) {
				continue
			}
			ctx.current = e
			if err := rule.To(ctx, e); err != nil {
				return nil, nil, fmt.Errorf("mda: %s, rule %s on %s: %w", t.Name, rule.Name, e.ID(), err)
			}
		}
	}
	for _, fn := range ctx.deferred {
		if err := fn(); err != nil {
			return nil, nil, fmt.Errorf("mda: %s (deferred): %w", t.Name, err)
		}
	}
	if err := target.Validate(); err != nil {
		return nil, nil, fmt.Errorf("mda: %s produced an invalid model: %w", t.Name, err)
	}
	return target, trace, nil
}

// Chain is a sequence of transformations applied end-to-end, e.g.
// CIM→PIM→PSM. Each stage's output feeds the next stage's input.
type Chain struct {
	Name   string
	Stages []*Transformation
}

// ChainResult carries every intermediate model and trace of a chain run.
type ChainResult struct {
	// Models holds the input model followed by each stage's output.
	Models []*metamodel.Model
	// Traces holds one trace per stage.
	Traces []*Trace
}

// Final returns the last model of the chain.
func (r *ChainResult) Final() *metamodel.Model {
	return r.Models[len(r.Models)-1]
}

// Run executes every stage in order.
func (c *Chain) Run(src *metamodel.Model) (*ChainResult, error) {
	res := &ChainResult{Models: []*metamodel.Model{src}}
	cur := src
	for _, stage := range c.Stages {
		next, trace, err := stage.Run(cur)
		if err != nil {
			return nil, fmt.Errorf("mda: chain %s: %w", c.Name, err)
		}
		res.Models = append(res.Models, next)
		res.Traces = append(res.Traces, trace)
		cur = next
	}
	return res, nil
}

// Lineage walks every stage's trace backwards from a final-model element
// to the chain's original source elements.
func (r *ChainResult) Lineage(final *metamodel.Element) []string {
	// Build reverse maps stage by stage.
	id := final.ID()
	lineage := []string{id}
	for i := len(r.Traces) - 1; i >= 0; i-- {
		trace := r.Traces[i]
		found := ""
		for _, l := range trace.Links {
			for _, tid := range l.Targets {
				if tid == id {
					found = l.Source
					break
				}
			}
			if found != "" {
				break
			}
		}
		if found == "" {
			break
		}
		lineage = append(lineage, found)
		id = found
	}
	// Reverse to source-first order.
	for i, j := 0, len(lineage)-1; i < j; i, j = i+1, j-1 {
		lineage[i], lineage[j] = lineage[j], lineage[i]
	}
	return lineage
}
