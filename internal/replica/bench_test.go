package replica

import (
	"testing"

	"github.com/odbis/odbis/internal/storage"
)

var benchSink *storage.Engine

// BenchmarkFrameApply is the replication floor: one single-insert commit
// frame decoded and applied to a follower engine. Catch-up speed — and
// therefore how quickly a re-bootstrapped replica returns to routing
// eligibility — is bounded by this figure.
func BenchmarkFrameApply(b *testing.B) {
	primary := storage.MustOpenMemory()
	defer primary.Close()
	if err := primary.CreateTable(testSchema("t")); err != nil {
		b.Fatal(err)
	}
	sub := primary.SubscribeWAL(b.N + 16)
	defer sub.Close()
	frames := make([][]byte, 0, b.N)
	for i := 0; i < b.N; i++ {
		err := primary.Update(func(tx *storage.Tx) error {
			_, err := tx.Insert("t", storage.Row{int64(i), "v"})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, (<-sub.Frames()).Payload)
	}
	follower := storage.MustOpenMemory()
	defer follower.Close()
	if err := follower.CreateTable(testSchema("t")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := follower.ApplyReplicated(frames[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterReplicaOff is the disabled-replication ceiling: the
// routing decision a read pays when no replicas are configured. It must
// stay in the low-nanosecond range — running without -replicas must not
// tax the read path at all.
func BenchmarkRouterReplicaOff(b *testing.B) {
	primary := storage.MustOpenMemory()
	defer primary.Close()
	set := New(primary, 0, Options{})
	defer set.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = set.PickFor(0)
	}
	if benchSink != nil {
		b.Fatal("empty set yielded an engine")
	}
}
