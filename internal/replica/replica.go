// Package replica implements WAL-shipped read replicas: in-process
// follower engines that bootstrap from the primary's state dump, apply
// shipped redo frames in commit order, and expose apply position, lag,
// and a per-replica circuit breaker so the read router (services) can
// serve read-authority statements from a healthy follower and fall back
// to the primary the instant one misbehaves.
//
// Failure model: any apply error, torn/corrupt frame, panic, or stream
// overflow (the replica fell so far behind that the primary dropped its
// subscription) trips the replica's breaker. A tripped replica serves
// nothing; after a probe interval it re-bootstraps from a fresh primary
// dump (half-open) and returns to healthy only when the new follower
// engine is live. The primary is never affected — shipping is
// non-blocking by construction (see storage/ship.go).
package replica

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/odbis/odbis/internal/fault"
	"github.com/odbis/odbis/internal/obs"
	"github.com/odbis/odbis/internal/storage"
)

// State is a replica's breaker state.
type State uint8

const (
	// StateBootstrapping: building a follower engine from a primary dump
	// (also the half-open probe state after a trip).
	StateBootstrapping State = iota
	// StateHealthy: following the stream; eligible for routed reads
	// subject to the lag bound.
	StateHealthy
	// StateTripped: the breaker is open after an apply failure; waiting
	// out the probe interval before re-bootstrapping.
	StateTripped
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateTripped:
		return "tripped"
	default:
		return "bootstrapping"
	}
}

// errStopped signals a deliberate shutdown out of the follow loop.
var errStopped = errors.New("replica: stopped")

// errOverflow reports that the primary dropped this replica's
// subscription because its stream buffer filled — the hard lag breach.
var errOverflow = errors.New("replica: stream overflow, replica too far behind")

// Replica is one follower engine plus its breaker and lag accounting.
type Replica struct {
	name    string
	primary *storage.Engine
	set     *Set

	mu sync.Mutex
	//odbis:guardedby mu
	eng *storage.Engine
	//odbis:guardedby mu
	state State
	//odbis:guardedby mu
	lastErr string
	//odbis:guardedby mu
	trips uint64

	applied        atomic.Uint64 // ship LSN of the last applied frame
	appliedBytes   atomic.Uint64 // payload bytes applied since subscribe
	appliedCommits atomic.Uint64 // commit LSN of the last applied commit frame
	frames         atomic.Uint64 // frames applied across all bootstraps

	mApplies   *obs.Counter
	mTrips     *obs.Counter
	gLagFrames *obs.Gauge
	gLagBytes  *obs.Gauge
}

// Status is the wire/admin view of one replica.
type Status struct {
	Name            string `json:"name"`
	State           string `json:"state"`
	AppliedLSN      uint64 `json:"applied_lsn"`
	PrimaryLSN      uint64 `json:"primary_lsn"`
	LagFrames       uint64 `json:"lag_frames"`
	LagBytes        uint64 `json:"lag_bytes"`
	CommitLSNBehind uint64 `json:"commit_lsn_behind"`
	FramesApplied   uint64 `json:"frames_applied"`
	Trips           uint64 `json:"trips"`
	LastError       string `json:"last_error,omitempty"`
}

// Options configure a replica set.
type Options struct {
	// MaxLagFrames is the routing staleness bound: a replica more than
	// this many frames behind the primary serves no routed reads (0
	// means reads route only when fully caught up).
	MaxLagFrames uint64
	// ProbeInterval is how long a tripped replica waits before its
	// half-open re-bootstrap probe (default 250ms).
	ProbeInterval time.Duration
	// StreamBuffer is the per-replica frame channel capacity; a replica
	// that falls this many frames behind is dropped by the primary and
	// must re-bootstrap (default 1024).
	StreamBuffer int
}

// Set is a group of replicas following one primary.
type Set struct {
	primary *storage.Engine
	opts    Options
	reps    []*Replica
	next    atomic.Uint32 // round-robin cursor for PickFor
	stopCh  chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// New starts n replicas following primary. Each replica bootstraps
// asynchronously; use Status (or poll CatchUp in tests) to observe
// progress. n ≤ 0 returns an empty set whose PickFor always routes to
// the primary.
func New(primary *storage.Engine, n int, opts Options) *Set {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 250 * time.Millisecond
	}
	if opts.StreamBuffer <= 0 {
		opts.StreamBuffer = 1024
	}
	s := &Set{primary: primary, opts: opts, stopCh: make(chan struct{})}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("replica-%d", i)
		r := &Replica{
			name:       name,
			primary:    primary,
			set:        s,
			mApplies:   obs.GetCounterL("odbis_replica_applies_total", "replica", name), //odbis:ignore obshandle -- label value is dynamic; handle cached per replica, resolved once at construction
			mTrips:     obs.GetCounterL("odbis_replica_trips_total", "replica", name),   //odbis:ignore obshandle -- label value is dynamic; handle cached per replica, resolved once at construction
			gLagFrames: obs.GetGaugeL("odbis_replica_lag_frames", "replica", name),      //odbis:ignore obshandle -- label value is dynamic; handle cached per replica, resolved once at construction
			gLagBytes:  obs.GetGaugeL("odbis_replica_lag_bytes", "replica", name),       //odbis:ignore obshandle -- label value is dynamic; handle cached per replica, resolved once at construction
		}
		s.reps = append(s.reps, r)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			r.run()
		}()
	}
	return s
}

// Close stops every replica loop and waits for them to exit. Idempotent.
func (s *Set) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.stopCh)
	s.wg.Wait()
}

// Len reports the number of configured replicas.
func (s *Set) Len() int { return len(s.reps) }

// MaxLag reports the routing staleness bound in frames.
func (s *Set) MaxLag() uint64 { return s.opts.MaxLagFrames }

// PrimaryLSN is the primary's current ship position — the pin a session
// takes after a write to preserve read-your-writes.
func (s *Set) PrimaryLSN() uint64 { return s.primary.ShippedLSN() } //odbis:ignore ctxtenant -- lock-free ship-position read; no tenant data, nothing to cancel

// PickFor returns a follower engine eligible to serve a read for a
// session pinned at pin (0 = no pin): the replica must be healthy, its
// applied LSN at or past the pin, and its lag within the staleness
// bound. Returns nil when no replica qualifies — the caller reads from
// the primary. Selection round-robins across eligible replicas.
func (s *Set) PickFor(pin uint64) *storage.Engine {
	n := len(s.reps)
	if n == 0 {
		return nil
	}
	primaryLSN := s.primary.ShippedLSN() //odbis:ignore ctxtenant -- lock-free ship-position read; no tenant data, nothing to cancel
	start := int(s.next.Add(1))
	for i := 0; i < n; i++ {
		r := s.reps[(start+i)%n]
		if eng := r.eligible(pin, primaryLSN, s.opts.MaxLagFrames); eng != nil {
			return eng
		}
	}
	return nil
}

// AllTripped reports whether every configured replica is tripped — the
// /readyz degraded condition. An empty set is never "all tripped".
func (s *Set) AllTripped() bool {
	if len(s.reps) == 0 {
		return false
	}
	for _, r := range s.reps {
		r.mu.Lock()
		tripped := r.state == StateTripped
		r.mu.Unlock()
		if !tripped {
			return false
		}
	}
	return true
}

// Status snapshots every replica, in configuration order, refreshing
// the lag gauges as a side effect (the admin snapshot and /metrics stay
// fresh even while a replica is stalled and not applying).
func (s *Set) Status() []Status {
	out := make([]Status, 0, len(s.reps))
	for _, r := range s.reps {
		out = append(out, r.status())
	}
	return out
}

// CatchUp blocks until every healthy-or-bootstrapping replica has
// applied up to the primary's current ship position, or the timeout
// expires. It reports whether full catch-up happened — a test and
// shutdown-drain helper, not a routing primitive.
func (s *Set) CatchUp(timeout time.Duration) bool {
	target := s.primary.ShippedLSN()
	deadline := time.Now().Add(timeout)
	for {
		done := true
		for _, r := range s.reps {
			r.mu.Lock()
			tripped := r.state == StateTripped
			r.mu.Unlock()
			if tripped {
				continue // a tripped replica will re-bootstrap past target anyway
			}
			if r.applied.Load() < target {
				done = false
			}
		}
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// eligible returns the follower engine when this replica may serve a
// read for the given pin under the lag bound, else nil.
func (r *Replica) eligible(pin, primaryLSN, maxLag uint64) *storage.Engine {
	r.mu.Lock()
	eng := r.eng
	healthy := r.state == StateHealthy
	r.mu.Unlock()
	if !healthy || eng == nil {
		return nil
	}
	applied := r.applied.Load()
	if applied < pin {
		return nil // session wrote past this replica: read-your-writes pins to primary
	}
	if primaryLSN-applied > maxLag {
		return nil // stale beyond the routing bound
	}
	return eng
}

func (r *Replica) status() Status {
	r.mu.Lock()
	st := Status{
		Name:      r.name,
		State:     r.state.String(),
		LastError: r.lastErr,
		Trips:     r.trips,
	}
	r.mu.Unlock()
	st.AppliedLSN = r.applied.Load()
	st.PrimaryLSN = r.primary.ShippedLSN() //odbis:ignore ctxtenant -- lock-free ship-position read; no tenant data, nothing to cancel
	st.FramesApplied = r.frames.Load()
	if st.PrimaryLSN > st.AppliedLSN {
		st.LagFrames = st.PrimaryLSN - st.AppliedLSN
	}
	if pb := r.primary.ShippedBytes(); pb > r.appliedBytes.Load() { //odbis:ignore ctxtenant -- lock-free ship-position read; no tenant data, nothing to cancel
		st.LagBytes = pb - r.appliedBytes.Load()
	}
	if pc := r.primary.ShippedCommitLSN(); pc > r.appliedCommits.Load() { //odbis:ignore ctxtenant -- lock-free ship-position read; no tenant data, nothing to cancel
		st.CommitLSNBehind = pc - r.appliedCommits.Load()
	}
	r.gLagFrames.Set(int64(st.LagFrames))
	r.gLagBytes.Set(int64(st.LagBytes))
	return st
}

// run is the replica's lifecycle loop: bootstrap → follow → trip →
// probe-wait → re-bootstrap, until the set closes.
func (r *Replica) run() {
	for {
		select {
		case <-r.set.stopCh:
			return
		default:
		}
		sub, eng, err := r.bootstrap()
		if err != nil {
			r.trip(err)
			if !r.probeWait() {
				return
			}
			continue
		}
		r.mu.Lock()
		r.eng = eng
		r.state = StateHealthy
		r.lastErr = ""
		r.mu.Unlock()
		err = r.follow(sub, eng)
		sub.Close()
		if errors.Is(err, errStopped) {
			return
		}
		r.trip(err)
		if !r.probeWait() {
			return
		}
	}
}

// bootstrap subscribes to the primary's frame stream and builds a fresh
// follower engine from a state dump. Subscribe happens first, so every
// commit is either in the dump or on the channel (idempotent apply
// resolves the overlap).
func (r *Replica) bootstrap() (*storage.WALSub, *storage.Engine, error) {
	r.mu.Lock()
	r.state = StateBootstrapping
	r.eng = nil
	r.mu.Unlock()
	sub := r.primary.SubscribeWAL(r.set.opts.StreamBuffer)
	var buf bytes.Buffer
	if err := r.primary.DumpState(&buf); err != nil {
		sub.Close()
		return nil, nil, err
	}
	eng, err := storage.OpenFromDump(buf.Bytes())
	if err != nil {
		sub.Close()
		return nil, nil, err
	}
	r.applied.Store(sub.StartLSN)
	r.appliedBytes.Store(sub.StartBytes)
	r.appliedCommits.Store(sub.StartCommitLSN)
	return sub, eng, nil
}

// follow applies shipped frames until the stream breaks, a fault fires,
// or the set closes. A panic anywhere in apply is contained here and
// trips the breaker instead of killing the process.
func (r *Replica) follow(sub *storage.WALSub, eng *storage.Engine) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("replica %s: apply panic: %v", r.name, p)
		}
	}()
	for {
		select {
		case <-r.set.stopCh:
			return errStopped
		case frame, ok := <-sub.Frames():
			if !ok {
				return errOverflow
			}
			if err := fault.Point(fault.ReplicaStream); err != nil {
				return err
			}
			// Stall is typically armed as ModeDelay: the sleep happens
			// here, lag accrues, and routing falls back to the primary
			// via the staleness bound rather than an error.
			if err := fault.Point(fault.ReplicaStall); err != nil {
				return err
			}
			if err := fault.Point(fault.ReplicaApply); err != nil {
				return err
			}
			if err := eng.ApplyReplicated(frame.Payload); err != nil {
				return err
			}
			r.applied.Store(frame.LSN)
			r.appliedBytes.Add(uint64(len(frame.Payload)))
			if storage.FrameIsCommit(frame.Payload) {
				r.appliedCommits.Store(frame.LSN)
			}
			r.frames.Add(1)
			r.mApplies.Inc()
		}
	}
}

// trip opens the breaker: the replica serves nothing until a probe
// re-bootstrap succeeds.
func (r *Replica) trip(err error) {
	r.mu.Lock()
	r.state = StateTripped
	r.eng = nil
	if err != nil {
		r.lastErr = err.Error()
	}
	r.trips++
	r.mu.Unlock()
	r.mTrips.Inc()
}

// probeWait sleeps out the half-open probe interval; false means the
// set closed while waiting.
func (r *Replica) probeWait() bool {
	t := time.NewTimer(r.set.opts.ProbeInterval)
	defer t.Stop()
	select {
	case <-r.set.stopCh:
		return false
	case <-t.C:
		return true
	}
}
