package replica

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/fault"
	"github.com/odbis/odbis/internal/storage"
)

// Crash matrix for the replica apply points: a child process runs a
// durable primary with one attached replica and ODBIS_FAULTS arming
// replica.apply (or replica.apply.mid) in crash mode, acking every
// primary-committed row to a fsynced ledger. The crash lands on the
// replica's apply goroutine mid-frame (for .mid: between the ops of one
// multi-op frame), killing the whole process. The parent then recovers
// the primary from disk, attaches a fresh replica fleet, waits for
// catch-up, and proves the acceptance property: every acknowledged
// commit is visible on the primary AND on every caught-up replica —
// acked-on-primary ⊆ visible-on-replica — and no replica serves rows
// the primary does not have.

const (
	replicaCrashDirEnv = "ODBIS_REPLICA_CRASH_DIR"
	replicaAcksFile    = "acks.txt"
	replicaCrashRows   = 12
)

// TestReplicaCrashChild is the re-exec target, not a test: it runs only
// under the harness env and is expected to die at the armed point.
func TestReplicaCrashChild(t *testing.T) {
	dir := os.Getenv(replicaCrashDirEnv)
	if dir == "" {
		t.Skip("replica-crash child (set " + replicaCrashDirEnv + " to run)")
	}
	if err := fault.FromEnv(); err != nil {
		t.Fatalf("child: %v", err)
	}
	e, err := storage.Open(storage.Options{Dir: dir, Sync: storage.SyncFull})
	if err != nil {
		t.Fatalf("child: open: %v", err)
	}
	if err := e.CreateTable(testSchema("ledger")); err != nil {
		t.Fatalf("child: create table: %v", err)
	}
	acks, err := os.OpenFile(filepath.Join(dir, replicaAcksFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("child: open acks: %v", err)
	}
	// A couple of commits land before the replica attaches (covered by
	// the bootstrap dump); the rest ship as live frames, each a two-op
	// commit so replica.apply.mid has a between-ops window to crash in.
	commit := func(i int) {
		err := e.Update(func(tx *storage.Tx) error {
			if _, err := tx.Insert("ledger", storage.Row{int64(2 * i), "a"}); err != nil {
				return err
			}
			_, err := tx.Insert("ledger", storage.Row{int64(2*i + 1), "b"})
			return err
		})
		if err != nil {
			t.Fatalf("child: commit %d: %v", i, err)
		}
		if _, err := fmt.Fprintf(acks, "%d\n", i); err != nil {
			t.Fatalf("child: ack %d: %v", i, err)
		}
		if err := acks.Sync(); err != nil {
			t.Fatalf("child: sync acks: %v", err)
		}
	}
	for i := 0; i < 2; i++ {
		commit(i)
	}
	set := New(e, 1, Options{MaxLagFrames: 1 << 20})
	for i := 2; i < replicaCrashRows; i++ {
		commit(i)
	}
	// Wait for the apply goroutine to chew through the stream; the armed
	// point kills the process somewhere in here.
	set.CatchUp(10 * time.Second)
	t.Fatal("child: survived the workload with a crash point armed")
}

func readReplicaAcks(t *testing.T, dir string) map[int64]bool {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, replicaAcksFile))
	if err != nil {
		t.Fatalf("read acks: %v", err)
	}
	defer f.Close()
	acked := map[int64]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		id, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			t.Fatalf("acks file corrupt: %q", sc.Text())
		}
		acked[id] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return acked
}

func scanIDs(t *testing.T, e *storage.Engine) map[int64]bool {
	t.Helper()
	ids := map[int64]bool{}
	if err := e.View(func(tx *storage.Tx) error {
		return tx.Scan("ledger", func(_ storage.RID, row storage.Row) bool {
			ids[row[0].(int64)] = true
			return true
		})
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return ids
}

func TestCrashRecoveryAtReplicaApplyPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process harness")
	}
	for _, tc := range []struct {
		point string
		after int
	}{
		// after skips early hits so the crash lands mid-stream with
		// applied frames on both sides of it.
		{fault.ReplicaApply, 3},
		{fault.ReplicaApplyMid, 3},
	} {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestReplicaCrashChild$")
			cmd.Env = append(os.Environ(),
				replicaCrashDirEnv+"="+dir,
				fmt.Sprintf("ODBIS_FAULTS=%s=crash:after=%d", tc.point, tc.after),
			)
			out, err := cmd.CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != fault.CrashExitCode {
				t.Fatalf("child exited %v, want exit code %d\noutput:\n%s", err, fault.CrashExitCode, out)
			}
			acked := readReplicaAcks(t, dir)
			if len(acked) == 0 {
				t.Fatalf("child crashed before acknowledging any commit\noutput:\n%s", out)
			}

			// Recover the primary: the crash on the replica goroutine
			// must not have cost a single acked commit.
			e, err := storage.Open(storage.Options{Dir: dir, Sync: storage.SyncFull})
			if err != nil {
				t.Fatalf("primary recovery: %v", err)
			}
			defer e.Close()
			primaryIDs := scanIDs(t, e)
			for id := range acked {
				if !primaryIDs[2*id] || !primaryIDs[2*id+1] {
					t.Errorf("acked commit %d missing rows on recovered primary", id)
				}
			}

			// A fresh fleet bootstraps from the recovered primary; after
			// catch-up every replica serves exactly the primary's rows:
			// acked-on-primary ⊆ visible-on-replica, nothing extra.
			set := New(e, 2, Options{MaxLagFrames: 1 << 20})
			defer set.Close()
			waitHealthy(t, set, 10*time.Second)
			if !set.CatchUp(10 * time.Second) {
				t.Fatal("replicas never caught up after recovery")
			}
			for i := 0; i < set.Len(); i++ {
				eng := set.PickFor(0)
				if eng == nil {
					t.Fatal("no eligible replica after catch-up")
				}
				repIDs := scanIDs(t, eng)
				for id := range acked {
					if !repIDs[2*id] || !repIDs[2*id+1] {
						t.Errorf("acked commit %d not visible on a caught-up replica", id)
					}
				}
				for id := range repIDs {
					if !primaryIDs[id] {
						t.Errorf("replica serves row %d the primary does not have", id)
					}
				}
			}
		})
	}
}
