package replica

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/fault"
	"github.com/odbis/odbis/internal/storage"
)

func testSchema(name string) *storage.Schema {
	return &storage.Schema{
		Name: name,
		Columns: []storage.Column{
			{Name: "id", Type: storage.TypeInt},
			{Name: "v", Type: storage.TypeString},
		},
		PrimaryKey: []string{"id"},
	}
}

func insertRows(t *testing.T, e *storage.Engine, table string, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		err := e.Update(func(tx *storage.Tx) error {
			_, err := tx.Insert(table, storage.Row{int64(i), "v"})
			return err
		})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
}

func countRows(t *testing.T, e *storage.Engine, table string) int {
	t.Helper()
	n := 0
	if err := e.View(func(tx *storage.Tx) error {
		var err error
		n, err = tx.Count(table)
		return err
	}); err != nil {
		t.Fatalf("count: %v", err)
	}
	return n
}

func waitHealthy(t *testing.T, s *Set, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		healthy := 0
		for _, st := range s.Status() {
			if st.State == "healthy" {
				healthy++
			}
		}
		if healthy == s.Len() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never became healthy: %+v", s.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReplicaBootstrapAndFollow(t *testing.T) {
	p := storage.MustOpenMemory()
	defer p.Close()
	if err := p.CreateTable(testSchema("acme_t")); err != nil {
		t.Fatal(err)
	}
	insertRows(t, p, "acme_t", 0, 10) // pre-bootstrap rows arrive via the dump

	s := New(p, 2, Options{MaxLagFrames: 100, ProbeInterval: 10 * time.Millisecond})
	defer s.Close()
	waitHealthy(t, s, 5*time.Second)

	insertRows(t, p, "acme_t", 10, 30) // post-bootstrap rows arrive via the stream
	if !s.CatchUp(5 * time.Second) {
		t.Fatalf("replicas never caught up: %+v", s.Status())
	}
	eng := s.PickFor(0)
	if eng == nil {
		t.Fatal("no eligible replica after catch-up")
	}
	if got := countRows(t, eng, "acme_t"); got != 30 {
		t.Fatalf("replica rows = %d, want 30", got)
	}
	// Deletes replicate too.
	if err := p.Update(func(tx *storage.Tx) error {
		return tx.Scan("acme_t", func(rid storage.RID, _ storage.Row) bool {
			tx.DeleteRID("acme_t", rid)
			return false // delete just the first
		})
	}); err != nil {
		t.Fatal(err)
	}
	if !s.CatchUp(5 * time.Second) {
		t.Fatalf("catch-up after delete: %+v", s.Status())
	}
	if got := countRows(t, eng, "acme_t"); got != 29 {
		t.Fatalf("replica rows after delete = %d, want 29", got)
	}
}

func TestReplicaDDLAndSequences(t *testing.T) {
	p := storage.MustOpenMemory()
	defer p.Close()
	s := New(p, 1, Options{MaxLagFrames: 100, ProbeInterval: 10 * time.Millisecond})
	defer s.Close()
	waitHealthy(t, s, 5*time.Second)

	if err := p.CreateTable(testSchema("acme_u")); err != nil {
		t.Fatal(err)
	}
	if err := p.CreateIndex(storage.IndexInfo{Name: "u_v", Table: "acme_u", Columns: []string{"v"}, Kind: storage.IndexHash}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.NextSequence("acme_seq"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.NextSequence("acme_seq"); err != nil {
		t.Fatal(err)
	}
	if !s.CatchUp(5 * time.Second) {
		t.Fatalf("catch-up: %+v", s.Status())
	}
	eng := s.PickFor(0)
	if eng == nil {
		t.Fatal("no eligible replica")
	}
	if !eng.HasTable("acme_u") {
		t.Error("replica missing replicated table")
	}
	ixs, err := eng.Indexes("acme_u")
	if err != nil || len(ixs) != 2 { // pkey + u_v
		t.Errorf("replica indexes = %v (%v), want pkey + u_v", ixs, err)
	}
	if got := eng.SequenceValue("acme_seq"); got != 2 {
		t.Errorf("replica sequence = %d, want 2", got)
	}
	// Drops replicate.
	if err := p.DropIndex("acme_u", "u_v"); err != nil {
		t.Fatal(err)
	}
	if err := p.DropTable("acme_u"); err != nil {
		t.Fatal(err)
	}
	if !s.CatchUp(5 * time.Second) {
		t.Fatalf("catch-up after drops: %+v", s.Status())
	}
	if eng.HasTable("acme_u") {
		t.Error("replica still has dropped table")
	}
}

func TestReplicaTripAndRebootstrap(t *testing.T) {
	defer fault.Reset()
	p := storage.MustOpenMemory()
	defer p.Close()
	if err := p.CreateTable(testSchema("acme_t")); err != nil {
		t.Fatal(err)
	}
	s := New(p, 1, Options{MaxLagFrames: 100, ProbeInterval: 5 * time.Millisecond})
	defer s.Close()
	waitHealthy(t, s, 5*time.Second)

	// One injected apply error must trip the breaker...
	if err := fault.Arm(fault.ReplicaApply, fault.Behavior{Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	insertRows(t, p, "acme_t", 0, 1)
	deadline := time.Now().Add(5 * time.Second)
	for s.Status()[0].Trips == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never tripped: %+v", s.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !strings.Contains(s.Status()[0].LastError, "injected") {
		t.Errorf("last error = %q, want injected", s.Status()[0].LastError)
	}
	// ...and the half-open probe re-bootstraps to healthy with full state.
	waitHealthy(t, s, 5*time.Second)
	if !s.CatchUp(5 * time.Second) {
		t.Fatalf("catch-up: %+v", s.Status())
	}
	eng := s.PickFor(0)
	if eng == nil {
		t.Fatal("no eligible replica after recovery")
	}
	if got := countRows(t, eng, "acme_t"); got != 1 {
		t.Fatalf("replica rows after re-bootstrap = %d, want 1", got)
	}
	if s.AllTripped() {
		t.Error("AllTripped after recovery")
	}
}

func TestReplicaPanicContained(t *testing.T) {
	defer fault.Reset()
	p := storage.MustOpenMemory()
	defer p.Close()
	if err := p.CreateTable(testSchema("acme_t")); err != nil {
		t.Fatal(err)
	}
	s := New(p, 1, Options{MaxLagFrames: 100, ProbeInterval: 5 * time.Millisecond})
	defer s.Close()
	waitHealthy(t, s, 5*time.Second)

	if err := fault.Arm(fault.ReplicaApply, fault.Behavior{Mode: fault.ModePanic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	insertRows(t, p, "acme_t", 0, 1)
	deadline := time.Now().Add(5 * time.Second)
	for s.Status()[0].Trips == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never tripped on panic: %+v", s.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !strings.Contains(s.Status()[0].LastError, "panic") {
		t.Errorf("last error = %q, want panic", s.Status()[0].LastError)
	}
	waitHealthy(t, s, 5*time.Second) // loop survived the panic and recovered
}

func TestReplicaStallLagBound(t *testing.T) {
	defer fault.Reset()
	p := storage.MustOpenMemory()
	defer p.Close()
	if err := p.CreateTable(testSchema("acme_t")); err != nil {
		t.Fatal(err)
	}
	s := New(p, 1, Options{MaxLagFrames: 2, ProbeInterval: 5 * time.Millisecond})
	defer s.Close()
	waitHealthy(t, s, 5*time.Second)
	if !s.CatchUp(5 * time.Second) {
		t.Fatal("initial catch-up")
	}

	// Stall the apply loop and push the primary far past the lag bound:
	// PickFor must refuse the replica while it is stale.
	if err := fault.Arm(fault.ReplicaStall, fault.Behavior{Mode: fault.ModeDelay, Delay: 200 * time.Millisecond, Count: 1}); err != nil {
		t.Fatal(err)
	}
	insertRows(t, p, "acme_t", 0, 10)
	if eng := s.PickFor(0); eng != nil {
		t.Error("stale replica served a routed read past the lag bound")
	}
	if !s.CatchUp(5 * time.Second) {
		t.Fatalf("catch-up after stall: %+v", s.Status())
	}
	if eng := s.PickFor(0); eng == nil {
		t.Error("caught-up replica refused a routed read")
	}
}

func TestReadYourWritesPin(t *testing.T) {
	p := storage.MustOpenMemory()
	defer p.Close()
	if err := p.CreateTable(testSchema("acme_t")); err != nil {
		t.Fatal(err)
	}
	s := New(p, 1, Options{MaxLagFrames: 1 << 30, ProbeInterval: 5 * time.Millisecond})
	defer s.Close()
	waitHealthy(t, s, 5*time.Second)
	if !s.CatchUp(5 * time.Second) {
		t.Fatal("initial catch-up")
	}
	// A pin past the replica's applied LSN must exclude it even though
	// the giant lag bound would admit it.
	pin := s.PrimaryLSN() + 1
	if eng := s.PickFor(pin); eng != nil {
		t.Error("replica served a read for a session pinned past its applied LSN")
	}
	if eng := s.PickFor(s.PrimaryLSN()); eng == nil {
		t.Error("caught-up replica refused an unpinned-equivalent read")
	}
}

func TestStreamOverflowRebootstraps(t *testing.T) {
	p := storage.MustOpenMemory()
	defer p.Close()
	if err := p.CreateTable(testSchema("acme_t")); err != nil {
		t.Fatal(err)
	}
	s := New(p, 1, Options{MaxLagFrames: 1 << 30, ProbeInterval: 5 * time.Millisecond, StreamBuffer: 4})
	defer s.Close()
	waitHealthy(t, s, 5*time.Second)

	// Stall the loop long enough for the tiny buffer to overflow: the
	// primary drops the subscription, the replica trips and re-bootstraps.
	if err := fault.Arm(fault.ReplicaStall, fault.Behavior{Mode: fault.ModeDelay, Delay: 100 * time.Millisecond, Count: 1}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	insertRows(t, p, "acme_t", 0, 20)
	deadline := time.Now().Add(10 * time.Second)
	for s.Status()[0].Trips == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("overflowed replica never tripped: %+v", s.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitHealthy(t, s, 10*time.Second)
	if !s.CatchUp(10 * time.Second) {
		t.Fatalf("catch-up after overflow: %+v", s.Status())
	}
	eng := s.PickFor(0)
	if eng == nil {
		t.Fatal("no replica after overflow recovery")
	}
	if got := countRows(t, eng, "acme_t"); got != 20 {
		t.Fatalf("replica rows after overflow re-bootstrap = %d, want 20", got)
	}
}

func TestBadFrameTripsBreaker(t *testing.T) {
	// Direct storage-level checks of the decode-before-apply guarantee
	// live in storage; here: a corrupt payload through the replica loop
	// trips the breaker (simulated via ApplyReplicated's contract).
	e := storage.MustOpenMemory()
	defer e.Close()
	if err := e.ApplyReplicated([]byte{0xFF, 0x00}); !errors.Is(err, storage.ErrBadFrame) {
		t.Errorf("corrupt frame error = %v, want ErrBadFrame", err)
	}
}
