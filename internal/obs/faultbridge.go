package obs

import (
	"context"

	"github.com/odbis/odbis/internal/fault"
)

// obs is the one layer allowed to import fault (both sit at the bottom
// of the DAG). Registering the trip observer at init means every fired
// injection point shows up as odbis_fault_trips_total{point="..."} and,
// when the trip happened on a tenant-stamped request, in that tenant's
// fault_trips telemetry.
func init() {
	fault.SetObserver(func(ctx context.Context, name string) {
		if disabled.Load() {
			return
		}
		GetCounterL("odbis_fault_trips_total", "point", name).Inc()
		if ctx != nil {
			AddTenant(ctx, TenantFaultTrips, 1)
		}
	})
}
