package obs

import (
	"context"
	"sort"
	"strings"
)

// obs owns the tenant-identity context key so every layer (including
// ones below internal/tenant in the DAG, like storage and bus) can
// attribute work to the requesting tenant. internal/tenant re-exports
// NewContext/FromContext as thin delegates, so existing call sites keep
// compiling.

type tenantCtxKey struct{}

// WithTenant stamps a tenant identity onto the context.
func WithTenant(ctx context.Context, tenantID string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenantID)
}

// TenantFromContext extracts the tenant identity, if any.
func TenantFromContext(ctx context.Context) (string, bool) {
	if ctx == nil {
		return "", false
	}
	id, ok := ctx.Value(tenantCtxKey{}).(string)
	return id, ok && id != ""
}

// Per-tenant telemetry metric names. Each becomes a counter
// `odbis_tenant_<name>_total{tenant="id"}`; the short names double as
// the usage-row metric keys the billing service persists, so the
// tenant package's Metric* constants alias these.
const (
	TenantRequests     = "requests"
	TenantAPICalls     = "api_calls"
	TenantQueries      = "queries"
	TenantRowsScanned  = "rows_scanned"
	TenantRowsLoaded   = "rows_loaded"
	TenantBytesWritten = "bytes_written"
	TenantQueueWaitNs  = "queue_wait_ns"
	TenantRetries      = "retries"
	TenantDeadLetters  = "dead_letters"
	TenantFaultTrips   = "fault_trips"
)

const tenantMetricPrefix = "odbis_tenant_"

// AddTenant bumps a per-tenant counter for the context's tenant. A nil
// context or one without a tenant identity is a no-op, so layers can
// attribute unconditionally.
func AddTenant(ctx context.Context, metric string, n int64) {
	if disabled.Load() {
		return
	}
	id, ok := TenantFromContext(ctx)
	if !ok {
		return
	}
	AddTenantID(id, metric, n)
}

// AddTenantID bumps a per-tenant counter for an explicit tenant id —
// for paths where the identity is known out of band (bus dead-letter
// headers, scheduler jobs).
func AddTenantID(id, metric string, n int64) {
	if disabled.Load() || id == "" {
		return
	}
	GetCounterL(tenantMetricPrefix+metric+"_total", "tenant", id).Add(n)
}

// TenantTotal reads one tenant's counter for a metric.
func TenantTotal(id, metric string) int64 {
	return GetCounterL(tenantMetricPrefix+metric+"_total", "tenant", id).Value()
}

// TenantTotals returns every non-zero per-tenant metric for a tenant,
// keyed by short metric name ("queries", "rows_scanned", ...), sorted
// iteration-stable via the returned key slice being a fresh map.
func TenantTotals(id string) map[string]int64 {
	std.mu.RLock()
	type cv struct {
		metric string
		c      *Counter
	}
	var found []cv
	for k, c := range std.counters {
		if k.labelK != "tenant" || k.labelV != id {
			continue
		}
		name := strings.TrimPrefix(k.name, tenantMetricPrefix)
		if name == k.name {
			continue
		}
		name = strings.TrimSuffix(name, "_total")
		found = append(found, cv{metric: name, c: c})
	}
	std.mu.RUnlock()
	out := make(map[string]int64, len(found))
	for _, f := range found {
		if v := f.c.Value(); v != 0 {
			out[f.metric] = v
		}
	}
	return out
}

// TenantIDs lists every tenant that has at least one per-tenant
// counter registered, sorted.
func TenantIDs() []string {
	seen := map[string]bool{}
	std.mu.RLock()
	for k := range std.counters {
		if k.labelK == "tenant" && strings.HasPrefix(k.name, tenantMetricPrefix) {
			seen[k.labelV] = true
		}
	}
	std.mu.RUnlock()
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
