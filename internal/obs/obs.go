// Package obs is the platform's observability substrate: a metrics
// registry (counters, gauges, fixed-bucket histograms), request tracing
// (spans carried on the request context), and per-tenant telemetry —
// the runtime visibility layer the paper's on-demand/pay-as-you-go
// model requires (§2: metering and billing per tenant) and the
// ROADMAP's perf work needs to measure its own progress.
//
// The package follows the same cost discipline as internal/fault: the
// disabled path of every metric update is a single atomic load and a
// predictable branch, so instrumentation stays compiled into production
// builds. The enabled path is a striped atomic add (shards spread
// concurrent writers across cache lines), still in the ~10 ns range.
//
// Like fault, obs imports nothing from the platform above it (only
// fault itself, to observe point trips), so every layer down to storage
// may depend on it. The layercheck analyzer enforces that obs never
// imports back up the stack.
package obs

import "sync/atomic"

// disabled gates every metric update and trace start. The zero value
// means enabled: observability is on by default and SetEnabled(false)
// turns the whole subsystem into near-free no-ops.
var disabled atomic.Bool

// SetEnabled turns metric updates and trace collection on or off.
// While disabled, every update is one atomic load (see
// BenchmarkCounterAddDisabled) and StartTrace returns a nil span.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether the subsystem is collecting.
func Enabled() bool { return !disabled.Load() }
