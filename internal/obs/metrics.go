package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// numShards stripes counter updates across cache lines. Power of two so
// the shard pick is a mask, sized for the handful of cores CI and small
// deployments actually have — beyond ~16 stripes the summation cost on
// the read path buys nothing.
const numShards = 16

// shard is one counter stripe, padded to a 64-byte cache line so
// neighbouring stripes never false-share.
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// shardIndex picks a stripe for the calling goroutine. Goroutine stacks
// live in distinct allocations, so the address of a stack byte —
// coarsened to 1 KiB so every frame of one goroutine tends to map to
// the same stripe — spreads concurrent writers across shards without
// runtime support. The unsafe use is pure address arithmetic; the
// pointer never escapes or outlives the call.
func shardIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (numShards - 1)
}

// Counter is a monotonically increasing metric backed by striped
// atomics. The zero value is NOT usable; obtain counters from
// GetCounter/GetCounterL so exposition can find them.
type Counter struct {
	name   string
	labelK string
	labelV string
	shards [numShards]shard
}

// Add increments the counter by n. While the subsystem is disabled this
// is a single atomic load.
func (c *Counter) Add(n int64) {
	if disabled.Load() {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a set-or-adjust metric (in-flight requests, queue depths,
// the snapshot epoch). A single atomic: gauges are set, not hammered.
type Gauge struct {
	name   string
	labelK string
	labelV string
	v      atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if disabled.Load() {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if disabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// DefDurationBuckets are the default histogram bounds for durations in
// seconds: 1µs to 10s, a decade per bucket — wide enough for a WAL
// append and an ETL job on the same scale.
var DefDurationBuckets = []float64{
	0.000001, 0.00001, 0.0001, 0.001, 0.01, 0.1, 1, 10,
}

// Histogram is a fixed-bucket histogram following Prometheus
// conventions: cumulative buckets on exposition, observations in
// seconds for durations. Updates are atomic per bucket; the sum is a
// CAS loop over float64 bits.
type Histogram struct {
	name   string
	labelK string
	labelV string
	bounds []float64 // ascending upper bounds; an implicit +Inf follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if disabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// metricKey identifies one metric instance: a name plus at most one
// label pair (per-tenant, per-channel, per-point, per-stage — the
// platform never needs more than one dimension).
type metricKey struct {
	name   string
	labelK string
	labelV string
}

// Registry holds named metrics. The package-level GetCounter family
// operates on the default registry; separate registries exist only for
// tests.
type Registry struct {
	mu       sync.RWMutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*Histogram),
	}
}

// std is the process-wide default registry backing the package-level
// accessors and the /metrics exposition.
var std = NewRegistry()

// Counter returns the named counter, creating it on first use. Hot
// paths should call this once at package init and cache the pointer;
// the lookup takes the registry read lock.
func (r *Registry) Counter(name string) *Counter { return r.CounterL(name, "", "") }

// CounterL is Counter with one label pair.
func (r *Registry) CounterL(name, labelKey, labelVal string) *Counter {
	k := metricKey{name, labelKey, labelVal}
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[k]; c != nil {
		return c
	}
	c = &Counter{name: name, labelK: labelKey, labelV: labelVal}
	r.counters[k] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeL(name, "", "") }

// GaugeL is Gauge with one label pair.
func (r *Registry) GaugeL(name, labelKey, labelVal string) *Gauge {
	k := metricKey{name, labelKey, labelVal}
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[k]; g != nil {
		return g
	}
	g = &Gauge{name: name, labelK: labelKey, labelV: labelVal}
	r.gauges[k] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds mean DefDurationBuckets).
// Bounds are fixed at creation; later callers get the existing metric.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return r.HistogramL(name, "", "", bounds)
}

// HistogramL is Histogram with one label pair.
func (r *Registry) HistogramL(name, labelKey, labelVal string, bounds []float64) *Histogram {
	k := metricKey{name, labelKey, labelVal}
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[k]; h != nil {
		return h
	}
	if bounds == nil {
		bounds = DefDurationBuckets
	}
	h = &Histogram{
		name:   name,
		labelK: labelKey,
		labelV: labelVal,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[k] = h
	return h
}

// GetCounter returns the named counter from the default registry.
func GetCounter(name string) *Counter { return std.Counter(name) }

// GetCounterL returns a labelled counter from the default registry.
func GetCounterL(name, labelKey, labelVal string) *Counter {
	return std.CounterL(name, labelKey, labelVal)
}

// GetGauge returns the named gauge from the default registry.
func GetGauge(name string) *Gauge { return std.Gauge(name) }

// GetGaugeL returns a labelled gauge from the default registry.
func GetGaugeL(name, labelKey, labelVal string) *Gauge {
	return std.GaugeL(name, labelKey, labelVal)
}

// GetHistogram returns the named histogram from the default registry
// (nil bounds mean DefDurationBuckets).
func GetHistogram(name string, bounds []float64) *Histogram {
	return std.Histogram(name, bounds)
}

// GetHistogramL returns a labelled histogram from the default registry.
func GetHistogramL(name, labelKey, labelVal string, bounds []float64) *Histogram {
	return std.HistogramL(name, labelKey, labelVal, bounds)
}

// Reset zeroes every metric in the default registry, empties the trace
// ring, and re-enables collection. Tests that assert on counter values
// should Reset first: the default registry is process-global, so values
// accumulate across tests and platform instances. Metrics are zeroed in
// place (not dropped), so the *Counter pointers instrumented packages
// cached at init keep feeding the same exposition rows afterwards.
func Reset() {
	std.mu.Lock()
	for _, c := range std.counters {
		for i := range c.shards {
			c.shards[i].v.Store(0)
		}
	}
	for _, g := range std.gauges {
		g.v.Store(0)
	}
	for _, h := range std.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
	std.mu.Unlock()
	resetTraces()
	disabled.Store(false)
}
