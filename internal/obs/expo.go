package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// key renders the exposition identity of a metric: `name` or
// `name{label="value"}`.
func (k metricKey) String() string {
	if k.labelK == "" {
		return k.name
	}
	return k.name + `{` + k.labelK + `="` + escapeLabel(k.labelV) + `"}`
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// BucketCount is one cumulative histogram bucket in a snapshot. The
// bound is rendered as a string ("0.001", "+Inf") because the last
// bucket's +Inf has no JSON number representation.
type BucketCount struct {
	UpperBound string `json:"le"`
	Count      int64  `json:"count"`
}

// HistogramSnapshot is one histogram's state in a snapshot.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// MetricsSnapshot is a point-in-time copy of every registered metric,
// keyed by exposition identity — the JSON body of /api/admin/metrics.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the default registry's state.
func Snapshot() MetricsSnapshot { return std.Snapshot() }

// Snapshot copies the registry's state. The maps are freshly built, so
// callers may keep or mutate them freely.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.mu.RLock()
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[metricKey]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.RUnlock()
	for k, c := range counters {
		snap.Counters[k.String()] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k.String()] = g.Value()
	}
	for k, h := range hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: le, Count: cum})
		}
		snap.Histograms[k.String()] = hs
	}
	return snap
}

// WritePrometheus renders the default registry in the Prometheus text
// exposition format (version 0.0.4), metrics sorted by name then label.
func WritePrometheus(w io.Writer) error { return std.WritePrometheus(w) }

// WritePrometheus renders the registry in the Prometheus text format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counterKeys := make([]metricKey, 0, len(r.counters))
	for k := range r.counters {
		counterKeys = append(counterKeys, k)
	}
	gaugeKeys := make([]metricKey, 0, len(r.gauges))
	for k := range r.gauges {
		gaugeKeys = append(gaugeKeys, k)
	}
	histKeys := make([]metricKey, 0, len(r.hists))
	for k := range r.hists {
		histKeys = append(histKeys, k)
	}
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[metricKey]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.RUnlock()

	sortKeys := func(keys []metricKey) {
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].name != keys[j].name {
				return keys[i].name < keys[j].name
			}
			return keys[i].labelV < keys[j].labelV
		})
	}
	sortKeys(counterKeys)
	sortKeys(gaugeKeys)
	sortKeys(histKeys)

	var sb strings.Builder
	lastType := ""
	writeType := func(name, typ string) {
		if name != lastType {
			fmt.Fprintf(&sb, "# TYPE %s %s\n", name, typ)
			lastType = name
		}
	}
	for _, k := range counterKeys {
		writeType(k.name, "counter")
		fmt.Fprintf(&sb, "%s %d\n", k.String(), counters[k].Value())
	}
	for _, k := range gaugeKeys {
		writeType(k.name, "gauge")
		fmt.Fprintf(&sb, "%s %d\n", k.String(), gauges[k].Value())
	}
	for _, k := range histKeys {
		writeType(k.name, "histogram")
		h := hists[k]
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			fmt.Fprintf(&sb, "%s %d\n", bucketKey(k, le), cum)
		}
		fmt.Fprintf(&sb, "%s %s\n", suffixKey(k, "_sum"),
			strconv.FormatFloat(h.Sum(), 'g', -1, 64))
		fmt.Fprintf(&sb, "%s %d\n", suffixKey(k, "_count"), h.Count())
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// bucketKey renders `name_bucket{...,le="bound"}` with any metric label
// preserved.
func bucketKey(k metricKey, le string) string {
	if k.labelK == "" {
		return k.name + `_bucket{le="` + le + `"}`
	}
	return k.name + `_bucket{` + k.labelK + `="` + escapeLabel(k.labelV) + `",le="` + le + `"}`
}

// suffixKey renders `name_sum`/`name_count` with any metric label
// preserved.
func suffixKey(k metricKey, suffix string) string {
	if k.labelK == "" {
		return k.name + suffix
	}
	return k.name + suffix + `{` + k.labelK + `="` + escapeLabel(k.labelV) + `"}`
}
