package obs

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span inside a trace. Times are offsets in
// nanoseconds from the trace start so records stay compact and
// timezone-free.
type SpanRecord struct {
	Name       string `json:"name"`
	Parent     int    `json:"parent"` // index of the parent span; -1 for the root
	StartNs    int64  `json:"start_ns"`
	DurationNs int64  `json:"duration_ns"`
}

// TraceRecord is one request's completed trace as stored in the ring
// and served by /api/admin/traces.
type TraceRecord struct {
	Start      time.Time    `json:"start"`
	Tenant     string       `json:"tenant,omitempty"`
	DurationNs int64        `json:"duration_ns"`
	Spans      []SpanRecord `json:"spans"`
}

// trace is the live, mutable record a request carries through the
// layers. Span starts and ends append under mu; the root span's End
// finalizes the record into the ring.
type trace struct {
	mu    sync.Mutex
	rec   TraceRecord
	start time.Time
}

// Span is a handle to one live span. A nil *Span is valid and every
// method no-ops on it, so instrumentation never branches on whether
// tracing is active.
type Span struct {
	tr    *trace
	idx   int
	start time.Time
}

// spanKey carries the active trace and the current span index through
// the context.
type spanKey struct{}

type spanCtx struct {
	tr  *trace
	idx int // index of the span currently open at this ctx depth
}

// StartTrace opens a root span and attaches the trace to the returned
// context. The server calls this once per request; deeper layers use
// StartSpan. When the subsystem is disabled it returns the context
// unchanged and a nil span.
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if disabled.Load() {
		return ctx, nil
	}
	now := time.Now()
	tr := &trace{start: now}
	tr.rec.Start = now
	tr.rec.Spans = append(tr.rec.Spans, SpanRecord{Name: name, Parent: -1})
	sp := &Span{tr: tr, idx: 0, start: now}
	return context.WithValue(ctx, spanKey{}, spanCtx{tr: tr, idx: 0}), sp
}

// StartSpan opens a child span under whatever span the context carries.
// Without an active trace (no StartTrace upstream, or obs disabled) it
// returns the context unchanged and a nil span, so library code can
// instrument unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil || disabled.Load() {
		return ctx, nil
	}
	sc, ok := ctx.Value(spanKey{}).(spanCtx)
	if !ok {
		return ctx, nil
	}
	now := time.Now()
	tr := sc.tr
	tr.mu.Lock()
	idx := len(tr.rec.Spans)
	tr.rec.Spans = append(tr.rec.Spans, SpanRecord{
		Name:    name,
		Parent:  sc.idx,
		StartNs: now.Sub(tr.start).Nanoseconds(),
	})
	tr.mu.Unlock()
	sp := &Span{tr: tr, idx: idx, start: now}
	return context.WithValue(ctx, spanKey{}, spanCtx{tr: tr, idx: idx}), sp
}

// SetTraceTenant stamps the tenant onto the context's trace once the
// server has authenticated the request (admission and auth run before
// the tenant is known).
func SetTraceTenant(ctx context.Context, tenantID string) {
	if ctx == nil {
		return
	}
	sc, ok := ctx.Value(spanKey{}).(spanCtx)
	if !ok {
		return
	}
	sc.tr.mu.Lock()
	sc.tr.rec.Tenant = tenantID
	sc.tr.mu.Unlock()
}

// End closes the span. Ending the root span finalizes the trace: the
// record is pushed into the ring and checked against the slow-request
// threshold. Safe on a nil receiver and idempotent enough for deferred
// use.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start).Nanoseconds()
	tr := s.tr
	tr.mu.Lock()
	tr.rec.Spans[s.idx].DurationNs = d
	if s.idx != 0 {
		tr.mu.Unlock()
		return
	}
	tr.rec.DurationNs = d
	// Deep-copy the record out before releasing the trace lock; the ring
	// must never hold slices a still-live trace could append to, and we
	// never hold tr.mu and ring.mu together.
	rec := tr.rec
	rec.Spans = append([]SpanRecord(nil), tr.rec.Spans...)
	tr.mu.Unlock()
	pushTrace(rec)
	if thr := slowNs.Load(); thr > 0 && d >= thr {
		slowCount().Inc()
		log.Printf("obs: slow request: %s took %s (threshold %s, tenant %q, %d spans)",
			rec.Spans[0].Name, time.Duration(d), time.Duration(thr), rec.Tenant, len(rec.Spans))
	}
}

// traceRingSize is the default bound on the in-memory trace history. 128
// recent requests is enough to inspect a slow burst without holding a
// whole load test; SetTraceRingSize tunes it within [minTraceRingSize,
// maxTraceRingSize].
const (
	traceRingSize    = 128
	minTraceRingSize = 16
	maxTraceRingSize = 65536
)

var (
	traceMu   sync.Mutex
	traceRing = make([]TraceRecord, traceRingSize)
	traceNext int // next write slot
	traceLen  int

	// slowNs is the slow-request threshold in nanoseconds; zero disables
	// the slow log.
	slowNs atomic.Int64

	// slowCounter is lazily fetched so package init order between
	// metrics.go and trace.go never matters.
	slowOnce    sync.Once
	slowCounter *Counter
)

func slowCount() *Counter {
	slowOnce.Do(func() { slowCounter = GetCounter("odbis_slow_requests_total") })
	return slowCounter
}

// SetSlowThreshold sets the duration above which completed root spans
// are logged and counted. Zero or negative disables the slow log.
func SetSlowThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	slowNs.Store(d.Nanoseconds())
}

// SetTraceRingSize resizes the in-memory trace history (default 128).
// Resizing discards buffered traces — the ring is a diagnostic buffer,
// not durable storage. Out-of-range sizes are rejected rather than
// clamped so a misconfigured limit fails loudly at boot.
func SetTraceRingSize(n int) error {
	if n < minTraceRingSize || n > maxTraceRingSize {
		return fmt.Errorf("obs: trace ring size %d out of range [%d, %d]",
			n, minTraceRingSize, maxTraceRingSize)
	}
	traceMu.Lock()
	traceRing = make([]TraceRecord, n)
	traceNext, traceLen = 0, 0
	traceMu.Unlock()
	return nil
}

func pushTrace(rec TraceRecord) {
	traceMu.Lock()
	traceRing[traceNext] = rec
	traceNext = (traceNext + 1) % len(traceRing)
	if traceLen < len(traceRing) {
		traceLen++
	}
	traceMu.Unlock()
}

// Traces returns up to n recent traces, newest first. Records are deep
// copies; callers may keep them.
func Traces(n int) []TraceRecord {
	traceMu.Lock()
	size := len(traceRing)
	if n <= 0 || n > size {
		n = size
	}
	if n > traceLen {
		n = traceLen
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (traceNext - 1 - i + size) % size
		rec := traceRing[idx]
		rec.Spans = append([]SpanRecord(nil), rec.Spans...)
		out = append(out, rec)
	}
	traceMu.Unlock()
	return out
}

// resetTraces empties the ring (Reset calls it alongside metric
// zeroing).
func resetTraces() {
	traceMu.Lock()
	for i := range traceRing {
		traceRing[i] = TraceRecord{}
	}
	traceNext = 0
	traceLen = 0
	traceMu.Unlock()
}
