package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/fault"
)

func TestCounterAddAndValue(t *testing.T) {
	Reset()
	c := GetCounter("test_counter_total")
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	c.Add(5)
	if got := c.Value(); got != 105 {
		t.Fatalf("Value = %d, want 105", got)
	}
	if GetCounter("test_counter_total") != c {
		t.Fatal("GetCounter did not return the same instance")
	}
}

func TestCounterConcurrent(t *testing.T) {
	Reset()
	c := GetCounter("test_concurrent_total")
	var wg sync.WaitGroup
	const goroutines, per = 8, 10000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Value = %d, want %d", got, goroutines*per)
	}
}

func TestLabelledCountersAreDistinct(t *testing.T) {
	Reset()
	a := GetCounterL("test_labelled_total", "tenant", "acme")
	b := GetCounterL("test_labelled_total", "tenant", "globex")
	a.Add(3)
	b.Add(7)
	if a.Value() != 3 || b.Value() != 7 {
		t.Fatalf("labelled counters shared state: a=%d b=%d", a.Value(), b.Value())
	}
}

func TestGauge(t *testing.T) {
	Reset()
	g := GetGauge("test_gauge")
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("Value = %d, want 40", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	Reset()
	h := GetHistogram("test_hist_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got < 5.5 || got > 5.6 {
		t.Fatalf("Sum = %v, want ~5.555", got)
	}
	snap := Snapshot().Histograms["test_hist_seconds"]
	if len(snap.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4 (3 bounds + +Inf)", len(snap.Buckets))
	}
	// Cumulative: 1, 2, 3, 4.
	for i, want := range []int64{1, 2, 3, 4} {
		if snap.Buckets[i].Count != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, snap.Buckets[i].Count, want)
		}
	}
}

func TestDisabledCollectsNothing(t *testing.T) {
	Reset()
	SetEnabled(false)
	defer Reset()
	c := GetCounter("test_disabled_total")
	c.Add(10)
	GetGauge("test_disabled_gauge").Set(5)
	GetHistogram("test_disabled_seconds", nil).Observe(1)
	ctx, sp := StartTrace(context.Background(), "req")
	if sp != nil {
		t.Fatal("StartTrace should return nil span while disabled")
	}
	if _, sp := StartSpan(ctx, "child"); sp != nil {
		t.Fatal("StartSpan should return nil span while disabled")
	}
	if c.Value() != 0 {
		t.Fatalf("counter collected while disabled: %d", c.Value())
	}
	if Snapshot().Gauges["test_disabled_gauge"] != 0 {
		t.Fatal("gauge collected while disabled")
	}
}

func TestResetPreservesMetricIdentity(t *testing.T) {
	Reset()
	c := GetCounter("test_reset_total")
	c.Add(9)
	Reset()
	if c.Value() != 0 {
		t.Fatalf("Reset did not zero counter: %d", c.Value())
	}
	c.Inc()
	// The cached pointer must still feed exposition after Reset.
	if got := Snapshot().Counters["test_reset_total"]; got != 1 {
		t.Fatalf("cached pointer detached from registry after Reset: snapshot=%d", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	Reset()
	GetCounter("odbis_expo_a_total").Add(3)
	GetCounterL("odbis_expo_b_total", "channel", "ev\"x").Inc()
	GetGauge("odbis_expo_depth").Set(7)
	GetHistogram("odbis_expo_seconds", []float64{0.1}).Observe(0.05)
	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE odbis_expo_a_total counter",
		"odbis_expo_a_total 3",
		`odbis_expo_b_total{channel="ev\"x"} 1`,
		"# TYPE odbis_expo_depth gauge",
		"odbis_expo_depth 7",
		"# TYPE odbis_expo_seconds histogram",
		`odbis_expo_seconds_bucket{le="0.1"} 1`,
		`odbis_expo_seconds_bucket{le="+Inf"} 1`,
		"odbis_expo_seconds_sum 0.05",
		"odbis_expo_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTraceSpans(t *testing.T) {
	Reset()
	ctx, root := StartTrace(context.Background(), "GET /api/query")
	if root == nil {
		t.Fatal("StartTrace returned nil span while enabled")
	}
	SetTraceTenant(ctx, "acme")
	ctx2, svc := StartSpan(ctx, "services.query")
	ctx3, sqlSpan := StartSpan(ctx2, "sql.exec")
	sqlSpan.End()
	_, stor := StartSpan(ctx3, "storage.update")
	stor.End()
	svc.End()
	root.End()

	traces := Traces(1)
	if len(traces) != 1 {
		t.Fatalf("Traces = %d records, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Tenant != "acme" {
		t.Fatalf("Tenant = %q, want acme", tr.Tenant)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(tr.Spans))
	}
	wantParents := map[string]int{
		"GET /api/query": -1,
		"services.query": 0,
		"sql.exec":       1,
		"storage.update": 2, // child of sql.exec via its derived ctx
	}
	for i, sp := range tr.Spans {
		if want, ok := wantParents[sp.Name]; !ok || sp.Parent != want {
			t.Fatalf("span[%d] %s parent = %d, want %d", i, sp.Name, sp.Parent, want)
		}
		if sp.DurationNs < 0 {
			t.Fatalf("span %s has negative duration", sp.Name)
		}
	}
	if tr.DurationNs <= 0 {
		t.Fatal("root duration not recorded")
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	Reset()
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("StartSpan without a trace should return a nil span")
	}
	sp.End() // must not panic
	if ctx == nil {
		t.Fatal("ctx must pass through")
	}
}

func TestTraceRingBoundedNewestFirst(t *testing.T) {
	Reset()
	for i := 0; i < traceRingSize+10; i++ {
		name := "req-even"
		if i%2 == 1 {
			name = "req-odd"
		}
		_, sp := StartTrace(context.Background(), name)
		sp.End()
	}
	traces := Traces(0)
	if len(traces) != traceRingSize {
		t.Fatalf("ring holds %d, want %d", len(traces), traceRingSize)
	}
	// Newest first: the last trace started (index 137, odd) comes first.
	if traces[0].Spans[0].Name != "req-odd" {
		t.Fatalf("newest trace = %q, want req-odd", traces[0].Spans[0].Name)
	}
}

func TestSlowRequestThreshold(t *testing.T) {
	Reset()
	SetSlowThreshold(time.Nanosecond)
	defer SetSlowThreshold(0)
	before := GetCounter("odbis_slow_requests_total").Value()
	_, sp := StartTrace(context.Background(), "slow-req")
	time.Sleep(time.Millisecond)
	sp.End()
	if got := GetCounter("odbis_slow_requests_total").Value(); got != before+1 {
		t.Fatalf("slow counter = %d, want %d", got, before+1)
	}
}

func TestTenantTelemetry(t *testing.T) {
	Reset()
	ctx := WithTenant(context.Background(), "acme")
	if id, ok := TenantFromContext(ctx); !ok || id != "acme" {
		t.Fatalf("TenantFromContext = %q/%v", id, ok)
	}
	AddTenant(ctx, TenantQueries, 2)
	AddTenant(ctx, TenantRowsScanned, 150)
	AddTenant(context.Background(), TenantQueries, 99) // no tenant: dropped
	AddTenant(nil, TenantQueries, 99)                  // nil ctx: dropped
	AddTenantID("globex", TenantQueries, 1)

	if got := TenantTotal("acme", TenantQueries); got != 2 {
		t.Fatalf("acme queries = %d, want 2", got)
	}
	totals := TenantTotals("acme")
	if totals[TenantQueries] != 2 || totals[TenantRowsScanned] != 150 {
		t.Fatalf("TenantTotals = %v", totals)
	}
	if _, ok := totals[TenantRetries]; ok {
		t.Fatal("zero metrics should be omitted from TenantTotals")
	}
	ids := TenantIDs()
	if len(ids) != 2 || ids[0] != "acme" || ids[1] != "globex" {
		t.Fatalf("TenantIDs = %v", ids)
	}
}

func TestFaultTripCounter(t *testing.T) {
	Reset()
	defer fault.Reset()
	if err := fault.Arm(fault.ServicesQuery, fault.Behavior{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	ctx := WithTenant(context.Background(), "acme")
	err := fault.PointCtx(ctx, fault.ServicesQuery)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	if got := GetCounterL("odbis_fault_trips_total", "point", fault.ServicesQuery).Value(); got != 1 {
		t.Fatalf("trip counter = %d, want 1", got)
	}
	if got := TenantTotal("acme", TenantFaultTrips); got != 1 {
		t.Fatalf("tenant fault_trips = %d, want 1", got)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	Reset()
	c := GetCounter("bench_disabled_total")
	SetEnabled(false)
	b.Cleanup(Reset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	Reset()
	c := GetCounter("bench_enabled_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	Reset()
	c := GetCounter("bench_parallel_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	Reset()
	h := GetHistogram("bench_hist_seconds", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.000123)
	}
}

func BenchmarkSpanActive(b *testing.B) {
	Reset()
	ctx, root := StartTrace(context.Background(), "bench-root")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Roll the trace over periodically so the span slice stays small;
		// the rollover cost amortizes below one record copy per op.
		if i&255 == 255 {
			root.End()
			ctx, root = StartTrace(context.Background(), "bench-root")
		}
		_, sp := StartSpan(ctx, "bench-span")
		sp.End()
	}
	b.StopTimer()
	root.End()
	Reset()
}

func BenchmarkSpanNoTrace(b *testing.B) {
	Reset()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "bench-span")
		sp.End()
	}
}

// TestSetTraceRingSize: the ring is resizable within bounds; resizing
// discards history and the new bound governs retention.
func TestSetTraceRingSize(t *testing.T) {
	defer SetTraceRingSize(traceRingSize) // restore the default for other tests
	if err := SetTraceRingSize(minTraceRingSize - 1); err == nil {
		t.Fatal("undersized ring accepted, want error")
	}
	if err := SetTraceRingSize(maxTraceRingSize + 1); err == nil {
		t.Fatal("oversized ring accepted, want error")
	}
	if err := SetTraceRingSize(16); err != nil {
		t.Fatalf("SetTraceRingSize(16): %v", err)
	}
	for i := 0; i < 30; i++ {
		_, root := StartTrace(context.Background(), "req")
		root.End()
	}
	if got := len(Traces(0)); got != 16 {
		t.Fatalf("ring holds %d after resize to 16, want 16", got)
	}
}
