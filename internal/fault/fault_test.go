package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedPointIsNil(t *testing.T) {
	defer Reset()
	if err := Point(StorageWALSync); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
	if err := PointCtx(context.Background(), BusDeliver); err != nil {
		t.Fatalf("disarmed PointCtx returned %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	defer Reset()
	if err := Arm("test.err", Behavior{Mode: ModeError, Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	err := Point("test.err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "test.err") {
		t.Fatalf("error should carry point name and message: %v", err)
	}
	// Other points stay disarmed.
	if err := Point("test.other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	Disarm("test.err")
	if err := Point("test.err"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	if err := Arm("test.panic", Behavior{Mode: ModePanic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("armed panic point did not panic")
		}
	}()
	Point("test.panic")
}

func TestAfterAndCount(t *testing.T) {
	defer Reset()
	if err := Arm("test.window", Behavior{Mode: ModeError, After: 2, Count: 2}); err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Point("test.window") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if n := Fired("test.window"); n != 2 {
		t.Fatalf("Fired = %d, want 2", n)
	}
}

func TestDelayModeCtxAware(t *testing.T) {
	defer Reset()
	if err := Arm("test.delay", Behavior{Mode: ModeDelay, Delay: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := PointCtx(ctx, "test.delay")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancelled delay slept %v", d)
	}
	Reset()
	if err := Arm("test.delay", Behavior{Mode: ModeDelay, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := PointCtx(context.Background(), "test.delay"); err != nil {
		t.Fatalf("completed delay returned %v", err)
	}
}

func TestCrashModeCallsExit(t *testing.T) {
	defer Reset()
	var code int
	restore := SetExitForTest(func(c int) { code = c })
	defer restore()
	if err := Arm("test.crash", Behavior{Mode: ModeCrash}); err != nil {
		t.Fatal(err)
	}
	Point("test.crash")
	if code != CrashExitCode {
		t.Fatalf("exit code = %d, want %d", code, CrashExitCode)
	}
}

func TestArmValidation(t *testing.T) {
	defer Reset()
	if err := Arm("", Behavior{Mode: ModeError}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Arm("x", Behavior{}); err == nil {
		t.Fatal("zero mode accepted")
	}
	if err := Arm("x", Behavior{Mode: ModeDelay}); err == nil {
		t.Fatal("delay mode without duration accepted")
	}
}

func TestArmSpec(t *testing.T) {
	defer Reset()
	spec := "storage.wal.sync=error, etl.load=delay=50ms, storage.wal.append=crash:after=3, bus.deliver=error:count=2:err=downstream unavailable"
	if err := ArmSpec(spec); err != nil {
		t.Fatal(err)
	}
	byName := map[string]Status{}
	for _, st := range List() {
		byName[st.Name] = st
	}
	if st := byName[StorageWALSync]; st.Mode != "error" {
		t.Fatalf("wal.sync mode = %s", st.Mode)
	}
	if st := byName[ETLLoad]; st.Mode != "delay" || st.Delay != 50*time.Millisecond {
		t.Fatalf("etl.load = %+v", st)
	}
	if st := byName[StorageWALAppend]; st.Mode != "crash" || st.After != 3 {
		t.Fatalf("wal.append = %+v", st)
	}
	if st := byName[BusDeliver]; st.Count != 2 || st.Err != "downstream unavailable" {
		t.Fatalf("bus.deliver = %+v", st)
	}

	for _, bad := range []string{
		"noequals", "x=warble", "x=delay=abc", "x=error:after=-1",
		"x=error:count=0", "x=error:bogus",
	} {
		if err := ArmSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestListCoversKnownPoints(t *testing.T) {
	defer Reset()
	statuses := List()
	seen := map[string]bool{}
	for _, st := range statuses {
		seen[st.Name] = true
		if st.Mode != "off" {
			t.Fatalf("point %s armed at rest", st.Name)
		}
	}
	for _, name := range Known() {
		if !seen[name] {
			t.Fatalf("List missing canonical point %s", name)
		}
	}
}

func TestConcurrentPointEvaluation(t *testing.T) {
	defer Reset()
	if err := Arm("test.conc", Behavior{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				Point("test.conc")
				Point("test.unarmed")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if n := Fired("test.conc"); n != 8000 {
		t.Fatalf("fired %d times, want 8000", n)
	}
}
