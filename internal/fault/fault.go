// Package fault is the platform's fault-injection substrate. A shared
// multi-tenant system earns its availability claims by surviving the
// failures it will actually see — a torn WAL write, a flaky ETL source,
// a panicking report widget — and the only way to test survival is to
// make those failures happen on demand.
//
// Code under test declares named injection points:
//
//	if err := fault.Point(fault.StorageWALSync); err != nil { ... }
//
// A disarmed point is a single atomic load and a predictable branch
// (sub-nanosecond; see BenchmarkPointDisabled), so points stay compiled
// into production builds. Arming a point — in-process via Arm, from the
// environment via ODBIS_FAULTS, or over the wire via `odbisctl fault` —
// makes it return an error, panic, delay, or terminate the process
// (ModeCrash, for child-process crash-recovery harnesses). Placing a
// point between the physical writes of a multi-part operation (for
// example between a WAL frame header and its payload) turns ModeCrash
// into a torn-write simulator.
//
// The package is stdlib-only and imports nothing from the platform, so
// every layer down to storage may depend on it.
package fault

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection points wired into the platform. Keeping the names
// here (rather than as string literals at the call sites) gives tests
// and the failure-model documentation one authoritative list.
const (
	// StorageWALAppend fires before any byte of a WAL frame is written.
	// An error here aborts the commit cleanly (nothing reached disk).
	StorageWALAppend = "storage.wal.append"
	// StorageWALAppendMid fires after the frame header is written but
	// before the payload/CRC — the torn-write window. Errors here are
	// sticky (the on-disk tail is garbage until recovery truncates it).
	StorageWALAppendMid = "storage.wal.append.mid"
	// StorageWALSync fires before the WAL fsync. Errors are sticky: a
	// WAL whose sync failed may silently diverge from disk.
	StorageWALSync = "storage.wal.sync"
	// StorageWALTruncate fires in Checkpoint after the snapshot is
	// published but before the WAL is reset — the window where a stale
	// WAL overlaps the new snapshot.
	StorageWALTruncate = "storage.wal.truncate"
	// StorageSnapshotWrite fires while the snapshot temp file is being
	// written (before it is durable).
	StorageSnapshotWrite = "storage.snapshot.write"
	// StorageSnapshotRename fires before the atomic rename that
	// publishes the snapshot.
	StorageSnapshotRename = "storage.snapshot.rename"
	// BusDeliver fires before each handler invocation on the bus.
	BusDeliver = "bus.deliver"
	// ETLExtract, ETLTransform and ETLLoad fire before the corresponding
	// pipeline stage.
	ETLExtract   = "etl.extract"
	ETLTransform = "etl.transform"
	ETLLoad      = "etl.load"
	// SQLExec fires at the head of every self-contained SQL statement.
	SQLExec = "sql.exec"
	// ServicesQuery fires inside the metadata service's Query call,
	// after authorization.
	ServicesQuery = "services.query"
	// ServerHandler fires inside the HTTP session wrapper, after
	// authentication and before the handler — the place to prove the
	// panic-recovery middleware and error mapping.
	ServerHandler = "server.handler"
	// ReplicaApply fires before a replica applies a shipped WAL frame.
	// An error or crash here must trip the replica's breaker, never the
	// primary.
	ReplicaApply = "replica.apply"
	// ReplicaApplyMid fires between the operations of a multi-op commit
	// frame — the partial-apply window. The replica must roll the frame
	// back (or re-bootstrap) rather than serve half a commit.
	ReplicaApplyMid = "replica.apply.mid"
	// ReplicaStream fires in the replica's stream loop as each frame is
	// received, before apply — a failing stream simulates a broken
	// shipping channel.
	ReplicaStream = "replica.stream"
	// ReplicaStall fires in the stream loop too, but is intended for
	// ModeDelay: a stalled replica falls behind until the lag bound
	// routes reads back to the primary.
	ReplicaStall = "replica.stall"
	// ReplicaRead fires on the read-router's replica path just before a
	// routed query executes — the place to prove mid-request fallback to
	// the primary with no user-visible error.
	ReplicaRead = "replica.read"
	// ProtoDecode fires before a wire frame is decoded — arming it
	// simulates a peer whose byte stream turned to garbage mid-connection.
	ProtoDecode = "proto.decode"
	// NetsrvSession fires at the top of each protocol request, the wire
	// twin of ServerHandler: the place to prove a failing request ends as
	// an ERROR frame, not a dropped connection.
	NetsrvSession = "netsrv.session"
	// NetsrvWrite fires before a response frame is written — arming it
	// simulates a write-side connection failure mid-result-stream.
	NetsrvWrite = "netsrv.write"
)

// Known lists every canonical injection point, sorted.
func Known() []string {
	out := []string{
		StorageWALAppend, StorageWALAppendMid, StorageWALSync,
		StorageWALTruncate, StorageSnapshotWrite, StorageSnapshotRename,
		BusDeliver, ETLExtract, ETLTransform, ETLLoad,
		SQLExec, ServicesQuery, ServerHandler,
		ReplicaApply, ReplicaApplyMid, ReplicaStream, ReplicaStall,
		ReplicaRead,
		ProtoDecode, NetsrvSession, NetsrvWrite,
	}
	sort.Strings(out)
	return out
}

// ErrInjected is the sentinel wrapped by every injected error, so tests
// and callers can tell injected failures from organic ones.
var ErrInjected = errors.New("fault: injected error")

// Mode selects what an armed point does.
type Mode uint8

const (
	// ModeError makes the point return an error.
	ModeError Mode = iota + 1
	// ModePanic makes the point panic.
	ModePanic
	// ModeDelay makes the point sleep (context-aware via PointCtx).
	ModeDelay
	// ModeCrash terminates the process immediately (exit code CrashExitCode,
	// no deferred functions run — the moral equivalent of kill -9). Only
	// meaningful inside a child-process test harness.
	ModeCrash
)

// CrashExitCode is the exit status of a ModeCrash termination, chosen to
// be distinguishable from test-failure exits in crash harnesses.
const CrashExitCode = 86

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeCrash:
		return "crash"
	default:
		return "off"
	}
}

// ParseMode parses a mode name.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "error":
		return ModeError, nil
	case "panic":
		return ModePanic, nil
	case "delay":
		return ModeDelay, nil
	case "crash":
		return ModeCrash, nil
	}
	return 0, fmt.Errorf("fault: unknown mode %q (want error|panic|delay|crash)", s)
}

// Behavior is an armed point's configuration.
type Behavior struct {
	Mode Mode
	// Err is returned by ModeError points ("" uses a default message
	// wrapping ErrInjected; custom messages are wrapped too).
	Err string
	// Delay is the ModeDelay sleep.
	Delay time.Duration
	// After skips the first After evaluations before firing — "crash on
	// the third WAL append", not the first.
	After int
	// Count fires at most Count times (0 = unlimited), after which the
	// point behaves as disarmed (but stays listed).
	Count int
}

// Status reports one point's registry state.
type Status struct {
	Name      string        `json:"name"`
	Mode      string        `json:"mode"`
	Err       string        `json:"error,omitempty"`
	Delay     time.Duration `json:"delay,omitempty"`
	After     int           `json:"after,omitempty"`
	Count     int           `json:"count,omitempty"`
	Hits      int           `json:"hits"`
	Fired     int           `json:"fired"`
	Canonical bool          `json:"canonical"`
}

type point struct {
	behavior Behavior
	hits     int
	fired    int
}

var (
	mu    sync.Mutex
	armed = map[string]*point{}
	// armedCount gates the fast path: zero means every Point call is a
	// single atomic load.
	armedCount atomic.Int32
	// exit is swappable so ModeCrash is testable in-process.
	exit = os.Exit
	// observer, when set, is called once per fired trip (before the
	// mode acts, so panic and crash trips are observed too). fault sits
	// at the bottom of the layer DAG, so the observability layer hooks
	// in via this callback instead of an import.
	observer func(ctx context.Context, name string)
)

// SetObserver installs the trip callback. The observer must tolerate a
// nil ctx (Point passes one) and must not call back into fault.
func SetObserver(fn func(ctx context.Context, name string)) {
	mu.Lock()
	observer = fn
	mu.Unlock()
}

// Point evaluates the named injection point. Disarmed points return nil
// at the cost of one atomic load. A nil context is passed to fire: Point
// deliberately does not mint a root context (the ctxtenant analyzer
// forbids that below the server layer); a ModeDelay sleep here is simply
// uninterruptible — use PointCtx where cancellation matters.
func Point(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	return fire(nil, name)
}

// PointCtx is Point with a context-aware ModeDelay sleep: cancellation
// interrupts the delay and the ctx error is returned.
func PointCtx(ctx context.Context, name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	return fire(ctx, name)
}

func fire(ctx context.Context, name string) error {
	mu.Lock()
	p := armed[name]
	if p == nil {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.hits <= p.behavior.After {
		mu.Unlock()
		return nil
	}
	if p.behavior.Count > 0 && p.fired >= p.behavior.Count {
		mu.Unlock()
		return nil
	}
	p.fired++
	b := p.behavior
	exitFn := exit
	obsFn := observer
	mu.Unlock()
	// Notify before acting on the mode so panic and crash trips are
	// still counted.
	if obsFn != nil {
		obsFn(ctx, name)
	}
	switch b.Mode {
	case ModeError:
		if b.Err != "" {
			return fmt.Errorf("%w at %s: %s", ErrInjected, name, b.Err)
		}
		return fmt.Errorf("%w at %s", ErrInjected, name)
	case ModePanic:
		panic(fmt.Sprintf("fault: injected panic at %s", name))
	case ModeDelay:
		t := time.NewTimer(b.Delay)
		defer t.Stop()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done() // nil chan (from Point) blocks forever
		}
		select {
		case <-done:
			return ctx.Err()
		case <-t.C:
			return nil
		}
	case ModeCrash:
		exitFn(CrashExitCode)
	}
	return nil
}

// Arm arms (or re-arms) a point. Unknown names are allowed — tests may
// declare ad-hoc points — but a Behavior without a valid mode is not.
func Arm(name string, b Behavior) error {
	if name == "" {
		return fmt.Errorf("fault: empty point name")
	}
	switch b.Mode {
	case ModeError, ModePanic, ModeCrash:
	case ModeDelay:
		if b.Delay <= 0 {
			return fmt.Errorf("fault: point %s: delay mode needs a positive delay", name)
		}
	default:
		return fmt.Errorf("fault: point %s: invalid mode", name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := armed[name]; !ok {
		armedCount.Add(1)
	}
	armed[name] = &point{behavior: b}
	return nil
}

// Disarm removes an armed point; disarming an unarmed point is a no-op.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := armed[name]; ok {
		delete(armed, name)
		armedCount.Add(-1)
	}
}

// Reset disarms every point. Tests that arm faults must defer Reset.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name := range armed {
		delete(armed, name)
	}
	armedCount.Store(0)
}

// List reports every canonical point plus any armed ad-hoc points,
// sorted by name.
func List() []Status {
	mu.Lock()
	defer mu.Unlock()
	seen := map[string]bool{}
	out := make([]Status, 0, len(armed))
	for _, name := range Known() {
		seen[name] = true
		out = append(out, statusLocked(name, true))
	}
	for name := range armed {
		if !seen[name] {
			out = append(out, statusLocked(name, false))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func statusLocked(name string, canonical bool) Status {
	st := Status{Name: name, Mode: "off", Canonical: canonical}
	if p, ok := armed[name]; ok {
		st.Mode = p.behavior.Mode.String()
		st.Err = p.behavior.Err
		st.Delay = p.behavior.Delay
		st.After = p.behavior.After
		st.Count = p.behavior.Count
		st.Hits = p.hits
		st.Fired = p.fired
	}
	return st
}

// Fired reports how many times the named point has fired since arming.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := armed[name]; ok {
		return p.fired
	}
	return 0
}

// ArmSpec parses and arms a comma-separated fault specification, the
// ODBIS_FAULTS wire format:
//
//	point=mode[:opt ...]
//
// where mode is error|panic|delay=DUR|crash and the colon-separated
// options are after=N, count=N, delay=DUR and err=MESSAGE. Examples:
//
//	storage.wal.sync=error
//	etl.load=delay=50ms
//	storage.wal.append=crash:after=3
//	bus.deliver=error:count=2:err=downstream unavailable
func ArmSpec(spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return fmt.Errorf("fault: bad spec entry %q (want point=mode[:opts])", entry)
		}
		var b Behavior
		for i, tok := range strings.Split(rest, ":") {
			key, val, hasVal := strings.Cut(tok, "=")
			switch {
			case i == 0 && !hasVal:
				m, err := ParseMode(key)
				if err != nil {
					return err
				}
				b.Mode = m
			case key == "delay":
				d, err := time.ParseDuration(val)
				if err != nil {
					return fmt.Errorf("fault: point %s: bad delay %q", name, val)
				}
				b.Mode, b.Delay = ModeDelay, d
			case key == "after" && hasVal:
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return fmt.Errorf("fault: point %s: bad after %q", name, val)
				}
				b.After = n
			case key == "count" && hasVal:
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return fmt.Errorf("fault: point %s: bad count %q", name, val)
				}
				b.Count = n
			case key == "err" && hasVal:
				b.Err = val
			default:
				return fmt.Errorf("fault: point %s: bad option %q", name, tok)
			}
		}
		if err := Arm(name, b); err != nil {
			return err
		}
	}
	return nil
}

// FromEnv arms every spec listed in the ODBIS_FAULTS environment
// variable (ArmSpec format). An unset or empty variable is a no-op, so
// production binaries can call this unconditionally at startup.
func FromEnv() error {
	spec := os.Getenv("ODBIS_FAULTS")
	if spec == "" {
		return nil
	}
	if err := ArmSpec(spec); err != nil {
		return fmt.Errorf("fault: ODBIS_FAULTS: %w", err)
	}
	return nil
}

// SetExitForTest swaps the process-exit function used by ModeCrash and
// returns a restore function. Test-only.
func SetExitForTest(fn func(int)) (restore func()) {
	mu.Lock()
	prev := exit
	exit = fn
	mu.Unlock()
	return func() {
		mu.Lock()
		exit = prev
		mu.Unlock()
	}
}
