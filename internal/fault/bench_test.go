package fault

import (
	"testing"
)

// BenchmarkPointDisabled bounds the cost every wired layer pays for a
// fault point that is not armed — the acceptance bar is "free enough to
// ship enabled" (<1% on the E1 end-to-end bench; see BENCH_PR4.json).
func BenchmarkPointDisabled(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Point(StorageWALAppend); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointArmedOther measures the slow-path lookup cost paid by a
// disarmed point while a *different* point is armed (the registry is
// non-empty, so the atomic-gate fast path is off).
func BenchmarkPointArmedOther(b *testing.B) {
	Reset()
	if err := Arm("bench.other", Behavior{Mode: ModeError}); err != nil {
		b.Fatal(err)
	}
	defer Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Point(StorageWALAppend); err != nil {
			b.Fatal(err)
		}
	}
}
