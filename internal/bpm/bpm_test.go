package bpm

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/odbis/odbis/internal/bus"
	"github.com/odbis/odbis/internal/storage"
)

// orderProcess is the canonical test process: score an order via a
// service, route on the score, and mark the outcome.
func orderProcess(t *testing.T) *Definition {
	t.Helper()
	d, err := Define("order-approval", "score",
		Step{Name: "score", Kind: StepService, Channel: "scoring", Next: "route"},
		Step{Name: "route", Kind: StepGateway, Branches: []Branch{
			{Condition: "score >= 80", To: "approve"},
			{Condition: "score >= 40", To: "review"},
			{To: "reject"},
		}},
		Step{Name: "approve", Kind: StepSet, Variable: "outcome", Expression: "'approved'", Next: "done"},
		Step{Name: "review", Kind: StepSet, Variable: "outcome", Expression: "'manual review'", Next: "done"},
		Step{Name: "reject", Kind: StepSet, Variable: "outcome", Expression: "'rejected'", Next: "done"},
		Step{Name: "done", Kind: StepEnd},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func scoringBus(t *testing.T) *bus.Bus {
	t.Helper()
	b := bus.New()
	// The scoring service: big amounts from known customers score high.
	b.Subscribe("scoring", func(m *bus.Message) (*bus.Message, error) {
		vars := m.Body.(map[string]storage.Value)
		score := int64(50)
		if amt, ok := vars["amount"].(float64); ok && amt < 100 {
			score = 90
		}
		if vars["customer"] == "unknown" {
			score = 10
		}
		return bus.NewMessage(map[string]storage.Value{"score": score}), nil
	})
	return b
}

func TestProcessRoutes(t *testing.T) {
	d := orderProcess(t)
	eng := &Engine{Bus: scoringBus(t)}
	cases := []struct {
		vars map[string]storage.Value
		want string
	}{
		{map[string]storage.Value{"customer": "acme", "amount": 50.0}, "approved"},
		{map[string]storage.Value{"customer": "acme", "amount": 5000.0}, "manual review"},
		{map[string]storage.Value{"customer": "unknown", "amount": 5000.0}, "rejected"},
	}
	for _, c := range cases {
		inst, err := eng.Run(context.Background(), d, c.vars)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Vars["outcome"] != c.want {
			t.Errorf("vars %v → %v, want %v", c.vars, inst.Vars["outcome"], c.want)
		}
		if inst.End != "done" {
			t.Errorf("end = %q", inst.End)
		}
		// Audit trail covers every step.
		if len(inst.Steps) != 4 {
			t.Errorf("trail = %d steps", len(inst.Steps))
		}
		if !strings.Contains(inst.Steps[0].Note, "scoring") {
			t.Errorf("service note = %q", inst.Steps[0].Note)
		}
	}
}

func TestDefineValidation(t *testing.T) {
	cases := []struct {
		name  string
		steps []Step
		start string
	}{
		{"", nil, "s"},
		{"p", nil, ""},
		{"p", []Step{{Name: "s", Kind: StepEnd}}, "ghost"},
		{"p", []Step{{Kind: StepEnd}}, "s"},
		{"p", []Step{{Name: "s", Kind: StepEnd}, {Name: "s", Kind: StepEnd}}, "s"},
		{"p", []Step{{Name: "s", Kind: StepService, Next: "s"}}, "s"},
		{"p", []Step{{Name: "s", Kind: StepService, Channel: "c", Next: "ghost"}}, "s"},
		{"p", []Step{{Name: "s", Kind: StepGateway}}, "s"},
		{"p", []Step{{Name: "s", Kind: StepGateway, Branches: []Branch{{Condition: "x >", To: "s"}}}}, "s"},
		{"p", []Step{{Name: "s", Kind: StepGateway, Branches: []Branch{{To: ""}}}}, "s"},
		{"p", []Step{{Name: "s", Kind: StepSet, Next: "s"}}, "s"},
		{"p", []Step{{Name: "s", Kind: StepSet, Variable: "v", Expression: "SUM(x)", Next: "s"}}, "s"},
		{"p", []Step{{Name: "s", Kind: "teleport"}}, "s"},
	}
	for i, c := range cases {
		if _, err := Define(c.name, c.start, c.steps...); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGatewayStuck(t *testing.T) {
	d, err := Define("p", "g",
		Step{Name: "g", Kind: StepGateway, Branches: []Branch{
			{Condition: "x > 100", To: "e"},
		}},
		Step{Name: "e", Kind: StepEnd},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Bus: bus.New()}
	_, err = eng.Run(context.Background(), d, map[string]storage.Value{"x": 1})
	if !errors.Is(err, ErrStuck) {
		t.Errorf("stuck gateway: %v", err)
	}
}

func TestLoopGuard(t *testing.T) {
	d, err := Define("loop", "a",
		Step{Name: "a", Kind: StepSet, Variable: "n", Expression: "1", Next: "b"},
		Step{Name: "b", Kind: StepGateway, Branches: []Branch{{To: "a"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{MaxSteps: 50}
	_, err = eng.Run(context.Background(), d, nil)
	if !errors.Is(err, ErrMaxSteps) {
		t.Errorf("loop: %v", err)
	}
}

func TestBoundedLoopWithCounter(t *testing.T) {
	// A legitimate loop: retry three times then exit — the gateway's
	// decision logic comes from the expression language (the BRM).
	d, err := Define("retry", "inc",
		Step{Name: "inc", Kind: StepSet, Variable: "tries", Expression: "tries + 1", Next: "check"},
		Step{Name: "check", Kind: StepGateway, Branches: []Branch{
			{Condition: "tries < 3", To: "inc"},
			{To: "done"},
		}},
		Step{Name: "done", Kind: StepEnd},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{}
	inst, err := eng.Run(context.Background(), d, map[string]storage.Value{"tries": 0})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Vars["tries"] != int64(3) {
		t.Errorf("tries = %v", inst.Vars["tries"])
	}
}

func TestServiceFailurePropagates(t *testing.T) {
	b := bus.New()
	b.Subscribe("svc", func(m *bus.Message) (*bus.Message, error) {
		return nil, errors.New("downstream exploded")
	})
	d, _ := Define("p", "s",
		Step{Name: "s", Kind: StepService, Channel: "svc", Next: "e"},
		Step{Name: "e", Kind: StepEnd},
	)
	eng := &Engine{Bus: b}
	inst, err := eng.Run(context.Background(), d, nil)
	if err == nil {
		t.Fatal("service error swallowed")
	}
	if len(inst.Steps) != 0 {
		t.Errorf("failed step recorded as executed: %v", inst.Steps)
	}
}

func TestVariablesIsolatedFromCaller(t *testing.T) {
	d, _ := Define("p", "s",
		Step{Name: "s", Kind: StepSet, Variable: "x", Expression: "x * 2", Next: "e"},
		Step{Name: "e", Kind: StepEnd},
	)
	eng := &Engine{}
	in := map[string]storage.Value{"x": 21}
	inst, err := eng.Run(context.Background(), d, in)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Vars["x"] != int64(42) {
		t.Errorf("x = %v", inst.Vars["x"])
	}
	if in["x"] != 21 {
		t.Errorf("caller vars mutated: %v", in["x"])
	}
}
