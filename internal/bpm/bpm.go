// Package bpm is a lightweight business-process engine — the BPM half of
// the paper's orchestration pair: "The Business Process Management (BPM)
// defines the process logic while the Business Rules Management (BRM)
// implements the decision logic" (§3.3).
//
// A Definition is a graph of steps. Service steps send a message on the
// platform bus (the ESB of Fig. 1) and merge the reply into the process
// variables; gateway steps branch on SQL expressions over the variables
// (the decision logic the rules engine's expression language provides);
// end steps terminate. Instances execute synchronously and record a full
// audit trail.
package bpm

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/odbis/odbis/internal/bus"
	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

// StepKind discriminates process steps.
type StepKind string

// Step kinds.
const (
	// StepService sends the variables to a bus channel; a map reply
	// merges into the variables.
	StepService StepKind = "service"
	// StepGateway routes to the first branch whose condition holds.
	StepGateway StepKind = "gateway"
	// StepSet assigns a variable from an expression.
	StepSet StepKind = "set"
	// StepEnd terminates the instance.
	StepEnd StepKind = "end"
)

// Branch is one outgoing edge of a gateway.
type Branch struct {
	// Condition is a SQL boolean expression over the variables; empty is
	// the default branch.
	Condition string
	// To names the next step.
	To string
}

// Step is one node of the process graph.
type Step struct {
	Name string
	Kind StepKind
	// Channel is the bus channel a service step invokes.
	Channel string
	// Next names the following step (service/set steps).
	Next string
	// Branches are a gateway's alternatives, evaluated in order.
	Branches []Branch
	// Variable/Expression configure set steps.
	Variable   string
	Expression string
}

// Definition is a validated process definition.
type Definition struct {
	Name  string
	Start string
	steps map[string]Step
	// conds holds compiled gateway/set expressions.
	conds map[string]*sql.CompiledExpr
}

// Errors returned by the engine.
var (
	ErrNoStep   = errors.New("bpm: no such step")
	ErrStuck    = errors.New("bpm: no branch matched and no default")
	ErrMaxSteps = errors.New("bpm: step limit reached (possible loop)")
)

// Define validates a process definition and compiles its expressions.
func Define(name, start string, steps ...Step) (*Definition, error) {
	if name == "" || start == "" {
		return nil, fmt.Errorf("bpm: definition needs a name and a start step")
	}
	d := &Definition{
		Name:  name,
		Start: start,
		steps: make(map[string]Step, len(steps)),
		conds: make(map[string]*sql.CompiledExpr),
	}
	for _, s := range steps {
		if s.Name == "" {
			return nil, fmt.Errorf("bpm: %s: unnamed step", name)
		}
		if _, dup := d.steps[s.Name]; dup {
			return nil, fmt.Errorf("bpm: %s: duplicate step %q", name, s.Name)
		}
		switch s.Kind {
		case StepService:
			if s.Channel == "" || s.Next == "" {
				return nil, fmt.Errorf("bpm: %s/%s: service steps need Channel and Next", name, s.Name)
			}
		case StepGateway:
			if len(s.Branches) == 0 {
				return nil, fmt.Errorf("bpm: %s/%s: gateway needs branches", name, s.Name)
			}
			for i, b := range s.Branches {
				if b.To == "" {
					return nil, fmt.Errorf("bpm: %s/%s: branch %d has no target", name, s.Name, i)
				}
				if b.Condition != "" {
					expr, err := sql.CompileExpr(b.Condition)
					if err != nil {
						return nil, fmt.Errorf("bpm: %s/%s branch %d: %w", name, s.Name, i, err)
					}
					d.conds[s.Name+"#"+fmt.Sprint(i)] = expr
				}
			}
		case StepSet:
			if s.Variable == "" || s.Expression == "" || s.Next == "" {
				return nil, fmt.Errorf("bpm: %s/%s: set steps need Variable, Expression and Next", name, s.Name)
			}
			expr, err := sql.CompileExpr(s.Expression)
			if err != nil {
				return nil, fmt.Errorf("bpm: %s/%s: %w", name, s.Name, err)
			}
			d.conds[s.Name] = expr
		case StepEnd:
		default:
			return nil, fmt.Errorf("bpm: %s/%s: unknown kind %q", name, s.Name, s.Kind)
		}
		d.steps[s.Name] = s
	}
	// Every referenced step must exist.
	check := func(from, to string) error {
		if to == "" {
			return nil
		}
		if _, ok := d.steps[to]; !ok {
			return fmt.Errorf("bpm: %s/%s references missing step %q", name, from, to)
		}
		return nil
	}
	if _, ok := d.steps[start]; !ok {
		return nil, fmt.Errorf("bpm: %s: start step %q undefined", name, start)
	}
	for _, s := range d.steps {
		if err := check(s.Name, s.Next); err != nil {
			return nil, err
		}
		for _, b := range s.Branches {
			if err := check(s.Name, b.To); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// Trace records one executed step.
type Trace struct {
	Step string
	Kind StepKind
	At   time.Time
	// Note holds the branch taken, channel called, or variable set.
	Note string
}

// Instance is one execution of a definition.
type Instance struct {
	Definition string
	// Vars are the process variables (merged service replies included).
	Vars map[string]storage.Value
	// Steps is the audit trail.
	Steps []Trace
	// End names the end step reached.
	End string
}

// Engine executes definitions over a bus.
type Engine struct {
	Bus *bus.Bus
	// MaxSteps bounds one instance's execution (default 1000).
	MaxSteps int
}

// Run executes the definition with the given initial variables. ctx
// bounds the instance: a cancelled or expired context stops execution at
// the next step boundary with the ctx error.
func (e *Engine) Run(ctx context.Context, d *Definition, vars map[string]storage.Value) (*Instance, error) {
	limit := e.MaxSteps
	if limit <= 0 {
		limit = 1000
	}
	inst := &Instance{Definition: d.Name, Vars: map[string]storage.Value{}}
	for k, v := range vars {
		inst.Vars[k] = storage.Normalize(v)
	}
	cur := d.Start
	for n := 0; n < limit; n++ {
		if err := ctx.Err(); err != nil {
			return inst, err
		}
		step, ok := d.steps[cur]
		if !ok {
			return inst, fmt.Errorf("%w: %s", ErrNoStep, cur)
		}
		tr := Trace{Step: step.Name, Kind: step.Kind, At: time.Now().UTC()}
		switch step.Kind {
		case StepEnd:
			inst.Steps = append(inst.Steps, tr)
			inst.End = step.Name
			return inst, nil
		case StepSet:
			v, err := d.conds[step.Name].Eval(inst.Vars)
			if err != nil {
				return inst, fmt.Errorf("bpm: %s/%s: %w", d.Name, step.Name, err)
			}
			inst.Vars[step.Variable] = v
			tr.Note = fmt.Sprintf("%s = %s", step.Variable, storage.FormatValue(v))
			inst.Steps = append(inst.Steps, tr)
			cur = step.Next
		case StepService:
			if e.Bus == nil {
				return inst, fmt.Errorf("bpm: %s/%s: engine has no bus", d.Name, step.Name)
			}
			reply, err := e.Bus.Send(step.Channel, bus.NewMessage(copyVars(inst.Vars),
				"process", d.Name, "step", step.Name))
			if err != nil {
				return inst, fmt.Errorf("bpm: %s/%s: %w", d.Name, step.Name, err)
			}
			if reply != nil {
				if m, ok := reply.Body.(map[string]storage.Value); ok {
					for k, v := range m {
						inst.Vars[k] = storage.Normalize(v)
					}
				}
			}
			tr.Note = "→ " + step.Channel
			inst.Steps = append(inst.Steps, tr)
			cur = step.Next
		case StepGateway:
			taken := ""
			for i, b := range step.Branches {
				if b.Condition == "" {
					taken = b.To
					tr.Note = "default → " + b.To
					break
				}
				ok, err := d.conds[step.Name+"#"+fmt.Sprint(i)].EvalBool(inst.Vars)
				if err != nil {
					return inst, fmt.Errorf("bpm: %s/%s: %w", d.Name, step.Name, err)
				}
				if ok {
					taken = b.To
					tr.Note = b.Condition + " → " + b.To
					break
				}
			}
			if taken == "" {
				return inst, fmt.Errorf("%w at %s/%s", ErrStuck, d.Name, step.Name)
			}
			inst.Steps = append(inst.Steps, tr)
			cur = taken
		}
	}
	return inst, fmt.Errorf("%w: %s", ErrMaxSteps, d.Name)
}

func copyVars(vars map[string]storage.Value) map[string]storage.Value {
	out := make(map[string]storage.Value, len(vars))
	for k, v := range vars {
		out[k] = v
	}
	return out
}
