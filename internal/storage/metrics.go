package storage

import "github.com/odbis/odbis/internal/obs"

// Metric handles are resolved once at init so hot paths (WAL appends
// under w.mu, commit under the engine lock) never take the obs registry
// lock.
var (
	mWALAppends    = obs.GetCounter("odbis_wal_appends_total")
	mWALSyncs      = obs.GetCounter("odbis_wal_syncs_total")
	mWALBytes      = obs.GetCounter("odbis_wal_bytes_written_total")
	mWALLatchTrips = obs.GetCounter("odbis_wal_latch_trips_total")
	gSnapshotEpoch = obs.GetGauge("odbis_storage_snapshot_epoch")
)
