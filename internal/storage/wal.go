package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"github.com/odbis/odbis/internal/fault"
)

const walFile = "odbis.wal"

// Record types in the write-ahead log.
const (
	recCreateTable byte = 'T'
	recDropTable   byte = 'D'
	recCreateIndex byte = 'I'
	recDropIndex   byte = 'X'
	recSequence    byte = 'S'
	recCommit      byte = 'C'
	// recEpoch stamps the WAL with the checkpoint epoch of the snapshot
	// it extends. It is always the first record of a reset WAL; replay
	// discards a WAL whose epoch does not match the loaded snapshot
	// (a crash between snapshot publish and WAL reset would otherwise
	// re-apply records the snapshot already contains).
	recEpoch byte = 'E'
)

// wal is an append-only redo log. Records are framed as
//
//	[uint32 payload length][payload][uint32 CRC-32 of payload]
//
// where the payload starts with a record-type byte. A torn final record
// (short frame or CRC mismatch) marks the end of the recoverable log and
// is truncated on the next append.
type wal struct {
	mu   sync.Mutex
	f    *os.File
	sync SyncMode
	buf  bytes.Buffer
	// failed latches the first physical write/sync error. Once set,
	// every further append fails fast with ErrWALFailed: the on-disk
	// tail is suspect, and acknowledging commits that may not survive a
	// restart would silently diverge memory from disk. A successful
	// checkpoint resets the WAL from known-good memory state and clears
	// the latch.
	failed error
}

func openWAL(path string, mode SyncMode) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	return &wal{f: f, sync: mode}, nil
}

func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// append frames and writes one record built by fn, honoring the sync
// mode. On success it returns the frame size in bytes so callers can
// attribute durable write volume.
func (w *wal) append(fn func(enc *encoder)) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, ErrClosed
	}
	if w.failed != nil {
		return 0, fmt.Errorf("%w (first failure: %v)", ErrWALFailed, w.failed)
	}
	w.buf.Reset()
	enc := newEncoder(&w.buf)
	fn(enc)
	if err := enc.flush(); err != nil {
		return 0, err
	}
	// Nothing has reached the file yet: a failure up to here (including
	// the armed fault below) aborts the record cleanly and the WAL stays
	// usable.
	if err := fault.Point(fault.StorageWALAppend); err != nil {
		return 0, err
	}
	payload := w.buf.Bytes()
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	// Seek to end: recovery may have left the offset mid-file after a torn
	// record.
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return 0, err
	}
	if _, err := w.f.Write(frame[:4]); err != nil {
		return 0, w.fail(err)
	}
	// The torn-write window: the frame header is on disk, the payload is
	// not. A crash armed here leaves exactly the partial frame recovery
	// must truncate.
	if err := fault.Point(fault.StorageWALAppendMid); err != nil {
		return 0, w.fail(err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return 0, w.fail(err)
	}
	if _, err := w.f.Write(frame[4:]); err != nil {
		return 0, w.fail(err)
	}
	if w.sync == SyncFull {
		if err := fault.Point(fault.StorageWALSync); err != nil {
			return 0, w.fail(err)
		}
		if err := w.f.Sync(); err != nil {
			return 0, w.fail(err)
		}
		mWALSyncs.Inc()
	}
	n := len(payload) + 8
	mWALAppends.Inc()
	mWALBytes.Add(int64(n))
	return n, nil
}

// fail latches a physical write/sync error (caller holds w.mu).
func (w *wal) fail(err error) error {
	if w.failed == nil {
		w.failed = err
		mWALLatchTrips.Inc()
	}
	return err
}

// reset truncates the WAL, stamps it with the checkpoint epoch and
// fsyncs, clearing any latched failure: after a reset the on-disk log is
// empty and provably in sync with memory again. On error the WAL is
// latched failed — an un-reset WAL next to a newer snapshot must not
// accept appends the next recovery would discard as stale.
func (w *wal) reset(epoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	if err := w.f.Truncate(0); err != nil {
		return w.fail(fmt.Errorf("storage: truncate wal: %w", err))
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return w.fail(err)
	}
	w.buf.Reset()
	enc := newEncoder(&w.buf)
	enc.byte(recEpoch)
	enc.uvarint(epoch)
	if err := enc.flush(); err != nil {
		return err
	}
	payload := w.buf.Bytes()
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(frame[:4]); err != nil {
		return w.fail(err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return w.fail(err)
	}
	if _, err := w.f.Write(frame[4:]); err != nil {
		return w.fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	w.failed = nil
	return nil
}

func (w *wal) logCreateTable(s *Schema) error {
	_, err := w.append(func(enc *encoder) {
		enc.byte(recCreateTable)
		enc.schema(s)
	})
	return err
}

func (w *wal) logDropTable(name string) error {
	_, err := w.append(func(enc *encoder) {
		enc.byte(recDropTable)
		enc.str(name)
	})
	return err
}

func (w *wal) logCreateIndex(info IndexInfo) error {
	_, err := w.append(func(enc *encoder) {
		enc.byte(recCreateIndex)
		encodeIndexInfo(enc, info)
	})
	return err
}

func encodeIndexInfo(enc *encoder, info IndexInfo) {
	enc.str(info.Table)
	enc.str(info.Name)
	enc.uvarint(uint64(len(info.Columns)))
	for _, c := range info.Columns {
		enc.str(c)
	}
	if info.Unique {
		enc.byte(1)
	} else {
		enc.byte(0)
	}
	enc.byte(byte(info.Kind))
}

func decodeIndexInfo(dec *decoder) IndexInfo {
	var info IndexInfo
	info.Table = dec.str()
	info.Name = dec.str()
	n := dec.uvarint()
	if dec.err != nil || n > 1<<12 {
		dec.fail(fmt.Errorf("storage: corrupt index info"))
		return info
	}
	info.Columns = make([]string, n)
	for i := range info.Columns {
		info.Columns[i] = dec.str()
	}
	info.Unique = dec.byte() == 1
	info.Kind = IndexKind(dec.byte())
	return info
}

func (w *wal) logDropIndex(table, name string) error {
	_, err := w.append(func(enc *encoder) {
		enc.byte(recDropIndex)
		enc.str(table)
		enc.str(name)
	})
	return err
}

func (w *wal) logSequence(name string, v int64) error {
	_, err := w.append(func(enc *encoder) {
		enc.byte(recSequence)
		enc.str(name)
		enc.varint(v)
	})
	return err
}

// logTx appends one commit record, returning its framed size for
// per-tenant bytes-written attribution.
func (w *wal) logTx(txid uint64, ops []txOp) (int, error) {
	return w.append(func(enc *encoder) { encodeTxFrame(enc, txid, ops) })
}

// errTornRecord marks the recoverable end of the log during replay.
var errTornRecord = errors.New("storage: torn wal record")

// replayWAL applies every intact record from the WAL. A torn tail is
// truncated so future appends produce a clean log. A WAL whose epoch
// stamp disagrees with the loaded snapshot is discarded whole: it was
// written against a different snapshot baseline (a crash landed between
// snapshot publish and WAL reset), so its records are either already in
// the snapshot or inconsistent with it — replaying them would duplicate
// rows or resurrect dropped tables.
func (e *Engine) replayWAL() error {
	w := e.wal
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var goodEnd int64
	var maxTx, maxRID uint64
	// A WAL with no epoch record is a fresh, never-checkpointed log
	// (epoch 0): reset always stamps one.
	walEpoch := uint64(0)
	first := true
	r := io.Reader(w.f)
	for {
		payload, n, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if errors.Is(err, errTornRecord) {
			break
		}
		if err != nil {
			return err
		}
		if first {
			first = false
			if ep, ok := decodeEpoch(payload); ok {
				walEpoch = ep
				goodEnd += int64(n)
				if walEpoch != e.epoch {
					break
				}
				continue
			}
		}
		if walEpoch != e.epoch {
			break
		}
		tx, rid, aerr := e.applyWALRecord(payload)
		if aerr != nil {
			return aerr
		}
		if tx > maxTx {
			maxTx = tx
		}
		if rid > maxRID {
			maxRID = rid
		}
		goodEnd += int64(n)
	}
	// Mismatched (or missing) epoch after a checkpoint: discard the
	// stale log and restamp. This also covers a crash inside reset
	// itself (truncated but not yet stamped).
	if walEpoch != e.epoch {
		return w.reset(e.epoch)
	}
	if err := w.f.Truncate(goodEnd); err != nil {
		return fmt.Errorf("storage: truncate torn wal: %w", err)
	}
	if maxTx >= e.nextTxID.Load() {
		e.nextTxID.Store(maxTx + 1)
	}
	if maxRID >= e.nextRID.Load() {
		e.nextRID.Store(maxRID + 1)
	}
	return nil
}

// decodeEpoch reports whether payload is an epoch record and its value.
func decodeEpoch(payload []byte) (uint64, bool) {
	if len(payload) == 0 || payload[0] != recEpoch {
		return 0, false
	}
	dec := newDecoder(bytes.NewReader(payload[1:]))
	ep := dec.uvarint()
	if dec.err != nil {
		return 0, false
	}
	return ep, true
}

// readFrame reads one framed record, returning the payload and the total
// frame size consumed.
func readFrame(r io.Reader) ([]byte, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, errTornRecord
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxBlob {
		return nil, 0, errTornRecord
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, errTornRecord
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, 0, errTornRecord
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(crcBuf[:]) {
		return nil, 0, errTornRecord
	}
	return payload, int(n) + 8, nil
}

// applyWALRecord applies one record to in-memory state during recovery.
// It returns the highest transaction id and RID referenced.
func (e *Engine) applyWALRecord(payload []byte) (maxTx, maxRID uint64, err error) {
	dec := newDecoder(bytes.NewReader(payload))
	switch typ := dec.byte(); typ {
	case recCreateTable:
		s := dec.schema()
		if dec.err != nil {
			return 0, 0, dec.err
		}
		// Recreate directly (not via CreateTable: no re-logging).
		if err := s.Validate(); err != nil {
			return 0, 0, err
		}
		t := &table{schema: s, byRID: make(map[RID]rowID), indexes: make(map[string]*index)}
		if len(s.PrimaryKey) > 0 {
			pk := e.buildIndex(t, IndexInfo{
				Name:    s.Name + "_pkey",
				Table:   s.Name,
				Columns: append([]string(nil), s.PrimaryKey...),
				Unique:  true,
				Kind:    IndexBTree,
			})
			t.pkIndex = pk
			t.indexes[lowerName(pk.info.Name)] = pk
		}
		e.tables[lowerName(s.Name)] = t
	case recDropTable:
		delete(e.tables, lowerName(dec.str()))
	case recCreateIndex:
		info := decodeIndexInfo(dec)
		if dec.err != nil {
			return 0, 0, dec.err
		}
		if t, ok := e.tables[lowerName(info.Table)]; ok {
			// Replay is single-threaded, but take the lock anyway so every
			// buildIndex call site shares CreateIndex's discipline (and the
			// static race tier can prove it).
			t.mu.Lock()
			ix := e.buildIndex(t, info)
			t.indexes[lowerName(info.Name)] = ix
			t.mu.Unlock()
		}
	case recDropIndex:
		tbl, name := dec.str(), dec.str()
		if t, ok := e.tables[lowerName(tbl)]; ok {
			delete(t.indexes, lowerName(name))
		}
	case recSequence:
		name := dec.str()
		v := dec.varint()
		if dec.err == nil {
			e.setSequence(name, v)
		}
	case recCommit:
		txid := dec.uvarint()
		nops := dec.uvarint()
		if dec.err != nil || nops > maxBlob {
			return 0, 0, fmt.Errorf("storage: corrupt commit record")
		}
		for i := uint64(0); i < nops; i++ {
			kind := txOpKind(dec.byte())
			tableName := dec.str()
			rid := RID(dec.uvarint())
			if uint64(rid) > maxRID {
				maxRID = uint64(rid)
			}
			t, ok := e.tables[lowerName(tableName)]
			switch kind {
			case opInsert:
				row := dec.row()
				if dec.err != nil {
					return 0, 0, dec.err
				}
				if !ok {
					continue // table was dropped later in the log
				}
				slot := rowID(len(t.versions))
				t.versions = append(t.versions, version{rid: rid, row: row})
				t.byRID[rid] = slot
				for _, ix := range t.indexes {
					ix.insert(ix.keyFor(row), slot)
				}
			case opDelete:
				if !ok {
					continue
				}
				if slot, exists := t.byRID[rid]; exists {
					t.versions[slot].xmax = txid
				}
			default:
				return 0, 0, fmt.Errorf("storage: corrupt op kind %d", kind)
			}
		}
		if txid > maxTx {
			maxTx = txid
		}
	default:
		return 0, 0, fmt.Errorf("storage: unknown wal record type %q", typ)
	}
	return maxTx, maxRID, dec.err
}
