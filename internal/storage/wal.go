package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const walFile = "odbis.wal"

// Record types in the write-ahead log.
const (
	recCreateTable byte = 'T'
	recDropTable   byte = 'D'
	recCreateIndex byte = 'I'
	recDropIndex   byte = 'X'
	recSequence    byte = 'S'
	recCommit      byte = 'C'
)

// wal is an append-only redo log. Records are framed as
//
//	[uint32 payload length][payload][uint32 CRC-32 of payload]
//
// where the payload starts with a record-type byte. A torn final record
// (short frame or CRC mismatch) marks the end of the recoverable log and
// is truncated on the next append.
type wal struct {
	mu   sync.Mutex
	f    *os.File
	sync SyncMode
	buf  bytes.Buffer
}

func openWAL(path string, mode SyncMode) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	return &wal{f: f, sync: mode}, nil
}

func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// append frames and writes one record built by fn, honoring the sync mode.
func (w *wal) append(fn func(enc *encoder)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	w.buf.Reset()
	enc := newEncoder(&w.buf)
	fn(enc)
	if err := enc.flush(); err != nil {
		return err
	}
	payload := w.buf.Bytes()
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	// Seek to end: recovery may have left the offset mid-file after a torn
	// record.
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	if _, err := w.f.Write(frame[:4]); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	if _, err := w.f.Write(frame[4:]); err != nil {
		return err
	}
	if w.sync == SyncFull {
		return w.f.Sync()
	}
	return nil
}

func (w *wal) logCreateTable(s *Schema) error {
	return w.append(func(enc *encoder) {
		enc.byte(recCreateTable)
		enc.schema(s)
	})
}

func (w *wal) logDropTable(name string) error {
	return w.append(func(enc *encoder) {
		enc.byte(recDropTable)
		enc.str(name)
	})
}

func (w *wal) logCreateIndex(info IndexInfo) error {
	return w.append(func(enc *encoder) {
		enc.byte(recCreateIndex)
		encodeIndexInfo(enc, info)
	})
}

func encodeIndexInfo(enc *encoder, info IndexInfo) {
	enc.str(info.Table)
	enc.str(info.Name)
	enc.uvarint(uint64(len(info.Columns)))
	for _, c := range info.Columns {
		enc.str(c)
	}
	if info.Unique {
		enc.byte(1)
	} else {
		enc.byte(0)
	}
	enc.byte(byte(info.Kind))
}

func decodeIndexInfo(dec *decoder) IndexInfo {
	var info IndexInfo
	info.Table = dec.str()
	info.Name = dec.str()
	n := dec.uvarint()
	if dec.err != nil || n > 1<<12 {
		dec.fail(fmt.Errorf("storage: corrupt index info"))
		return info
	}
	info.Columns = make([]string, n)
	for i := range info.Columns {
		info.Columns[i] = dec.str()
	}
	info.Unique = dec.byte() == 1
	info.Kind = IndexKind(dec.byte())
	return info
}

func (w *wal) logDropIndex(table, name string) error {
	return w.append(func(enc *encoder) {
		enc.byte(recDropIndex)
		enc.str(table)
		enc.str(name)
	})
}

func (w *wal) logSequence(name string, v int64) error {
	return w.append(func(enc *encoder) {
		enc.byte(recSequence)
		enc.str(name)
		enc.varint(v)
	})
}

func (w *wal) logTx(txid uint64, ops []txOp) error {
	return w.append(func(enc *encoder) {
		enc.byte(recCommit)
		enc.uvarint(txid)
		enc.uvarint(uint64(len(ops)))
		for _, op := range ops {
			enc.byte(byte(op.kind))
			enc.str(op.table)
			enc.uvarint(uint64(op.rid))
			if op.kind == opInsert {
				enc.row(op.row)
			}
		}
	})
}

// errTornRecord marks the recoverable end of the log during replay.
var errTornRecord = errors.New("storage: torn wal record")

// replayWAL applies every intact record from the WAL. A torn tail is
// truncated so future appends produce a clean log.
func (e *Engine) replayWAL() error {
	w := e.wal
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var goodEnd int64
	var maxTx, maxRID uint64
	r := io.Reader(w.f)
	for {
		payload, n, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if errors.Is(err, errTornRecord) {
			break
		}
		if err != nil {
			return err
		}
		tx, rid, aerr := e.applyWALRecord(payload)
		if aerr != nil {
			return aerr
		}
		if tx > maxTx {
			maxTx = tx
		}
		if rid > maxRID {
			maxRID = rid
		}
		goodEnd += int64(n)
	}
	if err := w.f.Truncate(goodEnd); err != nil {
		return fmt.Errorf("storage: truncate torn wal: %w", err)
	}
	if maxTx >= e.nextTxID.Load() {
		e.nextTxID.Store(maxTx + 1)
	}
	if maxRID >= e.nextRID.Load() {
		e.nextRID.Store(maxRID + 1)
	}
	return nil
}

// readFrame reads one framed record, returning the payload and the total
// frame size consumed.
func readFrame(r io.Reader) ([]byte, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, errTornRecord
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxBlob {
		return nil, 0, errTornRecord
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, errTornRecord
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, 0, errTornRecord
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(crcBuf[:]) {
		return nil, 0, errTornRecord
	}
	return payload, int(n) + 8, nil
}

// applyWALRecord applies one record to in-memory state during recovery.
// It returns the highest transaction id and RID referenced.
func (e *Engine) applyWALRecord(payload []byte) (maxTx, maxRID uint64, err error) {
	dec := newDecoder(bytes.NewReader(payload))
	switch typ := dec.byte(); typ {
	case recCreateTable:
		s := dec.schema()
		if dec.err != nil {
			return 0, 0, dec.err
		}
		// Recreate directly (not via CreateTable: no re-logging).
		if err := s.Validate(); err != nil {
			return 0, 0, err
		}
		t := &table{schema: s, byRID: make(map[RID]rowID), indexes: make(map[string]*index)}
		if len(s.PrimaryKey) > 0 {
			pk := e.buildIndex(t, IndexInfo{
				Name:    s.Name + "_pkey",
				Table:   s.Name,
				Columns: append([]string(nil), s.PrimaryKey...),
				Unique:  true,
				Kind:    IndexBTree,
			})
			t.pkIndex = pk
			t.indexes[lowerName(pk.info.Name)] = pk
		}
		e.tables[lowerName(s.Name)] = t
	case recDropTable:
		delete(e.tables, lowerName(dec.str()))
	case recCreateIndex:
		info := decodeIndexInfo(dec)
		if dec.err != nil {
			return 0, 0, dec.err
		}
		if t, ok := e.tables[lowerName(info.Table)]; ok {
			ix := e.buildIndex(t, info)
			t.indexes[lowerName(info.Name)] = ix
		}
	case recDropIndex:
		tbl, name := dec.str(), dec.str()
		if t, ok := e.tables[lowerName(tbl)]; ok {
			delete(t.indexes, lowerName(name))
		}
	case recSequence:
		name := dec.str()
		v := dec.varint()
		if dec.err == nil {
			e.setSequence(name, v)
		}
	case recCommit:
		txid := dec.uvarint()
		nops := dec.uvarint()
		if dec.err != nil || nops > maxBlob {
			return 0, 0, fmt.Errorf("storage: corrupt commit record")
		}
		for i := uint64(0); i < nops; i++ {
			kind := txOpKind(dec.byte())
			tableName := dec.str()
			rid := RID(dec.uvarint())
			if uint64(rid) > maxRID {
				maxRID = uint64(rid)
			}
			t, ok := e.tables[lowerName(tableName)]
			switch kind {
			case opInsert:
				row := dec.row()
				if dec.err != nil {
					return 0, 0, dec.err
				}
				if !ok {
					continue // table was dropped later in the log
				}
				slot := rowID(len(t.versions))
				t.versions = append(t.versions, version{rid: rid, row: row})
				t.byRID[rid] = slot
				for _, ix := range t.indexes {
					ix.insert(ix.keyFor(row), slot)
				}
			case opDelete:
				if !ok {
					continue
				}
				if slot, exists := t.byRID[rid]; exists {
					t.versions[slot].xmax = txid
				}
			default:
				return 0, 0, fmt.Errorf("storage: corrupt op kind %d", kind)
			}
		}
		if txid > maxTx {
			maxTx = txid
		}
	default:
		return 0, 0, fmt.Errorf("storage: unknown wal record type %q", typ)
	}
	return maxTx, maxRID, dec.err
}
