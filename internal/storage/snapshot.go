package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/odbis/odbis/internal/fault"
)

const (
	snapshotFile = "odbis.snap"
	// snapshotMagic v2 adds the checkpoint epoch after the magic (see
	// recEpoch in wal.go for why recovery needs it).
	snapshotMagic = "ODBISNAP2"
)

// Checkpoint writes a consistent snapshot of the committed state to disk,
// truncates the WAL, and — when no transactions are in flight — vacuums
// dead row versions and compacts version slots.
//
// Checkpoint is a no-op for in-memory engines.
func (e *Engine) Checkpoint() error {
	if e.opts.Dir == "" {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.txMu.Lock()
	anyActive := len(e.txActive) > 0
	snap := e.takeSnapshotTxLocked()
	e.txMu.Unlock()

	if !anyActive {
		for _, t := range e.tables {
			e.vacuumTable(t, snap)
		}
		e.txMu.Lock()
		e.txAborted = make(map[uint64]bool)
		e.txMu.Unlock()
	}

	// The checkpoint protocol, in crash-survivable order:
	//
	//  1. write the full state to a temp file stamped with epoch+1
	//  2. atomically rename it over the live snapshot
	//  3. reset the WAL (truncate + stamp epoch+1 + fsync)
	//
	// A crash before 2 leaves the old snapshot + a matching WAL. A crash
	// between 2 and 3 leaves the new snapshot + a stale-epoch WAL, which
	// recovery discards (its records are already in the snapshot). A
	// failure at 3 latches the WAL failed so no commit can be
	// acknowledged into a log the next recovery would discard.
	newEpoch := e.epoch + 1
	path := filepath.Join(e.opts.Dir, snapshotFile)
	tmp := path + ".tmp"
	if err := e.writeSnapshot(tmp, snap, newEpoch); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := fault.Point(fault.StorageSnapshotRename); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: publish snapshot: %w", err)
	}
	e.epoch = newEpoch
	gSnapshotEpoch.Set(int64(newEpoch))
	if err := fault.Point(fault.StorageWALTruncate); err != nil {
		e.wal.mu.Lock()
		e.wal.fail(err)
		e.wal.mu.Unlock()
		return err
	}
	// Everything the WAL held is now in the snapshot: reset it.
	return e.wal.reset(newEpoch)
}

// Vacuum reclaims dead row versions and compacts indexes across every
// table, in memory. It is a no-op (returning false) while any transaction
// is active. Durable engines get this automatically from Checkpoint; the
// engine also triggers it opportunistically when a table accumulates many
// dead versions (update-heavy counters would otherwise degrade index
// probes linearly).
func (e *Engine) Vacuum() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	snap, ok := e.quiescentSnapshot()
	if !ok {
		return false
	}
	for _, t := range e.tables {
		e.vacuumTable(t, snap)
	}
	e.txMu.Lock()
	e.txAborted = make(map[uint64]bool)
	e.txMu.Unlock()
	return true
}

// quiescentSnapshot returns a snapshot when no transaction is active.
// Caller must hold e.mu (which blocks all table access, so no new writes
// can land while the caller vacuums).
func (e *Engine) quiescentSnapshot() (snapshot, bool) {
	e.txMu.Lock()
	defer e.txMu.Unlock()
	if len(e.txActive) > 0 {
		return snapshot{}, false
	}
	return e.takeSnapshotTxLocked(), true
}

// maybeVacuumTable vacuums one table when it is safe to do so.
func (e *Engine) maybeVacuumTable(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	t, ok := e.tables[name]
	if !ok {
		return
	}
	snap, quiet := e.quiescentSnapshot()
	if !quiet {
		return
	}
	e.vacuumTable(t, snap)
}

// vacuumThreshold is the per-table dead-version count that triggers an
// opportunistic vacuum after a commit.
const vacuumThreshold = 256

// vacuumTable removes versions invisible to every present and future
// transaction and freezes the survivors. Caller holds e.mu and guarantees
// no transaction is active.
func (e *Engine) vacuumTable(t *table, snap snapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := make([]version, 0, len(t.versions))
	for i := range t.versions {
		v := &t.versions[i]
		if e.visible(v, snap, 0) {
			kept = append(kept, version{rid: v.rid, row: v.row})
		}
	}
	t.versions = kept
	t.byRID = make(map[RID]rowID, len(kept))
	for i := range kept {
		t.byRID[kept[i].rid] = rowID(i)
	}
	for _, ix := range t.indexes {
		rebuilt := e.buildIndex(t, ix.info)
		*ix = *rebuilt
	}
	t.dead = 0
}

// crcWriter tees writes through a CRC-32 so the snapshot carries an
// end-to-end checksum.
type crcWriter struct {
	w io.Writer
	h hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.h.Write(p)
	return c.w.Write(p)
}

func (e *Engine) writeSnapshot(path string, snap snapshot, epoch uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: create snapshot: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	// The torn-snapshot window: a crash while the temp file is partially
	// written must leave the previous snapshot untouched. The point fires
	// here (not inside encodeState) so replica bootstrap dumps never trip
	// snapshot-write faults armed against the checkpoint path.
	mid := func() error {
		if err := fault.Point(fault.StorageSnapshotWrite); err != nil {
			return fmt.Errorf("storage: write snapshot: %w", err)
		}
		return nil
	}
	if err := e.encodeState(bw, snap, epoch, mid); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// DumpState streams a consistent committed-state snapshot (the on-disk
// snapshot format) to w, without touching the snapshot file, the WAL, or
// the checkpoint epoch. It is the replica-bootstrap source: Subscribe to
// the WAL first, then dump — every transaction committed before the dump
// snapshot is in the dump, everything after is on the subscription.
func (e *Engine) DumpState(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	return e.encodeState(w, e.takeSnapshotLocked(), e.epoch, nil)
}

// encodeState writes the full committed state in the snapshot format,
// CRC trailer included. mid, when non-nil, runs after the header — the
// checkpoint path injects its torn-write fault there. Caller holds e.mu
// (read or write).
func (e *Engine) encodeState(w io.Writer, snap snapshot, epoch uint64, mid func() error) error {
	cw := &crcWriter{w: w, h: crc32.NewIEEE()}
	enc := newEncoder(cw)

	enc.str(snapshotMagic)
	enc.uvarint(epoch)
	enc.uvarint(e.nextRID.Load())
	enc.uvarint(e.nextTxID.Load())
	if mid != nil {
		if err := mid(); err != nil {
			return err
		}
	}

	e.seqMu.Lock()
	seqNames := make([]string, 0, len(e.seqs))
	for name := range e.seqs {
		seqNames = append(seqNames, name)
	}
	sort.Strings(seqNames)
	enc.uvarint(uint64(len(seqNames)))
	for _, name := range seqNames {
		enc.str(name)
		enc.varint(e.seqs[name])
	}
	e.seqMu.Unlock()

	tableNames := make([]string, 0, len(e.tables))
	for k := range e.tables {
		tableNames = append(tableNames, k)
	}
	sort.Strings(tableNames)
	enc.uvarint(uint64(len(tableNames)))
	for _, k := range tableNames {
		t := e.tables[k]
		t.mu.RLock()
		enc.schema(t.schema)
		// Secondary indexes (the PK index is implied by the schema).
		var secondary []*index
		for _, ix := range t.indexes {
			if ix != t.pkIndex {
				secondary = append(secondary, ix)
			}
		}
		sort.Slice(secondary, func(i, j int) bool { return secondary[i].info.Name < secondary[j].info.Name })
		enc.uvarint(uint64(len(secondary)))
		for _, ix := range secondary {
			encodeIndexInfo(enc, ix.info)
		}
		// Committed-visible rows only.
		var rows []*version
		for i := range t.versions {
			if e.visible(&t.versions[i], snap, 0) {
				rows = append(rows, &t.versions[i])
			}
		}
		enc.uvarint(uint64(len(rows)))
		for _, v := range rows {
			enc.uvarint(uint64(v.rid))
			enc.row(v.row)
		}
		t.mu.RUnlock()
	}
	if err := enc.flush(); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], cw.h.Sum32())
	_, err := w.Write(crcBuf[:])
	return err
}

// loadSnapshot restores engine state from a snapshot file. A missing file
// is not an error (fresh database); a corrupt file is.
func (e *Engine) loadSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: open snapshot: %w", err)
	}
	if err := e.restoreState(raw, path); err != nil {
		return err
	}
	// Only the durable open path owns the process-wide epoch gauge; a
	// replica restoring a bootstrap dump must not stomp the primary's.
	gSnapshotEpoch.Set(int64(e.epoch))
	return nil
}

// OpenFromDump builds a fresh in-memory engine from a DumpState image —
// the replica-bootstrap entry point. The dump's CRC and structure are
// verified like an on-disk snapshot's.
func OpenFromDump(raw []byte) (*Engine, error) {
	e := &Engine{
		tables:    make(map[string]*table),
		txActive:  make(map[uint64]bool),
		txAborted: make(map[uint64]bool),
		seqs:      make(map[string]int64),
	}
	e.nextTxID.Store(1)
	e.nextRID.Store(1)
	if err := e.restoreState(raw, "dump"); err != nil {
		return nil, err
	}
	return e, nil
}

// restoreState decodes a snapshot image into the engine. src names the
// image origin for error messages. Single-threaded: callers run before
// the engine is published.
func (e *Engine) restoreState(raw []byte, src string) error {
	path := src
	if len(raw) < 4 {
		return fmt.Errorf("storage: snapshot %s truncated", path)
	}
	body, crcBytes := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(crcBytes) {
		return fmt.Errorf("storage: snapshot %s checksum mismatch", path)
	}
	dec := newDecoder(bytes.NewReader(body))

	if magic := dec.str(); magic != snapshotMagic {
		return fmt.Errorf("storage: snapshot %s: bad magic %q", path, magic)
	}
	e.epoch = dec.uvarint()
	nextRID := dec.uvarint()
	nextTx := dec.uvarint()
	nseq := dec.uvarint()
	if dec.err != nil || nseq > 1<<20 {
		return fmt.Errorf("storage: snapshot %s corrupt (sequences)", path)
	}
	for i := uint64(0); i < nseq; i++ {
		name := dec.str()
		v := dec.varint()
		if dec.err == nil {
			e.seqs[name] = v
		}
	}
	ntab := dec.uvarint()
	if dec.err != nil || ntab > 1<<20 {
		return fmt.Errorf("storage: snapshot %s corrupt (tables)", path)
	}
	for i := uint64(0); i < ntab; i++ {
		s := dec.schema()
		if dec.err != nil {
			return fmt.Errorf("storage: snapshot %s corrupt: %v", path, dec.err)
		}
		t := &table{schema: s, byRID: make(map[RID]rowID), indexes: make(map[string]*index)}
		nix := dec.uvarint()
		if dec.err != nil || nix > 1<<12 {
			return fmt.Errorf("storage: snapshot %s corrupt (indexes)", path)
		}
		infos := make([]IndexInfo, nix)
		for j := range infos {
			infos[j] = decodeIndexInfo(dec)
		}
		nrows := dec.uvarint()
		if dec.err != nil || nrows > maxBlob {
			return fmt.Errorf("storage: snapshot %s corrupt (rows)", path)
		}
		t.versions = make([]version, 0, nrows)
		for j := uint64(0); j < nrows; j++ {
			rid := RID(dec.uvarint())
			row := dec.row()
			if dec.err != nil {
				return fmt.Errorf("storage: snapshot %s corrupt: %v", path, dec.err)
			}
			t.byRID[rid] = rowID(len(t.versions))
			t.versions = append(t.versions, version{rid: rid, row: row})
		}
		if len(s.PrimaryKey) > 0 {
			pk := e.buildIndex(t, IndexInfo{
				Name:    s.Name + "_pkey",
				Table:   s.Name,
				Columns: append([]string(nil), s.PrimaryKey...),
				Unique:  true,
				Kind:    IndexBTree,
			})
			t.pkIndex = pk
			t.indexes[lowerName(pk.info.Name)] = pk
		}
		for _, info := range infos {
			t.indexes[lowerName(info.Name)] = e.buildIndex(t, info)
		}
		e.tables[lowerName(s.Name)] = t
	}
	if dec.err != nil {
		return fmt.Errorf("storage: snapshot %s corrupt: %v", path, dec.err)
	}
	if nextRID > e.nextRID.Load() {
		e.nextRID.Store(nextRID)
	}
	if nextTx > e.nextTxID.Load() {
		e.nextTxID.Store(nextTx)
	}
	return nil
}
