package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func openDir(t testing.TB, dir string, mode SyncMode) *Engine {
	t.Helper()
	e, err := Open(Options{Dir: dir, Sync: mode})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return e
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex(IndexInfo{Name: "users_name", Table: "users", Columns: []string{"name"}, Kind: IndexBTree}); err != nil {
		t.Fatal(err)
	}
	rids := mustInsert(t, e, "users",
		Row{int64(1), "ada", int64(36), true},
		Row{int64(2), "grace", int64(45), false},
		Row{int64(3), "edsger", int64(72), true},
	)
	e.Update(func(tx *Tx) error { return tx.DeleteRID("users", rids[1]) })
	e.NextSequence("jobs")
	e.NextSequence("jobs")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot is absent, everything comes from WAL replay.
	e2 := openDir(t, dir, SyncBuffered)
	defer e2.Close()
	var names []string
	e2.View(func(tx *Tx) error {
		return tx.Scan("users", func(_ RID, row Row) bool {
			names = append(names, row[1].(string))
			return true
		})
	})
	if len(names) != 2 {
		t.Fatalf("recovered %d rows, want 2: %v", len(names), names)
	}
	if v := e2.SequenceValue("jobs"); v != 2 {
		t.Errorf("recovered sequence = %d, want 2", v)
	}
	// The secondary index must be functional after replay.
	hits := 0
	e2.View(func(tx *Tx) error {
		return tx.LookupEqual("users", "users_name", []Value{"ada"}, func(RID, Row) bool {
			hits++
			return true
		})
	})
	if hits != 1 {
		t.Errorf("index after recovery: %d hits", hits)
	}
	// New writes must not collide with recovered RIDs.
	newRIDs := mustInsert(t, e2, "users", Row{int64(4), "barbara", int64(28), true})
	for _, old := range rids {
		if newRIDs[0] == old {
			t.Error("RID reused after recovery")
		}
	}
}

func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir, SyncNone)
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustInsert(t, e, "users", Row{int64(i), fmt.Sprintf("u%d", i), int64(i), true})
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes land in the fresh WAL.
	mustInsert(t, e, "users", Row{int64(1000), "late", nil, nil})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openDir(t, dir, SyncNone)
	defer e2.Close()
	e2.View(func(tx *Tx) error {
		n, _ := tx.Count("users")
		if n != 101 {
			t.Errorf("recovered %d rows, want 101", n)
		}
		return nil
	})
	sch, err := e2.Schema("users")
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.PrimaryKey) != 1 || sch.PrimaryKey[0] != "id" {
		t.Errorf("recovered schema pk = %v", sch.PrimaryKey)
	}
	// PK uniqueness must survive the snapshot round-trip.
	err = e2.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(5), "dup", nil, nil})
		return err
	})
	if err == nil {
		t.Error("pk constraint lost after checkpoint recovery")
	}
}

func TestTornWALTailIgnored(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "ok", nil, nil})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage bytes at the tail.
	walPath := filepath.Join(dir, walFile)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x00, 0xFF, 0x01, 0x02})
	f.Close()

	e2 := openDir(t, dir, SyncBuffered)
	e2.View(func(tx *Tx) error {
		n, _ := tx.Count("users")
		if n != 1 {
			t.Errorf("recovered %d rows, want 1", n)
		}
		return nil
	})
	// The torn tail must have been truncated so new commits append cleanly.
	mustInsert(t, e2, "users", Row{int64(2), "after", nil, nil})
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3 := openDir(t, dir, SyncBuffered)
	defer e3.Close()
	e3.View(func(tx *Tx) error {
		n, _ := tx.Count("users")
		if n != 2 {
			t.Errorf("after truncate+append, recovered %d rows, want 2", n)
		}
		return nil
	})
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir, SyncNone)
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "x", nil, nil})
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	path := filepath.Join(dir, snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestSyncFullDurability(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir, SyncFull)
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "durable", nil, nil})
	// Reopen WITHOUT closing (the file was fsynced per commit; a second
	// engine reading the same files sees the committed data).
	e2 := openDir(t, dir, SyncFull)
	defer e2.Close()
	e2.View(func(tx *Tx) error {
		n, _ := tx.Count("users")
		if n != 1 {
			t.Errorf("sync-full commit lost: %d rows", n)
		}
		return nil
	})
	e.Close()
}

// Property: any committed batch of typed rows survives a WAL round-trip
// bit-for-bit (codec fidelity).
func TestWALRowFidelityQuick(t *testing.T) {
	type rec struct {
		I int64
		F float64
		S string
		B bool
	}
	f := func(recs []rec) bool {
		dir := t.TempDir()
		e := openDir(t, dir, SyncBuffered)
		s, _ := NewSchema("r", []Column{
			{Name: "i", Type: TypeInt},
			{Name: "f", Type: TypeFloat},
			{Name: "s", Type: TypeString},
			{Name: "b", Type: TypeBool},
			{Name: "t", Type: TypeTime},
		})
		if err := e.CreateTable(s); err != nil {
			return false
		}
		now := time.Now().UTC().Truncate(time.Microsecond)
		err := e.Update(func(tx *Tx) error {
			for _, r := range recs {
				if _, err := tx.Insert("r", Row{r.I, r.F, r.S, r.B, now}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return false
		}
		e.Close()
		e2 := openDir(t, dir, SyncBuffered)
		defer e2.Close()
		var got []Row
		e2.View(func(tx *Tx) error {
			return tx.Scan("r", func(_ RID, row Row) bool {
				got = append(got, row.Clone())
				return true
			})
		})
		if len(got) != len(recs) {
			return false
		}
		for i, r := range recs {
			row := got[i]
			if row[0] != r.I || row[2] != r.S || row[3] != r.B {
				return false
			}
			gf := row[1].(float64)
			if gf != r.F && !(gf != gf && r.F != r.F) { // NaN-safe compare
				return false
			}
			if !row[4].(time.Time).Equal(now) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCheckpointVacuumCompacts(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir, SyncNone)
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustInsert(t, e, "users", Row{int64(i), "x", nil, nil})
	}
	e.Update(func(tx *Tx) error {
		return tx.Scan("users", func(rid RID, row Row) bool {
			if row[0].(int64)%2 == 0 {
				tx.DeleteRID("users", rid)
			}
			return true
		})
	})
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tbl, err := e.getTable("users")
	if err != nil {
		t.Fatal(err)
	}
	tbl.mu.RLock()
	nv := len(tbl.versions)
	tbl.mu.RUnlock()
	if nv != 50 {
		t.Errorf("versions after vacuum = %d, want 50", nv)
	}
	e.Close()
}

func TestInMemoryCheckpointNoop(t *testing.T) {
	e := MustOpenMemory()
	defer e.Close()
	if err := e.Checkpoint(); err != nil {
		t.Errorf("in-memory checkpoint: %v", err)
	}
}

func TestAutoVacuumOnUpdateHeavyTable(t *testing.T) {
	e := MustOpenMemory()
	defer e.Close()
	s, _ := NewSchema("counter", []Column{
		{Name: "k", Type: TypeString, NotNull: true},
		{Name: "v", Type: TypeInt},
	}, "k")
	if err := e.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "counter", Row{"hits", int64(0)})
	// Hammer the same row with updates: without auto-vacuum the version
	// slice and pk posting list would grow with every update.
	for i := 0; i < 3*vacuumThreshold; i++ {
		err := e.Update(func(tx *Tx) error {
			var rid RID
			var cur int64
			tx.LookupEqual("counter", "counter_pkey", []Value{"hits"}, func(r RID, row Row) bool {
				rid, cur = r, row[1].(int64)
				return false
			})
			_, err := tx.UpdateRID("counter", rid, Row{"hits", cur + 1})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := e.getTable("counter")
	if err != nil {
		t.Fatal(err)
	}
	tbl.mu.RLock()
	nv := len(tbl.versions)
	tbl.mu.RUnlock()
	if nv > vacuumThreshold+8 {
		t.Errorf("versions = %d; auto-vacuum did not reclaim", nv)
	}
	// The value survived every vacuum.
	e.View(func(tx *Tx) error {
		return tx.LookupEqual("counter", "counter_pkey", []Value{"hits"}, func(_ RID, row Row) bool {
			if row[1] != int64(3*vacuumThreshold) {
				t.Errorf("counter = %v", row[1])
			}
			return false
		})
	})
}

func TestVacuumSkippedWhileTxActive(t *testing.T) {
	e := newTestEngine(t)
	mustInsert(t, e, "users", Row{int64(1), "a", nil, nil})
	reader := e.Begin()
	defer reader.Rollback()
	if e.Vacuum() {
		t.Error("vacuum ran with an active transaction")
	}
	reader.Rollback()
	if !e.Vacuum() {
		t.Error("vacuum refused with no active transactions")
	}
}

// TestWALPrefixConsistency simulates a crash at every possible WAL
// truncation point: recovery from any prefix of the log must yield a
// state equal to some prefix of the committed transaction sequence —
// never a partially applied transaction.
func TestWALPrefixConsistency(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	s, _ := NewSchema("kv", []Column{
		{Name: "k", Type: TypeInt, NotNull: true},
		{Name: "v", Type: TypeInt},
	}, "k")
	if err := e.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	// 10 committed transactions, each writing 3 rows (keys i*10+j).
	const txs, per = 10, 3
	for i := 0; i < txs; i++ {
		err := e.Update(func(tx *Tx) error {
			for j := 0; j < per; j++ {
				if _, err := tx.Insert("kv", Row{int64(i*100 + j), int64(i)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFile)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Step through truncation points (every 7 bytes keeps runtime sane
	// while hitting offsets inside every frame).
	for cut := 0; cut <= len(full); cut += 7 {
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, walFile), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e2, err := Open(Options{Dir: crashDir, Sync: SyncBuffered})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if !e2.HasTable("kv") {
			// The cut fell before the CREATE TABLE record: an empty,
			// writable engine is the correct recovery.
			if err := e2.CreateTable(s); err != nil {
				t.Fatalf("cut %d: post-recovery DDL: %v", cut, err)
			}
			e2.Close()
			continue
		}
		rows := map[int64]int64{}
		e2.View(func(tx *Tx) error {
			return tx.Scan("kv", func(_ RID, row Row) bool {
				rows[row[0].(int64)] = row[1].(int64)
				return true
			})
		})
		// Row count must be a multiple of the per-tx batch: no torn tx.
		if len(rows)%per != 0 {
			t.Fatalf("cut %d: %d rows recovered — partial transaction applied", cut, len(rows))
		}
		// And the recovered set must be exactly the first n transactions.
		n := len(rows) / per
		for i := 0; i < n; i++ {
			for j := 0; j < per; j++ {
				if v, ok := rows[int64(i*100+j)]; !ok || v != int64(i) {
					t.Fatalf("cut %d: tx %d row %d wrong (v=%d ok=%v)", cut, i, j, v, ok)
				}
			}
		}
		// The engine must accept new commits after recovery.
		err = e2.Update(func(tx *Tx) error {
			_, err := tx.Insert("kv", Row{int64(999999), int64(1)})
			return err
		})
		if err != nil {
			t.Fatalf("cut %d: post-recovery write: %v", cut, err)
		}
		e2.Close()
	}
}
