package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/odbis/odbis/internal/fault"
)

// These tests arm each storage fault point in error mode and assert the
// documented recovery semantics: clean aborts stay non-sticky, physical
// write failures latch the WAL read-only, and a successful checkpoint
// heals the latch. Crash-mode coverage of the same points lives in
// crash_test.go.

func countRows(t *testing.T, e *Engine, table string) int {
	t.Helper()
	var n int
	err := e.View(func(tx *Tx) error {
		var err error
		n, err = tx.Count(table)
		return err
	})
	if err != nil {
		t.Fatalf("count %s: %v", table, err)
	}
	return n
}

// StorageWALAppend fires before any byte reaches the file: the commit
// fails, the transaction aborts, and the WAL stays healthy.
func TestFaultWALAppendCleanAbort(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	defer e.Close()
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}

	if err := fault.Arm(fault.StorageWALAppend, fault.Behavior{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	err := e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(1), "ada", int64(36), true})
		return err
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("commit under armed append point: err = %v, want ErrInjected", err)
	}
	fault.Reset()

	// The failure was pre-write: nothing is latched and the next commit
	// must go through.
	mustInsert(t, e, "users", Row{int64(2), "grace", int64(45), false})
	if n := countRows(t, e, "users"); n != 1 {
		t.Fatalf("rows after clean abort = %d, want 1 (aborted insert must not be visible)", n)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openDir(t, dir, SyncBuffered)
	defer e2.Close()
	if n := countRows(t, e2, "users"); n != 1 {
		t.Fatalf("rows after reopen = %d, want 1", n)
	}
}

// StorageWALAppendMid fires after the frame header is on disk: the log
// tail is torn, the failure latches, and every later commit fails fast
// until a checkpoint rebuilds the log — after which writes flow again
// and a reopen sees exactly the committed prefix.
func TestFaultWALTornWriteLatchesAndCheckpointHeals(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	defer e.Close()
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "ada", int64(36), true})

	if err := fault.Arm(fault.StorageWALAppendMid, fault.Behavior{Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	err := e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(2), "grace", int64(45), false})
		return err
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn write: err = %v, want ErrInjected", err)
	}

	// The point is exhausted (Count=1) but the latch must hold: the
	// on-disk tail is suspect, so acknowledging more commits would
	// diverge memory from disk.
	err = e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(3), "edsger", int64(72), true})
		return err
	})
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("commit after torn write: err = %v, want ErrWALFailed", err)
	}

	// Checkpoint rewrites state from memory and resets the log: healed.
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("healing checkpoint: %v", err)
	}
	mustInsert(t, e, "users", Row{int64(4), "barbara", int64(28), true})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openDir(t, dir, SyncBuffered)
	defer e2.Close()
	// ada (pre-fault) + barbara (post-heal); the torn and latched-out
	// transactions aborted.
	if n := countRows(t, e2, "users"); n != 2 {
		t.Fatalf("rows after heal+reopen = %d, want 2", n)
	}
}

// A torn tail with no checkpoint: closing and reopening must truncate
// the partial frame and recover the committed prefix.
func TestFaultTornTailTruncatedOnReopen(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "ada", int64(36), true})
	if err := fault.Arm(fault.StorageWALAppendMid, fault.Behavior{Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(2), "grace", int64(45), false})
		return err
	})
	fault.Reset()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openDir(t, dir, SyncBuffered)
	defer e2.Close()
	if n := countRows(t, e2, "users"); n != 1 {
		t.Fatalf("rows after torn-tail reopen = %d, want 1", n)
	}
	// The truncated log must accept appends again.
	mustInsert(t, e2, "users", Row{int64(5), "tony", int64(60), true})
	if n := countRows(t, e2, "users"); n != 2 {
		t.Fatalf("rows after post-recovery insert = %d, want 2", n)
	}
}

// StorageWALSync fires before the fsync of a SyncFull commit: the commit
// must not be acknowledged, and the failure latches like any physical
// sync error.
func TestFaultWALSyncSticky(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	e := openDir(t, dir, SyncFull)
	defer e.Close()
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "ada", int64(36), true})

	if err := fault.Arm(fault.StorageWALSync, fault.Behavior{Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	err := e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(2), "grace", int64(45), false})
		return err
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("commit under armed sync point: err = %v, want ErrInjected", err)
	}
	err = e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(3), "edsger", int64(72), true})
		return err
	})
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("commit after failed sync: err = %v, want ErrWALFailed", err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("healing checkpoint: %v", err)
	}
	mustInsert(t, e, "users", Row{int64(4), "barbara", int64(28), true})
	if n := countRows(t, e, "users"); n != 2 {
		t.Fatalf("rows after heal = %d, want 2", n)
	}
}

// StorageSnapshotWrite fires while the temp snapshot is being written:
// Checkpoint must fail without disturbing the live snapshot or the WAL,
// and the engine stays fully writable.
func TestFaultSnapshotWriteFails(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	defer e.Close()
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "ada", int64(36), true})
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(2), "grace", int64(45), false})

	if err := fault.Arm(fault.StorageSnapshotWrite, fault.Behavior{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint under armed snapshot-write point: err = %v, want ErrInjected", err)
	}
	fault.Reset()

	if _, err := os.Stat(filepath.Join(dir, snapshotFile+".tmp")); !os.IsNotExist(err) {
		t.Errorf("temp snapshot left behind after failed checkpoint (stat err = %v)", err)
	}
	// Still writable, and a reopen recovers everything: the old snapshot
	// plus the WAL it matches.
	mustInsert(t, e, "users", Row{int64(3), "edsger", int64(72), true})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openDir(t, dir, SyncBuffered)
	defer e2.Close()
	if n := countRows(t, e2, "users"); n != 3 {
		t.Fatalf("rows after failed-checkpoint reopen = %d, want 3", n)
	}
}

// StorageSnapshotRename fires between the temp write and the atomic
// publish: same guarantees as a failed write — nothing published,
// nothing lost.
func TestFaultSnapshotRenameFails(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	defer e.Close()
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "ada", int64(36), true})

	if err := fault.Arm(fault.StorageSnapshotRename, fault.Behavior{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint under armed rename point: err = %v, want ErrInjected", err)
	}
	fault.Reset()

	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
		t.Errorf("snapshot published despite failed rename point (stat err = %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile+".tmp")); !os.IsNotExist(err) {
		t.Errorf("temp snapshot left behind (stat err = %v)", err)
	}
	mustInsert(t, e, "users", Row{int64(2), "grace", int64(45), false})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openDir(t, dir, SyncBuffered)
	defer e2.Close()
	if n := countRows(t, e2, "users"); n != 2 {
		t.Fatalf("rows after reopen = %d, want 2", n)
	}
}

// StorageWALTruncate fires after the new snapshot is published but
// before the WAL reset. This is the dangerous window: the on-disk WAL is
// now stale relative to the snapshot. The failure must latch the WAL
// (appending to a log recovery will discard is acknowledging lies), a
// later checkpoint must heal it, and a reopen must recover from the new
// snapshot while discarding the stale log.
func TestFaultWALTruncateLatchesAndRecoveryDiscardsStaleLog(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	defer e.Close()
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "ada", int64(36), true})

	if err := fault.Arm(fault.StorageWALTruncate, fault.Behavior{Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint under armed truncate point: err = %v, want ErrInjected", err)
	}

	// Snapshot is published, WAL is stale: commits must fail fast.
	err := e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(2), "grace", int64(45), false})
		return err
	})
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("commit into stale WAL: err = %v, want ErrWALFailed", err)
	}

	// A clean reopen at this exact state must serve the snapshot and
	// discard the stale log (same data: the snapshot contains the WAL's
	// records).
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openDir(t, dir, SyncBuffered)
	if n := countRows(t, e2, "users"); n != 1 {
		t.Fatalf("rows after stale-log reopen = %d, want 1", n)
	}
	// And the restamped WAL accepts appends again.
	mustInsert(t, e2, "users", Row{int64(3), "edsger", int64(72), true})
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3 := openDir(t, dir, SyncBuffered)
	defer e3.Close()
	if n := countRows(t, e3, "users"); n != 2 {
		t.Fatalf("rows after second reopen = %d, want 2", n)
	}
}

// A healing checkpoint directly after the truncate failure (no restart)
// must also clear the latch.
func TestFaultWALTruncateHealedByRetry(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	e := openDir(t, dir, SyncBuffered)
	defer e.Close()
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "ada", int64(36), true})
	if err := fault.Arm(fault.StorageWALTruncate, fault.Behavior{Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint: err = %v, want ErrInjected", err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("retry checkpoint: %v", err)
	}
	mustInsert(t, e, "users", Row{int64(2), "grace", int64(45), false})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openDir(t, dir, SyncBuffered)
	defer e2.Close()
	if n := countRows(t, e2, "users"); n != 2 {
		t.Fatalf("rows after heal = %d, want 2", n)
	}
}
