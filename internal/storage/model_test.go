package storage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEngineAgainstMapModel drives random committed operation sequences
// through the engine and a plain map model in lockstep, then checks that
// scans, pk lookups and counts agree. It exercises insert/update/delete,
// rollbacks (which must not change the model), and interleaved vacuums.
func TestEngineAgainstMapModel(t *testing.T) {
	type op struct {
		Kind uint8 // insert/update/delete/rollback-insert/vacuum
		Key  uint8 // pk space 0..31 keeps collisions frequent
		Val  int16
	}
	f := func(ops []op, seed int64) bool {
		e := MustOpenMemory()
		defer e.Close()
		s, err := NewSchema("kv",
			[]Column{
				{Name: "k", Type: TypeInt, NotNull: true},
				{Name: "v", Type: TypeInt},
			}, "k")
		if err != nil {
			return false
		}
		if err := e.CreateTable(s); err != nil {
			return false
		}
		model := map[int64]int64{}
		rng := rand.New(rand.NewSource(seed))

		findRID := func(tx *Tx, k int64) (RID, bool) {
			var rid RID
			found := false
			tx.LookupEqual("kv", "kv_pkey", []Value{k}, func(r RID, _ Row) bool {
				rid, found = r, true
				return false
			})
			return rid, found
		}

		for _, o := range ops {
			k := int64(o.Key % 32)
			v := int64(o.Val)
			switch o.Kind % 5 {
			case 0: // insert (skip when key exists)
				if _, exists := model[k]; exists {
					continue
				}
				err := e.Update(func(tx *Tx) error {
					_, err := tx.Insert("kv", Row{k, v})
					return err
				})
				if err != nil {
					return false
				}
				model[k] = v
			case 1: // update existing
				if _, exists := model[k]; !exists {
					continue
				}
				err := e.Update(func(tx *Tx) error {
					rid, ok := findRID(tx, k)
					if !ok {
						return fmt.Errorf("model/engine divergence: key %d missing", k)
					}
					_, err := tx.UpdateRID("kv", rid, Row{k, v})
					return err
				})
				if err != nil {
					return false
				}
				model[k] = v
			case 2: // delete existing
				if _, exists := model[k]; !exists {
					continue
				}
				err := e.Update(func(tx *Tx) error {
					rid, ok := findRID(tx, k)
					if !ok {
						return fmt.Errorf("model/engine divergence: key %d missing", k)
					}
					return tx.DeleteRID("kv", rid)
				})
				if err != nil {
					return false
				}
				delete(model, k)
			case 3: // rolled-back mutation must not change anything
				tx := e.Begin()
				if _, exists := model[k]; exists {
					if rid, ok := findRID(tx, k); ok {
						tx.DeleteRID("kv", rid)
					}
				} else {
					tx.Insert("kv", Row{k, v})
				}
				tx.Rollback()
			case 4: // occasional explicit vacuum
				if rng.Intn(4) == 0 {
					e.Vacuum()
				}
			}
		}

		// Compare final states three ways.
		got := map[int64]int64{}
		err = e.View(func(tx *Tx) error {
			return tx.Scan("kv", func(_ RID, row Row) bool {
				got[row[0].(int64)] = row[1].(int64)
				return true
			})
		})
		if err != nil || len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if got[k] != v {
				return false
			}
		}
		// PK index agrees with the scan.
		err = e.View(func(tx *Tx) error {
			for k, v := range model {
				hits := 0
				tx.LookupEqual("kv", "kv_pkey", []Value{k}, func(_ RID, row Row) bool {
					hits++
					if row[1].(int64) != v {
						hits = -999
					}
					return true
				})
				if hits != 1 {
					return fmt.Errorf("pk index wrong for %d", k)
				}
			}
			n, _ := tx.Count("kv")
			if n != len(model) {
				return fmt.Errorf("count %d != %d", n, len(model))
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEngineModelSurvivesRestart extends the model check across a WAL
// recovery: the recovered engine must equal the model exactly.
func TestEngineModelSurvivesRestart(t *testing.T) {
	type op struct {
		Key uint8
		Val int16
		Del bool
	}
	f := func(ops []op) bool {
		dir := t.TempDir()
		e, err := Open(Options{Dir: dir, Sync: SyncBuffered})
		if err != nil {
			return false
		}
		s, _ := NewSchema("kv",
			[]Column{
				{Name: "k", Type: TypeInt, NotNull: true},
				{Name: "v", Type: TypeInt},
			}, "k")
		if err := e.CreateTable(s); err != nil {
			return false
		}
		model := map[int64]int64{}
		for _, o := range ops {
			k := int64(o.Key % 16)
			if o.Del {
				if _, exists := model[k]; !exists {
					continue
				}
				err := e.Update(func(tx *Tx) error {
					var rid RID
					found := false
					tx.LookupEqual("kv", "kv_pkey", []Value{k}, func(r RID, _ Row) bool {
						rid, found = r, true
						return false
					})
					if !found {
						return fmt.Errorf("missing key")
					}
					return tx.DeleteRID("kv", rid)
				})
				if err != nil {
					return false
				}
				delete(model, k)
				continue
			}
			if _, exists := model[k]; exists {
				continue
			}
			if err := e.Update(func(tx *Tx) error {
				_, err := tx.Insert("kv", Row{k, int64(o.Val)})
				return err
			}); err != nil {
				return false
			}
			model[k] = int64(o.Val)
		}
		if err := e.Close(); err != nil {
			return false
		}
		e2, err := Open(Options{Dir: dir, Sync: SyncBuffered})
		if err != nil {
			return false
		}
		defer e2.Close()
		got := map[int64]int64{}
		e2.View(func(tx *Tx) error {
			return tx.Scan("kv", func(_ RID, row Row) bool {
				got[row[0].(int64)] = row[1].(int64)
				return true
			})
		})
		if len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
