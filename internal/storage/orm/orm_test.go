package orm

import (
	"testing"
	"time"

	"github.com/odbis/odbis/internal/storage"
)

type account struct {
	ID        int64  `orm:"id,pk"`
	Email     string `orm:"email,notnull,unique"`
	Tenant    string `orm:"tenant,index"`
	Balance   float64
	Active    bool
	CreatedAt time.Time
	Note      []byte
	skip      int    // unexported: ignored
	Temp      string `orm:"-"`
}

func newMapper(t *testing.T) (*storage.Engine, *Mapper[account]) {
	t.Helper()
	e := storage.MustOpenMemory()
	t.Cleanup(func() { e.Close() })
	m, err := NewMapper[account](e, "accounts")
	if err != nil {
		t.Fatalf("NewMapper: %v", err)
	}
	return e, m
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"ID":           "id",
		"DataSourceID": "data_source_id",
		"CreatedAt":    "created_at",
		"HTMLBody":     "html_body",
		"Name":         "name",
	}
	for in, want := range cases {
		if got := SnakeCase(in); got != want {
			t.Errorf("SnakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMapperSchema(t *testing.T) {
	_, m := newMapper(t)
	s := m.Schema()
	if s.Name != "accounts" {
		t.Errorf("table = %s", s.Name)
	}
	wantCols := []string{"id", "email", "tenant", "balance", "active", "created_at", "note"}
	if len(s.Columns) != len(wantCols) {
		t.Fatalf("columns = %v", s.ColumnNames())
	}
	for i, w := range wantCols {
		if s.Columns[i].Name != w {
			t.Errorf("column %d = %s, want %s", i, s.Columns[i].Name, w)
		}
	}
	if len(s.PrimaryKey) != 1 || s.PrimaryKey[0] != "id" {
		t.Errorf("pk = %v", s.PrimaryKey)
	}
}

func TestSaveGetRoundTrip(t *testing.T) {
	_, m := newMapper(t)
	now := time.Now().UTC().Truncate(time.Microsecond)
	a := account{ID: 1, Email: "ada@odbis.io", Tenant: "acme", Balance: 12.5, Active: true, CreatedAt: now, Note: []byte("hi")}
	if err := m.Insert(&a); err != nil {
		t.Fatal(err)
	}
	got, ok, err := m.Get(1)
	if err != nil || !ok {
		t.Fatalf("Get: %v ok=%v", err, ok)
	}
	if got.Email != a.Email || got.Balance != a.Balance || !got.Active || !got.CreatedAt.Equal(now) || string(got.Note) != "hi" {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Temp != "" || got.skip != 0 {
		t.Error("ignored fields leaked")
	}
}

func TestSaveUpsert(t *testing.T) {
	_, m := newMapper(t)
	a := account{ID: 1, Email: "a@x", Tenant: "t"}
	if err := m.Save(&a); err != nil {
		t.Fatal(err)
	}
	a.Email = "b@x"
	if err := m.Save(&a); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	n, _ := m.Count()
	if n != 1 {
		t.Errorf("count after upsert = %d", n)
	}
	got, _, _ := m.Get(1)
	if got.Email != "b@x" {
		t.Errorf("email = %s", got.Email)
	}
	// Insert (not Save) on an existing pk must fail.
	if err := m.Insert(&a); err == nil {
		t.Error("duplicate Insert accepted")
	}
}

func TestUniqueTagEnforced(t *testing.T) {
	_, m := newMapper(t)
	if err := m.Insert(&account{ID: 1, Email: "same@x"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(&account{ID: 2, Email: "same@x"}); err == nil {
		t.Error("unique tag not enforced")
	}
}

func TestWhereUsesIndexAndScan(t *testing.T) {
	e, m := newMapper(t)
	for i := int64(1); i <= 10; i++ {
		tenant := "a"
		if i%2 == 0 {
			tenant = "b"
		}
		if err := m.Insert(&account{ID: i, Email: string(rune('a'+i)) + "@x", Tenant: tenant, Balance: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// tenant has an index.
	got, err := m.Where("tenant", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("Where(tenant=b) = %d rows", len(got))
	}
	// balance has no index: scan path.
	got, err = m.Where("balance", 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 3 {
		t.Errorf("Where(balance=3) = %+v", got)
	}
	if _, err := m.Where("nope", 1); err == nil {
		t.Error("unknown column accepted")
	}
	_ = e
}

func TestDeleteAndAll(t *testing.T) {
	_, m := newMapper(t)
	for i := int64(1); i <= 3; i++ {
		if err := m.Insert(&account{ID: i, Email: string(rune('a'+i)) + "@x"}); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := m.Delete(2)
	if err != nil || !ok {
		t.Fatalf("Delete: %v ok=%v", err, ok)
	}
	ok, err = m.Delete(2)
	if err != nil || ok {
		t.Fatalf("second Delete: %v ok=%v", err, ok)
	}
	all, err := m.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].ID != 1 || all[1].ID != 3 {
		t.Errorf("All = %+v", all)
	}
}

func TestZeroTimeStoredAsNull(t *testing.T) {
	_, m := newMapper(t)
	if err := m.Insert(&account{ID: 1, Email: "a@x"}); err != nil {
		t.Fatal(err)
	}
	got, _, _ := m.Get(1)
	if !got.CreatedAt.IsZero() {
		t.Errorf("zero time round trip = %v", got.CreatedAt)
	}
}

func TestMapperRejectsBadTypes(t *testing.T) {
	e := storage.MustOpenMemory()
	defer e.Close()
	type bad struct {
		M map[string]int
	}
	if _, err := NewMapper[bad](e, ""); err == nil {
		t.Error("map field accepted")
	}
	type empty struct{ hidden int }
	if _, err := NewMapper[empty](e, ""); err == nil {
		t.Error("struct without persistable fields accepted")
	}
	type twoPK struct {
		A int64 `orm:"a,pk"`
		B int64 `orm:"b,pk"`
	}
	if _, err := NewMapper[twoPK](e, ""); err == nil {
		t.Error("two pk fields accepted")
	}
}

func TestMapperReopenExistingTable(t *testing.T) {
	e := storage.MustOpenMemory()
	defer e.Close()
	m1, err := NewMapper[account](e, "accounts")
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Insert(&account{ID: 1, Email: "a@x"}); err != nil {
		t.Fatal(err)
	}
	// A second mapper over the same engine reuses the existing table.
	m2, err := NewMapper[account](e, "accounts")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := m2.Count()
	if n != 1 {
		t.Errorf("second mapper sees %d rows", n)
	}
}
