// Package orm is a small object-relational mapper over the storage
// engine, the stand-in for the JPA/Hibernate persistence layer of the
// paper's technical architecture (Fig. 5). Domain structs are mapped to
// tables via `orm` struct tags; the mapper derives schemas, persists
// structs, and loads them back.
//
// Tag grammar, on exported fields only:
//
//	orm:"column_name[,pk][,notnull][,index][,unique]"
//	orm:"-"                 // field is not persisted
//
// Untagged exported fields map to the snake_case of the field name.
// Supported field types: integer kinds, float kinds, string, bool,
// time.Time, []byte.
package orm

import (
	"fmt"
	"reflect"
	"strings"
	"time"
	"unicode"

	"github.com/odbis/odbis/internal/storage"
)

// Mapper persists one struct type T to one table.
type Mapper[T any] struct {
	e      *storage.Engine
	schema *storage.Schema
	fields []fieldInfo
	pkCol  int // position of the single pk column, -1 when absent
}

type fieldInfo struct {
	structIdx int
	column    string
	typ       storage.Type
	pk        bool
	notNull   bool
	index     bool
	unique    bool
}

// NewMapper inspects T, creates the backing table (and tagged indexes) if
// missing, and returns a mapper. The table name is the snake_case plural
// of the struct name unless overridden.
func NewMapper[T any](e *storage.Engine, tableName string) (*Mapper[T], error) {
	var zero T
	rt := reflect.TypeOf(zero)
	if rt == nil || rt.Kind() != reflect.Struct {
		return nil, fmt.Errorf("orm: type parameter must be a struct, got %T", zero)
	}
	if tableName == "" {
		tableName = SnakeCase(rt.Name())
	}
	m := &Mapper[T]{e: e, pkCol: -1}
	cols := make([]storage.Column, 0, rt.NumField())
	pk := make([]string, 0, 1)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("orm")
		if tag == "-" {
			continue
		}
		info := fieldInfo{structIdx: i, column: SnakeCase(f.Name)}
		parts := strings.Split(tag, ",")
		if parts[0] != "" {
			info.column = parts[0]
		}
		for _, opt := range parts[1:] {
			switch strings.TrimSpace(opt) {
			case "pk":
				info.pk = true
				info.notNull = true
			case "notnull":
				info.notNull = true
			case "index":
				info.index = true
			case "unique":
				info.unique = true
			case "":
			default:
				return nil, fmt.Errorf("orm: unknown tag option %q on %s.%s", opt, rt.Name(), f.Name)
			}
		}
		st, err := storageType(f.Type)
		if err != nil {
			return nil, fmt.Errorf("orm: field %s.%s: %w", rt.Name(), f.Name, err)
		}
		info.typ = st
		if info.pk {
			if len(pk) > 0 {
				return nil, fmt.Errorf("orm: %s has multiple pk fields", rt.Name())
			}
			pk = append(pk, info.column)
			m.pkCol = len(cols)
		}
		cols = append(cols, storage.Column{Name: info.column, Type: st, NotNull: info.notNull})
		m.fields = append(m.fields, info)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("orm: %s has no persistable fields", rt.Name())
	}
	schema, err := storage.NewSchema(tableName, cols, pk...)
	if err != nil {
		return nil, err
	}
	m.schema = schema
	if !e.HasTable(tableName) {
		if err := e.CreateTable(schema); err != nil {
			return nil, err
		}
		for _, f := range m.fields {
			if !f.index && !f.unique || f.pk {
				continue
			}
			err := e.CreateIndex(storage.IndexInfo{
				Name:    tableName + "_" + f.column + "_ix", //odbis:ignore hotalloc -- the concat IS the index name being created, once per index at table creation
				Table:   tableName,
				Columns: []string{f.column},
				Unique:  f.unique,
				Kind:    storage.IndexBTree,
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// Table returns the mapped table name.
func (m *Mapper[T]) Table() string { return m.schema.Name }

// Schema returns a copy of the derived schema.
func (m *Mapper[T]) Schema() *storage.Schema { return m.schema.Clone() }

func storageType(t reflect.Type) (storage.Type, error) {
	switch t.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return storage.TypeInt, nil
	case reflect.Float32, reflect.Float64:
		return storage.TypeFloat, nil
	case reflect.String:
		return storage.TypeString, nil
	case reflect.Bool:
		return storage.TypeBool, nil
	case reflect.Struct:
		if t == reflect.TypeOf(time.Time{}) {
			return storage.TypeTime, nil
		}
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return storage.TypeBytes, nil
		}
	}
	return storage.TypeInvalid, fmt.Errorf("unsupported field type %s", t)
}

// SnakeCase converts CamelCase to snake_case ("DataSourceID" →
// "data_source_id").
func SnakeCase(s string) string {
	var sb strings.Builder
	runes := []rune(s)
	for i, r := range runes {
		if unicode.IsUpper(r) {
			// Insert an underscore at a lower→Upper boundary or at the end
			// of an acronym run ("ID" in "DataSourceIDx").
			if i > 0 && (unicode.IsLower(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]) && unicode.IsUpper(runes[i-1]))) {
				sb.WriteByte('_')
			}
			sb.WriteRune(unicode.ToLower(r))
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// toRow converts a struct value to a positional row.
func (m *Mapper[T]) toRow(v *T) (storage.Row, error) {
	rv := reflect.ValueOf(v).Elem()
	row := make(storage.Row, len(m.fields))
	for i, f := range m.fields {
		fv := rv.Field(f.structIdx)
		switch f.typ {
		case storage.TypeInt:
			if fv.CanInt() {
				row[i] = fv.Int()
			} else {
				row[i] = int64(fv.Uint())
			}
		case storage.TypeFloat:
			row[i] = fv.Float()
		case storage.TypeString:
			row[i] = fv.String()
		case storage.TypeBool:
			row[i] = fv.Bool()
		case storage.TypeTime:
			ts := fv.Interface().(time.Time)
			if ts.IsZero() {
				row[i] = nil
			} else {
				row[i] = ts
			}
		case storage.TypeBytes:
			b := fv.Bytes()
			if b == nil {
				row[i] = nil
			} else {
				row[i] = append([]byte(nil), b...)
			}
		}
	}
	return row, nil
}

// fromRow populates a struct from a positional row.
func (m *Mapper[T]) fromRow(row storage.Row) (T, error) {
	var out T
	rv := reflect.ValueOf(&out).Elem()
	for i, f := range m.fields {
		v := row[i]
		if v == nil {
			continue // leave zero value
		}
		fv := rv.Field(f.structIdx)
		switch f.typ {
		case storage.TypeInt:
			if fv.CanInt() {
				fv.SetInt(v.(int64))
			} else {
				fv.SetUint(uint64(v.(int64)))
			}
		case storage.TypeFloat:
			fv.SetFloat(v.(float64))
		case storage.TypeString:
			fv.SetString(v.(string))
		case storage.TypeBool:
			fv.SetBool(v.(bool))
		case storage.TypeTime:
			fv.Set(reflect.ValueOf(v.(time.Time)))
		case storage.TypeBytes:
			fv.SetBytes(append([]byte(nil), v.([]byte)...))
		}
	}
	return out, nil
}

// Save inserts v, or replaces the row with the same primary key when one
// exists (upsert semantics, like JPA merge).
func (m *Mapper[T]) Save(v *T) error {
	row, err := m.toRow(v)
	if err != nil {
		return err
	}
	return m.e.Update(func(tx *storage.Tx) error {
		if m.pkCol >= 0 {
			var existing storage.RID
			found := false
			err := tx.LookupEqual(m.schema.Name, m.schema.Name+"_pkey", []storage.Value{row[m.pkCol]},
				func(rid storage.RID, _ storage.Row) bool {
					existing, found = rid, true
					return false
				})
			if err != nil {
				return err
			}
			if found {
				_, err := tx.UpdateRID(m.schema.Name, existing, row)
				return err
			}
		}
		_, err := tx.Insert(m.schema.Name, row)
		return err
	})
}

// Insert adds v, failing on primary-key collision.
func (m *Mapper[T]) Insert(v *T) error {
	row, err := m.toRow(v)
	if err != nil {
		return err
	}
	return m.e.Update(func(tx *storage.Tx) error {
		_, err := tx.Insert(m.schema.Name, row)
		return err
	})
}

// Get loads the struct with the given primary-key value. The boolean
// reports whether it was found.
func (m *Mapper[T]) Get(pk storage.Value) (T, bool, error) {
	var out T
	if m.pkCol < 0 {
		return out, false, fmt.Errorf("orm: %s has no primary key", m.schema.Name)
	}
	found := false
	err := m.e.View(func(tx *storage.Tx) error {
		return tx.LookupEqual(m.schema.Name, m.schema.Name+"_pkey", []storage.Value{storage.Normalize(pk)},
			func(_ storage.RID, row storage.Row) bool {
				out, _ = m.fromRow(row)
				found = true
				return false
			})
	})
	return out, found, err
}

// Delete removes the struct with the given primary-key value, reporting
// whether a row was deleted.
func (m *Mapper[T]) Delete(pk storage.Value) (bool, error) {
	if m.pkCol < 0 {
		return false, fmt.Errorf("orm: %s has no primary key", m.schema.Name)
	}
	deleted := false
	err := m.e.Update(func(tx *storage.Tx) error {
		var rid storage.RID
		found := false
		err := tx.LookupEqual(m.schema.Name, m.schema.Name+"_pkey", []storage.Value{storage.Normalize(pk)},
			func(r storage.RID, _ storage.Row) bool {
				rid, found = r, true
				return false
			})
		if err != nil {
			return err
		}
		if !found {
			return nil
		}
		if err := tx.DeleteRID(m.schema.Name, rid); err != nil {
			return err
		}
		deleted = true
		return nil
	})
	return deleted, err
}

// All loads every persisted struct in insertion order.
func (m *Mapper[T]) All() ([]T, error) {
	var out []T
	err := m.e.View(func(tx *storage.Tx) error {
		return tx.Scan(m.schema.Name, func(_ storage.RID, row storage.Row) bool {
			v, _ := m.fromRow(row)
			out = append(out, v)
			return true
		})
	})
	return out, err
}

// Where loads structs whose mapped column equals value, using a tagged
// index when one exists and a scan otherwise.
func (m *Mapper[T]) Where(column string, value storage.Value) ([]T, error) {
	value = storage.Normalize(value)
	pos, ok := m.schema.ColumnIndex(column)
	if !ok {
		return nil, fmt.Errorf("orm: %s has no column %q", m.schema.Name, column)
	}
	ixName := m.schema.Name + "_" + strings.ToLower(column) + "_ix"
	var out []T
	err := m.e.View(func(tx *storage.Tx) error {
		collect := func(_ storage.RID, row storage.Row) bool {
			v, _ := m.fromRow(row)
			out = append(out, v)
			return true
		}
		if hasIndex(m.e, m.schema.Name, ixName) {
			return tx.LookupEqual(m.schema.Name, ixName, []storage.Value{value}, collect)
		}
		return tx.Scan(m.schema.Name, func(rid storage.RID, row storage.Row) bool {
			if storage.Equal(row[pos], value) {
				return collect(rid, row)
			}
			return true
		})
	})
	return out, err
}

// DeleteWhere removes every row whose mapped column equals value,
// returning the number deleted.
func (m *Mapper[T]) DeleteWhere(column string, value storage.Value) (int, error) {
	value = storage.Normalize(value)
	pos, ok := m.schema.ColumnIndex(column)
	if !ok {
		return 0, fmt.Errorf("orm: %s has no column %q", m.schema.Name, column)
	}
	deleted := 0
	err := m.e.Update(func(tx *storage.Tx) error {
		var rids []storage.RID
		err := tx.Scan(m.schema.Name, func(rid storage.RID, row storage.Row) bool {
			if storage.Equal(row[pos], value) {
				rids = append(rids, rid)
			}
			return true
		})
		if err != nil {
			return err
		}
		for _, rid := range rids {
			if err := tx.DeleteRID(m.schema.Name, rid); err != nil {
				return err
			}
			deleted++
		}
		return nil
	})
	return deleted, err
}

// Count reports the number of persisted structs.
func (m *Mapper[T]) Count() (int, error) {
	n := 0
	err := m.e.View(func(tx *storage.Tx) error {
		var err error
		n, err = tx.Count(m.schema.Name)
		return err
	})
	return n, err
}

func hasIndex(e *storage.Engine, table, name string) bool {
	infos, err := e.Indexes(table)
	if err != nil {
		return false
	}
	for _, info := range infos {
		if strings.EqualFold(info.Name, name) {
			return true
		}
	}
	return false
}
