package storage

import (
	"context"
	"fmt"

	"github.com/odbis/odbis/internal/obs"
)

// Tx is a snapshot-isolation transaction. A Tx sees the committed state as
// of Begin plus its own writes. Write-write conflicts surface as
// ErrConflict at the conflicting operation (first-updater-wins); the
// caller should roll back and retry.
//
// A Tx must be finished with exactly one of Commit or Rollback. A Tx is
// not safe for concurrent use by multiple goroutines.
type Tx struct {
	e    *Engine
	id   uint64
	ctx  context.Context
	snap snapshot
	done bool
	ops  []txOp
}

type txOpKind uint8

const (
	opInsert txOpKind = iota
	opDelete
)

type txOp struct {
	kind  txOpKind
	table string
	rid   RID
	row   Row // opInsert only
}

// Begin starts a new transaction bound to the background context.
func (e *Engine) Begin() *Tx {
	return e.BeginCtx(context.Background())
}

// BeginCtx starts a new transaction whose scans observe ctx: once ctx is
// cancelled or past its deadline, row iteration stops at the next
// checkpoint and the ctx error surfaces from the scan.
func (e *Engine) BeginCtx(ctx context.Context) *Tx {
	e.txMu.Lock()
	id := e.nextTxID.Add(1) - 1
	e.txActive[id] = true
	snap := e.takeSnapshotTxLocked()
	delete(snap.active, id) // we are not concurrent with ourselves
	e.txMu.Unlock()
	return &Tx{e: e, id: id, ctx: ctx, snap: snap}
}

// View runs fn inside a read-only transaction that is always rolled back.
func (e *Engine) View(fn func(tx *Tx) error) error {
	return e.ViewCtx(context.Background(), fn)
}

// ViewCtx is View with a cancellable transaction context.
func (e *Engine) ViewCtx(ctx context.Context, fn func(tx *Tx) error) error {
	ctx, span := obs.StartSpan(ctx, "storage.view")
	defer span.End()
	tx := e.BeginCtx(ctx)
	defer tx.Rollback()
	return fn(tx)
}

// Update runs fn inside a transaction, committing on nil error and
// rolling back otherwise.
func (e *Engine) Update(fn func(tx *Tx) error) error {
	return e.UpdateCtx(context.Background(), fn)
}

// UpdateCtx is Update with a cancellable transaction context. A context
// cancelled before commit rolls the transaction back, so partial work
// from an abandoned request never becomes visible. The rollback is
// guaranteed even when fn panics (Rollback after Commit is a no-op):
// the server's panic-recovery middleware relies on this to keep a
// panicking handler from stranding an active transaction.
func (e *Engine) UpdateCtx(ctx context.Context, fn func(tx *Tx) error) error {
	ctx, span := obs.StartSpan(ctx, "storage.update")
	defer span.End()
	tx := e.BeginCtx(ctx)
	defer tx.Rollback()
	if err := fn(tx); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return tx.Commit()
}

// Context returns the context the transaction was started with.
func (tx *Tx) Context() context.Context {
	if tx.ctx == nil {
		return context.Background()
	}
	return tx.ctx
}

// ctxCheckEvery is the row granularity of cooperative-cancellation
// checkpoints in scans: coarse enough to stay off profiles, fine enough
// that a cancelled request stops within a few dozen rows.
const ctxCheckEvery = 64

// stepCtx is the per-row checkpoint used by the scan loops. i is the row
// ordinal; only every ctxCheckEvery-th row pays for the ctx.Err call.
func (tx *Tx) stepCtx(i int) error {
	if tx.ctx == nil || i%ctxCheckEvery != 0 {
		return nil
	}
	return tx.ctx.Err()
}

// ID returns the transaction id (useful in tests and logs).
func (tx *Tx) ID() uint64 { return tx.id }

func (tx *Tx) check() error {
	if tx.done {
		return ErrTxDone
	}
	return nil
}

// Insert adds a row (positional, aligned with the schema) and returns its
// stable RID.
func (tx *Tx) Insert(tableName string, row Row) (RID, error) {
	if err := tx.check(); err != nil {
		return 0, err
	}
	t, err := tx.e.getTable(tableName)
	if err != nil {
		return 0, err
	}
	checked, err := t.schema.CheckRow(row)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Unique-index enforcement: a key conflicts when any version with the
	// same key is live (not deleted) and was created by a committed or
	// still-active transaction.
	for _, ix := range t.indexes {
		if !ix.info.Unique {
			continue
		}
		key := ix.keyFor(checked)
		for _, id := range ix.lookup(key) {
			v := &t.versions[id]
			if tx.aliveForUnique(v) {
				return 0, fmt.Errorf("%w: index %s key %v", ErrDuplicate, ix.info.Name, describeKey(ix, checked))
			}
		}
	}
	rid := RID(tx.e.nextRID.Add(1) - 1)
	slot := rowID(len(t.versions))
	t.versions = append(t.versions, version{rid: rid, row: checked, xmin: tx.id})
	t.byRID[rid] = slot
	for _, ix := range t.indexes {
		ix.insert(ix.keyFor(checked), slot)
	}
	tx.ops = append(tx.ops, txOp{kind: opInsert, table: t.schema.Name, rid: rid, row: checked})
	tx.e.statsWrites.Add(1)
	return rid, nil
}

// aliveForUnique reports whether a version should block a same-key insert:
// it is not yet deleted by any committed or in-flight transaction, and its
// creator is committed, in flight, or us.
func (tx *Tx) aliveForUnique(v *version) bool {
	e := tx.e
	if v.xmin != 0 && v.xmin != tx.id && e.statusOf(v.xmin) == txAborted {
		return false
	}
	if v.xmax == 0 {
		return true
	}
	if v.xmax == tx.id {
		return false // we deleted it ourselves
	}
	st := e.statusOf(v.xmax)
	// Deleted by a committed tx: dead. Deleted by an active tx: still
	// blocking (the delete may abort). Aborted delete: alive.
	return st != txCommitted
}

func describeKey(ix *index, row Row) []Value {
	vals := make([]Value, len(ix.cols))
	for i, c := range ix.cols {
		vals[i] = row[c]
	}
	return vals
}

// InsertMap adds a row from a column→value map, applying schema defaults.
func (tx *Tx) InsertMap(tableName string, m map[string]Value) (RID, error) {
	if err := tx.check(); err != nil {
		return 0, err
	}
	t, err := tx.e.getTable(tableName)
	if err != nil {
		return 0, err
	}
	row, err := t.schema.RowFromMap(m)
	if err != nil {
		return 0, err
	}
	return tx.Insert(tableName, row)
}

// DeleteRID deletes the row with the given RID. It returns ErrNoRow when
// the RID does not exist or is not visible, and ErrConflict when a
// concurrent transaction already deleted it.
func (tx *Tx) DeleteRID(tableName string, rid RID) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.e.getTable(tableName)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return tx.deleteLocked(t, rid)
}

func (tx *Tx) deleteLocked(t *table, rid RID) error {
	slot, ok := t.byRID[rid]
	if !ok {
		return fmt.Errorf("%w: rid %d in %s", ErrNoRow, rid, t.schema.Name)
	}
	v := &t.versions[slot]
	if !tx.e.visible(v, tx.snap, tx.id) {
		return fmt.Errorf("%w: rid %d in %s", ErrRowNotVisible, rid, t.schema.Name)
	}
	if v.xmax != 0 && v.xmax != tx.id {
		switch tx.e.statusOf(v.xmax) {
		case txAborted:
			// The previous deleter aborted; we may take over the slot.
		default:
			// Active or committed-after-our-snapshot deleter: first
			// updater wins.
			return fmt.Errorf("%w: rid %d in %s", ErrConflict, rid, t.schema.Name)
		}
	}
	v.xmax = tx.id
	tx.ops = append(tx.ops, txOp{kind: opDelete, table: t.schema.Name, rid: rid})
	tx.e.statsWrites.Add(1)
	return nil
}

// UpdateRID replaces the row identified by rid with newRow, returning the
// RID of the new version.
func (tx *Tx) UpdateRID(tableName string, rid RID, newRow Row) (RID, error) {
	if err := tx.check(); err != nil {
		return 0, err
	}
	if err := tx.DeleteRID(tableName, rid); err != nil {
		return 0, err
	}
	return tx.Insert(tableName, newRow)
}

// Get returns the visible row with the given RID.
func (tx *Tx) Get(tableName string, rid RID) (Row, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	t, err := tx.e.getTable(tableName)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.byRID[rid]
	if !ok {
		return nil, fmt.Errorf("%w: rid %d in %s", ErrNoRow, rid, tableName)
	}
	v := &t.versions[slot]
	if !tx.e.visible(v, tx.snap, tx.id) {
		return nil, fmt.Errorf("%w: rid %d in %s", ErrRowNotVisible, rid, tableName)
	}
	tx.e.statsReads.Add(1)
	return v.row.Clone(), nil
}

// match is a materialized (rid, row) pair captured under the table lock.
type match struct {
	rid RID
	row Row
}

// collectVisible gathers the transaction-visible rows selected by pick
// while holding the table read lock. Callbacks then run unlocked, so scan
// bodies may freely mutate the same table (scan-and-delete patterns).
func (tx *Tx) collectVisible(t *table, pick func() []rowID) []match {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := pick()
	out := make([]match, 0, len(ids))
	for _, id := range ids {
		v := &t.versions[id]
		if tx.e.visible(v, tx.snap, tx.id) {
			out = append(out, match{rid: v.rid, row: v.row})
		}
	}
	return out
}

// Scan visits every visible row of the table in insertion order. fn
// returning false stops the scan. The row passed to fn is shared; fn must
// not modify it (Clone when keeping a mutable copy). fn may mutate the
// table through the same transaction: the scan iterates the snapshot
// taken when Scan was called.
func (tx *Tx) Scan(tableName string, fn func(rid RID, row Row) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.e.getTable(tableName)
	if err != nil {
		return err
	}
	tx.e.statsReads.Add(1)
	matches := tx.collectVisible(t, func() []rowID {
		//odbis:ignore staticrace -- pick runs inside collectVisible under t.mu.RLock
		ids := make([]rowID, len(t.versions))
		for i := range ids {
			ids[i] = rowID(i)
		}
		return ids
	})
	for i, m := range matches {
		if err := tx.stepCtx(i); err != nil {
			return err
		}
		if !fn(m.rid, m.row) {
			return nil
		}
	}
	return nil
}

// LookupEqual visits visible rows whose indexed columns equal key, via the
// named index.
func (tx *Tx) LookupEqual(tableName, indexName string, key []Value, fn func(rid RID, row Row) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.e.getTable(tableName)
	if err != nil {
		return err
	}
	t.mu.RLock()
	ix, ok := t.indexes[lowerName(indexName)]
	if !ok {
		t.mu.RUnlock()
		return fmt.Errorf("%w: %s on %s", ErrNoIndex, indexName, tableName)
	}
	if len(key) != len(ix.cols) {
		t.mu.RUnlock()
		return fmt.Errorf("storage: index %s expects %d key values, got %d", indexName, len(ix.cols), len(key))
	}
	t.mu.RUnlock()
	tx.e.statsReads.Add(1)
	matches := tx.collectVisible(t, func() []rowID {
		return ix.lookup(EncodeKey(key...))
	})
	for i, m := range matches {
		if err := tx.stepCtx(i); err != nil {
			return err
		}
		if !fn(m.rid, m.row) {
			return nil
		}
	}
	return nil
}

// ScanRange visits visible rows whose indexed key is in [lo, hi) in key
// order, via a B-tree index. Nil lo means unbounded below; nil hi means
// unbounded above. Prefix keys (fewer values than index columns) are
// allowed.
func (tx *Tx) ScanRange(tableName, indexName string, lo, hi []Value, fn func(rid RID, row Row) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.e.getTable(tableName)
	if err != nil {
		return err
	}
	t.mu.RLock()
	ix, ok := t.indexes[lowerName(indexName)]
	if !ok {
		t.mu.RUnlock()
		return fmt.Errorf("%w: %s on %s", ErrNoIndex, indexName, tableName)
	}
	if ix.tree == nil {
		t.mu.RUnlock()
		return fmt.Errorf("storage: index %s is a hash index; range scans need a btree index", indexName)
	}
	t.mu.RUnlock()
	var loKey, hiKey string
	if len(lo) > 0 {
		loKey = EncodeKey(lo...)
	}
	if len(hi) > 0 {
		hiKey = EncodeKey(hi...)
	}
	tx.e.statsReads.Add(1)
	matches := tx.collectVisible(t, func() []rowID {
		var all []rowID
		ix.tree.Range(loKey, hiKey, func(_ string, ids []rowID) bool {
			all = append(all, ids...)
			return true
		})
		return all
	})
	for i, m := range matches {
		if err := tx.stepCtx(i); err != nil {
			return err
		}
		if !fn(m.rid, m.row) {
			return nil
		}
	}
	return nil
}

// Count returns the number of visible rows in the table.
func (tx *Tx) Count(tableName string) (int, error) {
	n := 0
	err := tx.Scan(tableName, func(RID, Row) bool { n++; return true })
	return n, err
}

// Commit makes the transaction's writes durable and visible.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	e := tx.e
	if len(tx.ops) == 0 {
		e.finishTx(tx.id, txCommitted)
		return nil
	}
	if e.wal != nil {
		n, err := e.wal.logTx(tx.id, tx.ops)
		if err != nil {
			// Could not make the transaction durable: abort it so memory
			// state matches the log.
			e.finishTx(tx.id, txAborted)
			e.noteDead(tx.ops, txAborted)
			return fmt.Errorf("storage: commit: %w", err)
		}
		if n > 0 && tx.ctx != nil {
			obs.AddTenant(tx.ctx, obs.TenantBytesWritten, int64(n))
		}
	}
	// The visibility flip and the replication ship are atomic under
	// tap.mu so a WAL subscriber registering concurrently sees this
	// commit exactly once: either the flip lands first (the commit is in
	// any state dump taken after registration) or the ship does (the
	// frame arrives on the already-registered channel). See ship.go.
	e.tap.mu.Lock()
	e.finishTx(tx.id, txCommitted)
	e.tap.shipLocked(true, func(enc *encoder) { encodeTxFrame(enc, tx.id, tx.ops) })
	e.tap.mu.Unlock()
	e.noteDead(tx.ops, txCommitted)
	return nil
}

// Rollback abandons the transaction. Rolling back a finished transaction
// is a no-op.
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	tx.e.finishTx(tx.id, txAborted)
	tx.e.noteDead(tx.ops, txAborted)
	return nil
}

func (e *Engine) finishTx(id uint64, st txStatus) {
	e.txMu.Lock()
	delete(e.txActive, id)
	if st == txAborted {
		// Aborted ids must stay resolvable until vacuum rewrites the
		// versions that reference them.
		e.txAborted[id] = true
	}
	e.txMu.Unlock()
}

// noteDead bumps per-table dead counters after a finished transaction and
// triggers an opportunistic vacuum for tables that accumulated many dead
// versions. Only a committed delete or an aborted insert strands a
// version; committed inserts are live and must not count (bulk loads
// would otherwise thrash the vacuum).
func (e *Engine) noteDead(ops []txOp, outcome txStatus) {
	counts := map[string]int{}
	for _, op := range ops {
		dead := (outcome == txCommitted && op.kind == opDelete) ||
			(outcome == txAborted && op.kind == opInsert)
		if dead {
			counts[lowerName(op.table)]++
		}
	}
	vacuumNames := make([]string, 0, len(counts))
	e.mu.RLock()
	for name, n := range counts {
		if t, ok := e.tables[name]; ok {
			t.mu.Lock()
			t.dead += n
			if t.dead >= vacuumThreshold {
				vacuumNames = append(vacuumNames, name)
			}
			t.mu.Unlock()
		}
	}
	e.mu.RUnlock()
	for _, name := range vacuumNames {
		e.maybeVacuumTable(name)
	}
}
