package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeInsertGet(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 1000; i++ {
		bt.Insert(fmt.Sprintf("k%06d", i), rowID(i))
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d", bt.Len())
	}
	for i := 0; i < 1000; i++ {
		ids := bt.Get(fmt.Sprintf("k%06d", i))
		if len(ids) != 1 || ids[0] != rowID(i) {
			t.Fatalf("Get(k%06d) = %v", i, ids)
		}
	}
	if bt.Get("missing") != nil {
		t.Error("Get(missing) should be nil")
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 10; i++ {
		bt.Insert("same", rowID(i))
	}
	if bt.Len() != 1 {
		t.Errorf("Len = %d, want 1 distinct key", bt.Len())
	}
	if got := len(bt.Get("same")); got != 10 {
		t.Errorf("posting list length = %d", got)
	}
	bt.Delete("same", rowID(3))
	if got := len(bt.Get("same")); got != 9 {
		t.Errorf("after delete, posting list length = %d", got)
	}
}

func TestBTreeRange(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 500; i++ {
		bt.Insert(fmt.Sprintf("%04d", i), rowID(i))
	}
	var got []string
	bt.Range("0100", "0200", func(k string, _ []rowID) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 100 {
		t.Fatalf("range size = %d", len(got))
	}
	if got[0] != "0100" || got[99] != "0199" {
		t.Errorf("range bounds: %s .. %s", got[0], got[99])
	}
	if !sort.StringsAreSorted(got) {
		t.Error("range not sorted")
	}
	// Unbounded scans.
	n := 0
	bt.Ascend(func(string, []rowID) bool { n++; return true })
	if n != 500 {
		t.Errorf("Ascend visited %d keys", n)
	}
	// Early stop.
	n = 0
	bt.Range("", "", func(string, []rowID) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBTreeDeleteReinsert(t *testing.T) {
	bt := newBTree()
	const n = 2000
	for i := 0; i < n; i++ {
		bt.Insert(fmt.Sprintf("%05d", i), rowID(i))
	}
	for i := 0; i < n; i += 2 {
		bt.Delete(fmt.Sprintf("%05d", i), rowID(i))
	}
	if bt.Len() != n/2 {
		t.Fatalf("Len after deletes = %d", bt.Len())
	}
	for i := 0; i < n; i++ {
		ids := bt.Get(fmt.Sprintf("%05d", i))
		if i%2 == 0 && ids != nil {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && len(ids) != 1 {
			t.Fatalf("kept key %d missing", i)
		}
	}
	// Reinsert the deleted half; the tree must route correctly through
	// stale separators.
	for i := 0; i < n; i += 2 {
		bt.Insert(fmt.Sprintf("%05d", i), rowID(i+10000))
	}
	for i := 0; i < n; i += 2 {
		ids := bt.Get(fmt.Sprintf("%05d", i))
		if len(ids) != 1 || ids[0] != rowID(i+10000) {
			t.Fatalf("reinserted key %d wrong: %v", i, ids)
		}
	}
}

// Property: a btree behaves like a sorted map from key to multiset of ids.
func TestBTreeQuickAgainstModel(t *testing.T) {
	f := func(ops []uint16) bool {
		bt := newBTree()
		model := map[string][]rowID{}
		rng := rand.New(rand.NewSource(42))
		for _, op := range ops {
			key := fmt.Sprintf("%03d", op%200)
			id := rowID(op)
			if op%3 == 0 && len(model[key]) > 0 {
				victim := model[key][rng.Intn(len(model[key]))]
				bt.Delete(key, victim)
				ids := model[key]
				for i, got := range ids {
					if got == victim {
						ids[i] = ids[len(ids)-1]
						ids = ids[:len(ids)-1]
						break
					}
				}
				if len(ids) == 0 {
					delete(model, key)
				} else {
					model[key] = ids
				}
			} else {
				bt.Insert(key, id)
				model[key] = append(model[key], id)
			}
		}
		if bt.Len() != len(model) {
			return false
		}
		for key, want := range model {
			got := bt.Get(key)
			if len(got) != len(want) {
				return false
			}
		}
		// Full scan order equals sorted model keys.
		var keys []string
		bt.Ascend(func(k string, _ []rowID) bool { keys = append(keys, k); return true })
		if !sort.StringsAreSorted(keys) {
			return false
		}
		return len(keys) == len(model)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: index scans and table scans agree on the visible row set.
func TestIndexScanEquivalence(t *testing.T) {
	e := newTestEngine(t)
	if err := e.CreateIndex(IndexInfo{Name: "users_age_bt", Table: "users", Columns: []string{"age"}, Kind: IndexBTree}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		mustInsert(t, e, "users", Row{int64(i), fmt.Sprintf("u%d", i), int64(rng.Intn(40)), nil})
	}
	// Delete a random third.
	e.Update(func(tx *Tx) error {
		return tx.Scan("users", func(rid RID, row Row) bool {
			if rng.Intn(3) == 0 {
				tx.DeleteRID("users", rid)
			}
			return true
		})
	})
	for trial := 0; trial < 20; trial++ {
		lo := int64(rng.Intn(40))
		hi := lo + int64(rng.Intn(10))
		viaScan := map[RID]bool{}
		viaIndex := map[RID]bool{}
		e.View(func(tx *Tx) error {
			tx.Scan("users", func(rid RID, row Row) bool {
				age := row[2].(int64)
				if age >= lo && age < hi {
					viaScan[rid] = true
				}
				return true
			})
			tx.ScanRange("users", "users_age_bt", []Value{lo}, []Value{hi}, func(rid RID, row Row) bool {
				viaIndex[rid] = true
				return true
			})
			return nil
		})
		if len(viaScan) != len(viaIndex) {
			t.Fatalf("trial %d [%d,%d): scan=%d index=%d", trial, lo, hi, len(viaScan), len(viaIndex))
		}
		for rid := range viaScan {
			if !viaIndex[rid] {
				t.Fatalf("trial %d: rid %d in scan but not index", trial, rid)
			}
		}
	}
}
