package storage

import (
	"context"
	"testing"
)

func TestBatchPushAndCompact(t *testing.T) {
	b := NewBatch(2)
	if b.Width() != 2 || b.Len() != 0 {
		t.Fatalf("fresh batch: width=%d len=%d", b.Width(), b.Len())
	}
	b.PushRow(Row{int64(1), "a"})
	b.PushRow(Row{int64(2), "b"})
	b.PushRow(Row{int64(3), "c"})
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if got := b.Value(1, 2); got != "c" {
		t.Fatalf("Value(1,2) = %v, want c", got)
	}
	row := b.Row(1, nil)
	if len(row) != 2 || row[0] != int64(2) || row[1] != "b" {
		t.Fatalf("Row(1) = %v", row)
	}

	// In-place compaction: keep rows 0 and 2 and shrink via SetLen.
	// Column slices stay full length; readers must honor Len().
	for c := range b.Cols {
		b.Cols[c][1] = b.Cols[c][2]
	}
	b.SetLen(2)
	if b.Len() != 2 || b.Value(1, 1) != "c" {
		t.Fatalf("after compaction: len=%d val=%v", b.Len(), b.Value(1, 1))
	}

	// Reset keeps backing arrays but empties and reshapes.
	b.Reset(3)
	if b.Width() != 3 || b.Len() != 0 {
		t.Fatalf("after Reset(3): width=%d len=%d", b.Width(), b.Len())
	}
}

func TestBatchPoolRecycles(t *testing.T) {
	var p BatchPool
	a := p.Get(2)
	a.PushRow(Row{int64(1), "x"})
	p.Put(a)
	b := p.Get(4)
	if b != a {
		t.Fatal("pool did not hand back the released batch")
	}
	if b.Width() != 4 || b.Len() != 0 {
		t.Fatalf("recycled batch not reset: width=%d len=%d", b.Width(), b.Len())
	}
	p.Put(nil) // must be a no-op: the free list stays empty
	if got := p.Get(1); got == nil || got == b || got.Width() != 1 {
		t.Fatalf("Get after Put(nil) = %v (want a fresh width-1 batch)", got)
	}
}

func TestBatchScannerStreamsSnapshot(t *testing.T) {
	e := newTestEngine(t)
	rows := make([]Row, 0, 10)
	for i := 0; i < 10; i++ {
		rows = append(rows, Row{int64(i), "u", int64(20 + i), true})
	}
	mustInsert(t, e, "users", rows...)

	err := e.View(func(tx *Tx) error {
		s, err := tx.NewBatchScanner("users")
		if err != nil {
			return err
		}
		if s.Width() != 4 {
			t.Fatalf("Width = %d, want 4", s.Width())
		}
		b := NewBatch(s.Width())
		var got []int64
		for {
			n, err := s.Next(b, 3)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			if n > 3 || b.Len() != n {
				t.Fatalf("Next returned n=%d, batch len=%d", n, b.Len())
			}
			for r := 0; r < b.Len(); r++ {
				got = append(got, b.Value(0, r).(int64))
			}
		}
		if len(got) != 10 {
			t.Fatalf("scanned %d rows, want 10", len(got))
		}
		for i, id := range got {
			if id != int64(i) {
				t.Fatalf("row %d: id %d (insertion order broken)", i, id)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanBatchesMatchesScan(t *testing.T) {
	e := newTestEngine(t)
	rows := make([]Row, 0, 7)
	for i := 0; i < 7; i++ {
		rows = append(rows, Row{int64(i), "u", nil, true})
	}
	mustInsert(t, e, "users", rows...)

	err := e.View(func(tx *Tx) error {
		if err := tx.ScanBatches("users", 0, func(*Batch) error { return nil }); err == nil {
			t.Fatal("ScanBatches accepted size 0")
		}
		var viaBatch []int64
		if err := tx.ScanBatches("users", 2, func(b *Batch) error {
			for r := 0; r < b.Len(); r++ {
				viaBatch = append(viaBatch, b.Value(0, r).(int64))
			}
			return nil
		}); err != nil {
			return err
		}
		var viaScan []int64
		if err := tx.Scan("users", func(_ RID, r Row) bool {
			viaScan = append(viaScan, r[0].(int64))
			return true
		}); err != nil {
			return err
		}
		if len(viaBatch) != len(viaScan) {
			t.Fatalf("batch scan saw %d rows, row scan %d", len(viaBatch), len(viaScan))
		}
		for i := range viaBatch {
			if viaBatch[i] != viaScan[i] {
				t.Fatalf("row %d: batch %d vs scan %d", i, viaBatch[i], viaScan[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBatchScannerHonorsCancel(t *testing.T) {
	e := newTestEngine(t)
	rows := make([]Row, 0, 3*ctxCheckEvery)
	for i := 0; i < 3*ctxCheckEvery; i++ {
		rows = append(rows, Row{int64(i), "u", nil, true})
	}
	mustInsert(t, e, "users", rows...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.ViewCtx(ctx, func(tx *Tx) error {
		return tx.ScanBatches("users", 64, func(*Batch) error { return nil })
	})
	if err == nil {
		t.Fatal("cancelled batch scan returned nil error")
	}
}
