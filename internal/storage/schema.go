package storage

import (
	"fmt"
	"regexp"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
	Default Value // applied when an insert omits the column; nil means none
}

// Schema describes a table: its name, columns and primary key. The zero
// value is not usable; build schemas with NewSchema or validate with
// Validate before use.
type Schema struct {
	Name       string
	Columns    []Column
	PrimaryKey []string // column names; empty means no primary key
}

var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_.$-]*$`)

// ValidIdent reports whether name is acceptable as a table, column or
// index identifier.
func ValidIdent(name string) bool { return identRe.MatchString(name) }

// NewSchema builds and validates a schema.
func NewSchema(name string, cols []Column, primaryKey ...string) (*Schema, error) {
	s := &Schema{Name: name, Columns: cols, PrimaryKey: primaryKey}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks identifier syntax, duplicate columns, default-value
// typing and primary-key references.
func (s *Schema) Validate() error {
	if !ValidIdent(s.Name) {
		return fmt.Errorf("storage: invalid table name %q", s.Name)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("storage: table %s has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for i := range s.Columns {
		c := &s.Columns[i]
		if !ValidIdent(c.Name) {
			return fmt.Errorf("storage: invalid column name %q in table %s", c.Name, s.Name)
		}
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return fmt.Errorf("storage: duplicate column %q in table %s", c.Name, s.Name)
		}
		seen[lower] = true
		if c.Type == TypeInvalid {
			return fmt.Errorf("storage: column %s.%s has invalid type", s.Name, c.Name)
		}
		if c.Default != nil {
			v, err := CheckValue(c.Type, c.Default)
			if err != nil {
				return fmt.Errorf("storage: default for %s.%s: %w", s.Name, c.Name, err)
			}
			c.Default = v
		}
	}
	for _, pk := range s.PrimaryKey {
		if _, ok := s.ColumnIndex(pk); !ok {
			return fmt.Errorf("storage: primary key column %q not in table %s", pk, s.Name)
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column
// (case-insensitive), or false when absent.
func (s *Schema) ColumnIndex(name string) (int, bool) {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// ColumnNames returns the column names in declaration order.
func (s *Schema) ColumnNames() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Clone deep-copies the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{Name: s.Name}
	out.Columns = append([]Column(nil), s.Columns...)
	out.PrimaryKey = append([]string(nil), s.PrimaryKey...)
	return out
}

// CheckRow validates and normalizes a full positional row against the
// schema, enforcing types and NOT NULL. It returns a new row; the input is
// not modified.
func (s *Schema) CheckRow(r Row) (Row, error) {
	if len(r) != len(s.Columns) {
		return nil, fmt.Errorf("storage: table %s expects %d values, got %d", s.Name, len(s.Columns), len(r))
	}
	out := make(Row, len(r))
	for i, c := range s.Columns {
		v, err := CheckValue(c.Type, r[i])
		if err != nil {
			return nil, fmt.Errorf("storage: column %s.%s: %w", s.Name, c.Name, err)
		}
		if v == nil && c.Default != nil {
			v = c.Default
		}
		if v == nil && c.NotNull {
			return nil, fmt.Errorf("storage: column %s.%s is NOT NULL", s.Name, c.Name)
		}
		out[i] = v
	}
	return out, nil
}

// RowFromMap builds a positional row from a column→value map, applying
// defaults for omitted columns. Unknown keys are an error.
func (s *Schema) RowFromMap(m map[string]Value) (Row, error) {
	r := make(Row, len(s.Columns))
	used := 0
	for i, c := range s.Columns {
		if v, ok := lookupFold(m, c.Name); ok {
			r[i] = v
			used++
		} else {
			r[i] = c.Default
		}
	}
	if used != len(m) {
		for k := range m {
			if _, ok := s.ColumnIndex(k); !ok {
				return nil, fmt.Errorf("storage: table %s has no column %q", s.Name, k)
			}
		}
	}
	return s.CheckRow(r)
}

func lookupFold(m map[string]Value, name string) (Value, bool) {
	if v, ok := m[name]; ok {
		return v, true
	}
	for k, v := range m {
		if strings.EqualFold(k, name) {
			return v, true
		}
	}
	return nil, false
}

// pkIndexes returns the column positions of the primary key.
func (s *Schema) pkIndexes() []int {
	if len(s.PrimaryKey) == 0 {
		return nil
	}
	idx := make([]int, len(s.PrimaryKey))
	for i, name := range s.PrimaryKey {
		pos, _ := s.ColumnIndex(name)
		idx[i] = pos
	}
	return idx
}
