package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Binary codec shared by the WAL and snapshot files. Values are encoded as
// a one-byte tag followed by a fixed or length-prefixed payload. All
// integers are unsigned varints unless noted.

const (
	tagNull  byte = 0
	tagInt   byte = 1
	tagFloat byte = 2
	tagStr   byte = 3
	tagBool  byte = 4
	tagTime  byte = 5
	tagBytes byte = 6
)

type encoder struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func newEncoder(w io.Writer) *encoder {
	if bw, ok := w.(*bufio.Writer); ok {
		return &encoder{w: bw}
	}
	return &encoder{w: bufio.NewWriter(w)}
}

func (e *encoder) flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

func (e *encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *encoder) uvarint(u uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], u)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) varint(i int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], i)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) value(v Value) {
	switch x := Normalize(v).(type) {
	case nil:
		e.byte(tagNull)
	case int64:
		e.byte(tagInt)
		e.varint(x)
	case float64:
		e.byte(tagFloat)
		e.uvarint(math.Float64bits(x))
	case string:
		e.byte(tagStr)
		e.str(x)
	case bool:
		e.byte(tagBool)
		if x {
			e.byte(1)
		} else {
			e.byte(0)
		}
	case time.Time:
		e.byte(tagTime)
		e.varint(x.UnixMicro())
	case []byte:
		e.byte(tagBytes)
		e.bytes(x)
	default:
		if e.err == nil {
			e.err = fmt.Errorf("storage: cannot encode value of type %T", v)
		}
	}
}

func (e *encoder) row(r Row) {
	e.uvarint(uint64(len(r)))
	for _, v := range r {
		e.value(v)
	}
}

func (e *encoder) schema(s *Schema) {
	e.str(s.Name)
	e.uvarint(uint64(len(s.Columns)))
	for _, c := range s.Columns {
		e.str(c.Name)
		e.byte(byte(c.Type))
		if c.NotNull {
			e.byte(1)
		} else {
			e.byte(0)
		}
		e.value(c.Default)
	}
	e.uvarint(uint64(len(s.PrimaryKey)))
	for _, pk := range s.PrimaryKey {
		e.str(pk)
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func newDecoder(r io.Reader) *decoder {
	if br, ok := r.(*bufio.Reader); ok {
		return &decoder{r: br}
	}
	return &decoder{r: bufio.NewReader(r)}
}

func (d *decoder) fail(err error) {
	if d.err == nil && err != nil {
		d.err = err
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	d.fail(err)
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, err := binary.ReadUvarint(d.r)
	d.fail(err)
	return u
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	i, err := binary.ReadVarint(d.r)
	d.fail(err)
	return i
}

// maxBlob bounds length prefixes so a corrupt file cannot trigger a huge
// allocation.
const maxBlob = 1 << 30

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxBlob {
		d.fail(fmt.Errorf("storage: corrupt length %d", n))
		return ""
	}
	b := make([]byte, n)
	_, err := io.ReadFull(d.r, b)
	d.fail(err)
	return string(b)
}

func (d *decoder) blob() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxBlob {
		d.fail(fmt.Errorf("storage: corrupt length %d", n))
		return nil
	}
	b := make([]byte, n)
	_, err := io.ReadFull(d.r, b)
	d.fail(err)
	return b
}

func (d *decoder) value() Value {
	switch tag := d.byte(); tag {
	case tagNull:
		return nil
	case tagInt:
		return d.varint()
	case tagFloat:
		return math.Float64frombits(d.uvarint())
	case tagStr:
		return d.str()
	case tagBool:
		return d.byte() == 1
	case tagTime:
		return time.UnixMicro(d.varint()).UTC()
	case tagBytes:
		return d.blob()
	default:
		d.fail(fmt.Errorf("storage: corrupt value tag %d", tag))
		return nil
	}
}

func (d *decoder) row() Row {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxBlob {
		d.fail(fmt.Errorf("storage: corrupt row arity %d", n))
		return nil
	}
	r := make(Row, n)
	for i := range r {
		r[i] = d.value()
	}
	return r
}

func (d *decoder) schema() *Schema {
	s := &Schema{Name: d.str()}
	ncols := d.uvarint()
	if d.err != nil || ncols > 1<<16 {
		d.fail(fmt.Errorf("storage: corrupt schema"))
		return nil
	}
	s.Columns = make([]Column, ncols)
	for i := range s.Columns {
		s.Columns[i].Name = d.str()
		s.Columns[i].Type = Type(d.byte())
		s.Columns[i].NotNull = d.byte() == 1
		s.Columns[i].Default = d.value()
	}
	npk := d.uvarint()
	if d.err != nil || npk > ncols {
		d.fail(fmt.Errorf("storage: corrupt schema pk"))
		return nil
	}
	s.PrimaryKey = make([]string, npk)
	for i := range s.PrimaryKey {
		s.PrimaryKey[i] = d.str()
	}
	return s
}
