package storage

import "fmt"

// Batch is a column-major block of rows: Cols[c][r] is column c of row
// r. The SQL executor's vectorized operators pass batches between each
// other instead of materializing one []Row per operator, and bind
// expression evaluation directly to the column slices — one batch
// allocation is amortized over every row it carries.
//
// The row count is tracked separately from the column slice lengths so
// operators can compact a batch in place (filtering) without
// re-slicing every column: readers must use Len(), not len(Cols[c]).
type Batch struct {
	// Cols holds one value slice per column. All columns carry at
	// least Len() values.
	Cols [][]Value
	n    int
}

// NewBatch returns an empty batch with the given column count.
func NewBatch(width int) *Batch {
	b := &Batch{}
	b.Reset(width)
	return b
}

// Reset empties the batch and reshapes it to width columns, keeping
// the column backing arrays for reuse.
func (b *Batch) Reset(width int) {
	if cap(b.Cols) < width {
		old := b.Cols
		b.Cols = make([][]Value, width)
		copy(b.Cols, old)
	} else {
		b.Cols = b.Cols[:width]
	}
	for i := range b.Cols {
		b.Cols[i] = b.Cols[i][:0]
	}
	b.n = 0
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// SetLen declares the row count after the caller has written the
// column slices directly (e.g. in-place compaction).
func (b *Batch) SetLen(n int) { b.n = n }

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.Cols) }

// PushRow appends one row-major row. len(row) must equal Width().
func (b *Batch) PushRow(row Row) {
	for i := range b.Cols {
		b.Cols[i] = append(b.Cols[i], row[i])
	}
	b.n++
}

// Value returns column col of row r.
func (b *Batch) Value(col, r int) Value { return b.Cols[col][r] }

// Row copies row r into dst (grown as needed) and returns it.
func (b *Batch) Row(r int, dst Row) Row {
	dst = dst[:0]
	for c := range b.Cols {
		dst = append(dst, b.Cols[c][r])
	}
	return dst
}

// BatchPool recycles batches within one executor. Get and Put follow
// the usual free-list discipline; a batch obtained from Get is reused
// storage, not a fresh allocation, so per-iteration Get/Put cycles do
// not churn the garbage collector.
type BatchPool struct {
	free []*Batch
}

// Get returns an empty batch with the given width, reusing a released
// batch when one is available.
func (p *BatchPool) Get(width int) *Batch {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		b.Reset(width)
		return b
	}
	return NewBatch(width)
}

// Put releases a batch back to the pool. The caller must not use b
// afterwards.
func (p *BatchPool) Put(b *Batch) {
	if b == nil {
		return
	}
	p.free = append(p.free, b)
}

// BatchScanner streams the visible rows of one table in insertion
// order, batch-at-a-time. Like Scan it iterates the snapshot taken at
// creation, holds no locks between Next calls, and pays the
// cooperative-cancellation checkpoint every ctxCheckEvery rows.
type BatchScanner struct {
	tx      *Tx
	width   int
	matches []match
	pos     int
}

// NewBatchScanner starts a batched scan of tableName. The visible row
// set is pinned when the scanner is created (same snapshot rule as
// Scan).
func (tx *Tx) NewBatchScanner(tableName string) (*BatchScanner, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	t, err := tx.e.getTable(tableName)
	if err != nil {
		return nil, err
	}
	tx.e.statsReads.Add(1)
	matches := tx.collectVisible(t, func() []rowID {
		//odbis:ignore staticrace -- pick runs inside collectVisible under t.mu.RLock
		ids := make([]rowID, len(t.versions))
		for i := range ids {
			ids[i] = rowID(i)
		}
		return ids
	})
	return &BatchScanner{tx: tx, width: len(t.schema.Columns), matches: matches}, nil
}

// Width returns the column count of the scanned table.
func (s *BatchScanner) Width() int { return s.width }

// Next resets b to the table width and fills it with up to max rows.
// It returns the number of rows delivered; 0 means the scan is done.
// The values in b are shared with the storage layer and must not be
// mutated.
func (s *BatchScanner) Next(b *Batch, max int) (int, error) {
	b.Reset(s.width)
	n := 0
	for n < max && s.pos < len(s.matches) {
		if err := s.tx.stepCtx(s.pos); err != nil {
			return 0, err
		}
		b.PushRow(s.matches[s.pos].row)
		s.pos++
		n++
	}
	return n, nil
}

// ScanBatches visits every visible row of the table through a reused
// batch of at most size rows per callback. The batch is only valid
// for the duration of fn; fn must copy anything it keeps.
func (tx *Tx) ScanBatches(tableName string, size int, fn func(*Batch) error) error {
	if size <= 0 {
		return fmt.Errorf("storage: ScanBatches size must be positive, got %d", size)
	}
	s, err := tx.NewBatchScanner(tableName)
	if err != nil {
		return err
	}
	b := NewBatch(s.width)
	for {
		n, err := s.Next(b, size)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if err := fn(b); err != nil {
			return err
		}
	}
}
