package storage

import "sort"

// btree is an in-memory B+tree mapping order-preserving string keys to
// sets of row ids. It backs ordered secondary indexes: equality probes,
// half-open range scans and full in-order traversal. Keys are the
// EncodeKey form of the indexed column tuple, so lexicographic key order
// equals value order.
//
// The tree is not safe for concurrent use; the owning table serializes
// access.
type btree struct {
	root   *btreeNode
	degree int // max children per interior node
	size   int // number of distinct keys
}

type btreeNode struct {
	leaf     bool
	keys     []string
	children []*btreeNode // interior: len(keys)+1 children
	vals     [][]rowID    // leaf: parallel to keys
	next     *btreeNode   // leaf chain for range scans
}

const defaultBTreeDegree = 64

func newBTree() *btree {
	return &btree{
		root:   &btreeNode{leaf: true},
		degree: defaultBTreeDegree,
	}
}

// Len reports the number of distinct keys in the tree.
func (t *btree) Len() int { return t.size }

// Insert adds id under key, creating the key when absent.
func (t *btree) Insert(key string, id rowID) {
	if len(t.root.keys) >= t.maxKeys() {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, id)
}

func (t *btree) maxKeys() int { return t.degree - 1 }

func (t *btree) insertNonFull(n *btreeNode, key string, id rowID) {
	for {
		i := sort.SearchStrings(n.keys, key)
		if n.leaf {
			if i < len(n.keys) && n.keys[i] == key {
				n.vals[i] = append(n.vals[i], id)
				return
			}
			n.keys = append(n.keys, "")
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = []rowID{id}
			t.size++
			return
		}
		// Same convention as Get/Delete: keys equal to a separator live in
		// the right subtree.
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		if len(n.children[i].keys) >= t.maxKeys() {
			t.splitChild(n, i)
			if key >= n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at position i of parent p. For leaves
// the separator key is copied up (B+tree style); for interior nodes it
// moves up.
func (t *btree) splitChild(p *btreeNode, i int) {
	child := p.children[i]
	mid := len(child.keys) / 2
	var sep string
	right := &btreeNode{leaf: child.leaf}
	if child.leaf {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid:mid]
		child.vals = child.vals[:mid:mid]
		right.next = child.next
		child.next = right
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	p.keys = append(p.keys, "")
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = sep
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
}

// Delete removes id from key's posting list, dropping the key when the
// list empties. Underflowed nodes are left in place (deletes are rare
// relative to scans in this workload; structure is rebuilt on checkpoint
// load), which keeps the invariant simple: keys always route correctly.
func (t *btree) Delete(key string, id rowID) {
	n := t.root
	for !n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := sort.SearchStrings(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return
	}
	ids := n.vals[i]
	for j, got := range ids {
		if got == id {
			ids[j] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.size--
		return
	}
	n.vals[i] = ids
}

// Get returns the posting list for an exact key (nil when absent). The
// returned slice is owned by the tree; callers must not modify it.
func (t *btree) Get(key string) []rowID {
	n := t.root
	for !n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i]
	}
	return nil
}

// Range visits keys in [lo, hi) in ascending order, calling fn with each
// key's posting list. Empty lo means from the start; empty hi means to the
// end. fn returning false stops the scan.
func (t *btree) Range(lo, hi string, fn func(key string, ids []rowID) bool) {
	n := t.root
	for !n.leaf {
		i := sort.SearchStrings(n.keys, lo)
		if i < len(n.keys) && n.keys[i] == lo {
			i++
		}
		n = n.children[i]
	}
	for n != nil {
		start := sort.SearchStrings(n.keys, lo)
		for i := start; i < len(n.keys); i++ {
			if hi != "" && n.keys[i] >= hi {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Ascend visits every key in order.
func (t *btree) Ascend(fn func(key string, ids []rowID) bool) {
	t.Range("", "", fn)
}
