package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func usersSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema("users",
		[]Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "name", Type: TypeString, NotNull: true},
			{Name: "age", Type: TypeInt},
			{Name: "active", Type: TypeBool, Default: true},
		},
		"id")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func newTestEngine(t testing.TB) *Engine {
	t.Helper()
	e := MustOpenMemory()
	t.Cleanup(func() { e.Close() })
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	return e
}

func mustInsert(t testing.TB, e *Engine, table string, rows ...Row) []RID {
	t.Helper()
	var rids []RID
	err := e.Update(func(tx *Tx) error {
		for _, r := range rows {
			rid, err := tx.Insert(table, r)
			if err != nil {
				return err
			}
			rids = append(rids, rid)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	return rids
}

func TestCreateTableValidation(t *testing.T) {
	e := MustOpenMemory()
	defer e.Close()
	if err := e.CreateTable(&Schema{Name: "bad name!", Columns: []Column{{Name: "a", Type: TypeInt}}}); err == nil {
		t.Error("invalid table name accepted")
	}
	if err := e.CreateTable(&Schema{Name: "t", Columns: nil}); err == nil {
		t.Error("empty column list accepted")
	}
	s := usersSchema(t)
	if err := e.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable(s); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if !e.HasTable("USERS") {
		t.Error("table lookup should be case-insensitive")
	}
}

func TestInsertScanRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	mustInsert(t, e, "users",
		Row{int64(1), "ada", int64(36), true},
		Row{int64(2), "grace", int64(45), false},
	)
	var got []Row
	err := e.View(func(tx *Tx) error {
		return tx.Scan("users", func(rid RID, row Row) bool {
			got = append(got, row.Clone())
			return true
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("scan returned %d rows, want 2", len(got))
	}
	if got[0][1] != "ada" || got[1][1] != "grace" {
		t.Errorf("rows = %v", got)
	}
}

func TestInsertDefaultsAndNotNull(t *testing.T) {
	e := newTestEngine(t)
	var rid RID
	err := e.Update(func(tx *Tx) error {
		var err error
		rid, err = tx.InsertMap("users", map[string]Value{"id": 1, "name": "ada", "age": nil})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	e.View(func(tx *Tx) error {
		row, err := tx.Get("users", rid)
		if err != nil {
			t.Fatal(err)
		}
		if row[3] != true {
			t.Errorf("default not applied: active = %v", row[3])
		}
		if row[2] != nil {
			t.Errorf("nullable column = %v, want nil", row[2])
		}
		return nil
	})
	err = e.Update(func(tx *Tx) error {
		_, err := tx.InsertMap("users", map[string]Value{"id": 2})
		return err
	})
	if err == nil {
		t.Error("NOT NULL violation accepted")
	}
	err = e.Update(func(tx *Tx) error {
		_, err := tx.InsertMap("users", map[string]Value{"id": 3, "name": "x", "bogus": 1})
		return err
	})
	if err == nil {
		t.Error("unknown column accepted")
	}
}

func TestPrimaryKeyUnique(t *testing.T) {
	e := newTestEngine(t)
	mustInsert(t, e, "users", Row{int64(1), "ada", nil, nil})
	err := e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(1), "dup", nil, nil})
		return err
	})
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate pk: %v", err)
	}
	// After a delete the key is reusable.
	var rid RID
	e.View(func(tx *Tx) error {
		return tx.Scan("users", func(r RID, row Row) bool { rid = r; return false })
	})
	if err := e.Update(func(tx *Tx) error { return tx.DeleteRID("users", rid) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(1), "reborn", nil, nil})
		return err
	}); err != nil {
		t.Errorf("reinsert after delete: %v", err)
	}
}

func TestUpdateRID(t *testing.T) {
	e := newTestEngine(t)
	rids := mustInsert(t, e, "users", Row{int64(1), "ada", int64(30), true})
	var newRID RID
	err := e.Update(func(tx *Tx) error {
		var err error
		newRID, err = tx.UpdateRID("users", rids[0], Row{int64(1), "ada", int64(31), true})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	e.View(func(tx *Tx) error {
		if _, err := tx.Get("users", rids[0]); err == nil {
			t.Error("old version still visible")
		}
		row, err := tx.Get("users", newRID)
		if err != nil {
			t.Fatal(err)
		}
		if row[2] != int64(31) {
			t.Errorf("age = %v, want 31", row[2])
		}
		return nil
	})
}

func TestSnapshotIsolation(t *testing.T) {
	e := newTestEngine(t)
	mustInsert(t, e, "users", Row{int64(1), "ada", nil, nil})

	reader := e.Begin()
	defer reader.Rollback()

	writer := e.Begin()
	if _, err := writer.Insert("users", Row{int64(2), "grace", nil, nil}); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// The reader began before the writer committed: it must not see the
	// new row.
	n, err := reader.Count("users")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("reader sees %d rows, want 1 (snapshot isolation)", n)
	}

	// A fresh transaction sees both rows.
	e.View(func(tx *Tx) error {
		n, _ := tx.Count("users")
		if n != 2 {
			t.Errorf("fresh tx sees %d rows, want 2", n)
		}
		return nil
	})
}

func TestOwnWritesVisible(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	defer tx.Rollback()
	rid, err := tx.Insert("users", Row{int64(1), "ada", nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get("users", rid); err != nil {
		t.Errorf("own insert invisible: %v", err)
	}
	if err := tx.DeleteRID("users", rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get("users", rid); err == nil {
		t.Error("own delete still visible")
	}
}

func TestRollbackDiscardsWrites(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	if _, err := tx.Insert("users", Row{int64(1), "ghost", nil, nil}); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	e.View(func(tx *Tx) error {
		n, _ := tx.Count("users")
		if n != 0 {
			t.Errorf("rolled-back insert visible: %d rows", n)
		}
		return nil
	})
	// The pk value must be reusable after rollback.
	if err := e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(1), "real", nil, nil})
		return err
	}); err != nil {
		t.Errorf("insert after rollback: %v", err)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	e := newTestEngine(t)
	rids := mustInsert(t, e, "users", Row{int64(1), "ada", nil, nil})

	tx1 := e.Begin()
	tx2 := e.Begin()
	defer tx1.Rollback()
	defer tx2.Rollback()

	if err := tx1.DeleteRID("users", rids[0]); err != nil {
		t.Fatal(err)
	}
	err := tx2.DeleteRID("users", rids[0])
	if !errors.Is(err, ErrConflict) {
		t.Errorf("concurrent delete: %v, want ErrConflict", err)
	}
	// After tx1 aborts, tx2 retried in a fresh transaction succeeds.
	tx1.Rollback()
	if err := e.Update(func(tx *Tx) error { return tx.DeleteRID("users", rids[0]) }); err != nil {
		t.Errorf("delete after abort: %v", err)
	}
}

func TestConcurrentInsertSameKeyConflicts(t *testing.T) {
	e := newTestEngine(t)
	tx1 := e.Begin()
	tx2 := e.Begin()
	defer tx1.Rollback()
	defer tx2.Rollback()
	if _, err := tx1.Insert("users", Row{int64(7), "a", nil, nil}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Insert("users", Row{int64(7), "b", nil, nil}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("concurrent same-key insert: %v, want ErrDuplicate", err)
	}
}

func TestTxDone(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: %v", err)
	}
	if _, err := tx.Insert("users", Row{int64(1), "x", nil, nil}); !errors.Is(err, ErrTxDone) {
		t.Errorf("insert after commit: %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Errorf("rollback after commit should be a no-op: %v", err)
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	e := newTestEngine(t)
	if err := e.CreateIndex(IndexInfo{Name: "users_name", Table: "users", Columns: []string{"name"}, Kind: IndexHash}); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users",
		Row{int64(1), "ada", nil, nil},
		Row{int64(2), "grace", nil, nil},
		Row{int64(3), "ada", nil, nil},
	)
	var hits int
	e.View(func(tx *Tx) error {
		return tx.LookupEqual("users", "users_name", []Value{"ada"}, func(RID, Row) bool {
			hits++
			return true
		})
	})
	if hits != 2 {
		t.Errorf("lookup hits = %d, want 2", hits)
	}
}

func TestBTreeIndexRangeScan(t *testing.T) {
	e := newTestEngine(t)
	if err := e.CreateIndex(IndexInfo{Name: "users_age", Table: "users", Columns: []string{"age"}, Kind: IndexBTree}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		mustInsert(t, e, "users", Row{int64(i), fmt.Sprintf("u%d", i), int64(i * 2), nil})
	}
	var ages []int64
	e.View(func(tx *Tx) error {
		return tx.ScanRange("users", "users_age", []Value{int64(20)}, []Value{int64(30)}, func(_ RID, row Row) bool {
			ages = append(ages, row[2].(int64))
			return true
		})
	})
	if len(ages) != 5 {
		t.Fatalf("range [20,30) returned %d rows: %v", len(ages), ages)
	}
	for i, a := range ages {
		if a < 20 || a >= 30 {
			t.Errorf("age %d out of range", a)
		}
		if i > 0 && ages[i-1] > a {
			t.Error("range scan not ordered")
		}
	}
}

func TestUniqueSecondaryIndex(t *testing.T) {
	e := newTestEngine(t)
	mustInsert(t, e, "users", Row{int64(1), "ada", nil, nil}, Row{int64(2), "ada", nil, nil})
	err := e.CreateIndex(IndexInfo{Name: "users_name_u", Table: "users", Columns: []string{"name"}, Unique: true, Kind: IndexBTree})
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("unique index over duplicates: %v", err)
	}
	if err := e.Update(func(tx *Tx) error {
		return tx.Scan("users", func(rid RID, row Row) bool {
			if row[0] == int64(2) {
				tx.DeleteRID("users", rid)
			}
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex(IndexInfo{Name: "users_name_u", Table: "users", Columns: []string{"name"}, Unique: true, Kind: IndexBTree}); err != nil {
		t.Fatalf("unique index after dedup: %v", err)
	}
	err = e.Update(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{int64(9), "ada", nil, nil})
		return err
	})
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("unique secondary violation: %v", err)
	}
}

func TestDropTableAndIndex(t *testing.T) {
	e := newTestEngine(t)
	if err := e.CreateIndex(IndexInfo{Name: "ix", Table: "users", Columns: []string{"name"}, Kind: IndexHash}); err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("users", "users_pkey"); err == nil {
		t.Error("dropping pk index should fail")
	}
	if err := e.DropIndex("users", "ix"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("users", "ix"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("double drop: %v", err)
	}
	if err := e.DropTable("users"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropTable("users"); !errors.Is(err, ErrNoTable) {
		t.Errorf("double drop table: %v", err)
	}
}

func TestSequences(t *testing.T) {
	e := newTestEngine(t)
	a, _ := e.NextSequence("s")
	b, _ := e.NextSequence("s")
	c, _ := e.NextSequence("other")
	if a != 1 || b != 2 || c != 1 {
		t.Errorf("sequence values: %d %d %d", a, b, c)
	}
	if v := e.SequenceValue("s"); v != 2 {
		t.Errorf("SequenceValue = %d", v)
	}
}

func TestStats(t *testing.T) {
	e := newTestEngine(t)
	mustInsert(t, e, "users", Row{int64(1), "a", nil, nil}, Row{int64(2), "b", nil, nil})
	st := e.Stats()
	if st.Tables != 1 || st.Rows != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Writes == 0 {
		t.Error("writes counter not advancing")
	}
}

func TestConcurrentWritersDistinctKeys(t *testing.T) {
	e := newTestEngine(t)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := int64(w*per + i)
				err := e.Update(func(tx *Tx) error {
					_, err := tx.Insert("users", Row{id, fmt.Sprintf("u%d", id), nil, nil})
					return err
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	e.View(func(tx *Tx) error {
		n, _ := tx.Count("users")
		if n != workers*per {
			t.Errorf("count = %d, want %d", n, workers*per)
		}
		return nil
	})
}

func TestClosedEngine(t *testing.T) {
	e := MustOpenMemory()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v", err)
	}
	if err := e.CreateTable(usersSchema(t)); !errors.Is(err, ErrClosed) {
		t.Errorf("create on closed engine: %v", err)
	}
}

// TestConcurrentMixedWorkloadWithVacuum hammers one engine with
// concurrent readers, writers (insert/update/delete with retry on
// conflict), and explicit vacuums — the shape of real multi-tenant
// service traffic. Run with -race to validate the locking.
func TestConcurrentMixedWorkloadWithVacuum(t *testing.T) {
	e := newTestEngine(t)
	const writers, readers, iters = 4, 4, 150
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := int64(w*1000 + i%40) // overlapping key space
				err := e.Update(func(tx *Tx) error {
					var rid RID
					found := false
					tx.LookupEqual("users", "users_pkey", []Value{id}, func(r RID, _ Row) bool {
						rid, found = r, true
						return false
					})
					if !found {
						_, err := tx.Insert("users", Row{id, fmt.Sprintf("u%d", id), int64(i), true})
						return err
					}
					if i%3 == 0 {
						return tx.DeleteRID("users", rid)
					}
					_, err := tx.UpdateRID("users", rid, Row{id, fmt.Sprintf("u%d", id), int64(i), true})
					return err
				})
				// Conflicts and duplicate keys are expected under
				// contention; everything else is a bug.
				if err != nil && !errors.Is(err, ErrConflict) && !errors.Is(err, ErrDuplicate) &&
					!errors.Is(err, ErrRowNotVisible) && !errors.Is(err, ErrNoRow) {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := e.View(func(tx *Tx) error {
					_, err := tx.Count("users")
					return err
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			e.Vacuum() // usually refused while txs are active; must be safe
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The engine must still be coherent: scan count equals pk index count.
	e.View(func(tx *Tx) error {
		scan := 0
		tx.Scan("users", func(RID, Row) bool { scan++; return true })
		viaPK := 0
		tx.ScanRange("users", "users_pkey", nil, nil, func(RID, Row) bool { viaPK++; return true })
		if scan != viaPK {
			t.Errorf("scan=%d pk=%d after stress", scan, viaPK)
		}
		return nil
	})
}
