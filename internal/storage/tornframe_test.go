package storage

import (
	"errors"
	"testing"
	"time"
)

// captureCommitFrame commits one multi-row transaction on a fresh
// primary and returns the shipped commit frame's payload.
func captureCommitFrame(t *testing.T, rows int) []byte {
	t.Helper()
	primary := newTestEngine(t)
	sub := primary.SubscribeWAL(16)
	defer sub.Close()
	var batch []Row
	for i := 0; i < rows; i++ {
		batch = append(batch, Row{int64(i), "torn", int64(30), true})
	}
	mustInsert(t, primary, "users", batch...)
	select {
	case frame := <-sub.Frames():
		if !FrameIsCommit(frame.Payload) {
			t.Fatalf("captured frame type %q, want commit", frame.Payload[0])
		}
		return frame.Payload
	case <-time.After(2 * time.Second):
		t.Fatal("commit frame never shipped")
	}
	return nil
}

// TestTornFrameEveryTruncationOffset: a commit frame truncated at EVERY
// possible offset must be rejected by ApplyReplicated, and — the actual
// safety property — must never leave a partially visible commit: after
// the rejection the replica reads exactly the rows it read before, and
// the full frame still applies cleanly afterwards (the torn attempt did
// not burn the rids or poison the table).
func TestTornFrameEveryTruncationOffset(t *testing.T) {
	payload := captureCommitFrame(t, 5)
	if len(payload) < 10 {
		t.Fatalf("suspiciously small commit frame (%d bytes)", len(payload))
	}
	for cut := 0; cut < len(payload); cut++ {
		replica := newTestEngine(t)
		torn := payload[:cut]
		err := replica.ApplyReplicated(torn)
		if err == nil {
			t.Fatalf("truncation at offset %d/%d accepted", cut, len(payload))
		}
		if got := countRows(t, replica, "users"); got != 0 {
			t.Fatalf("truncation at offset %d left %d visible rows — partial commit served", cut, got)
		}
		// The replica recovers by re-applying the intact frame (what a
		// re-bootstrap stream delivers): all-or-nothing, so all.
		if err := replica.ApplyReplicated(payload); err != nil {
			t.Fatalf("intact frame after torn attempt at %d: %v", cut, err)
		}
		if got := countRows(t, replica, "users"); got != 5 {
			t.Fatalf("intact frame after torn attempt at %d applied %d rows, want 5", cut, got)
		}
	}
}

// TestCorruptFrameTypeRejected: an unknown frame type byte is ErrBadFrame,
// and flipping the type byte of a valid commit frame never applies rows.
func TestCorruptFrameTypeRejected(t *testing.T) {
	payload := captureCommitFrame(t, 2)
	replica := newTestEngine(t)
	corrupt := append([]byte(nil), payload...)
	corrupt[0] = 0xEE
	if err := replica.ApplyReplicated(corrupt); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt type byte: err = %v, want ErrBadFrame", err)
	}
	if got := countRows(t, replica, "users"); got != 0 {
		t.Fatalf("corrupt frame left %d visible rows", got)
	}
}
