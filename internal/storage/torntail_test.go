package storage

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// Torn-tail property tests: whatever a crash does to the final WAL frame
// — cut it short at any byte, or corrupt any byte of it — recovery must
// come back with exactly the committed prefix (every earlier commit,
// none of the torn one) and the log must accept new appends afterwards.
//
// The cases are exhaustive over the final frame rather than sampled:
// frames are small, and the interesting boundaries (inside the length
// header, between payload and CRC) are exactly the ones sampling misses.

// buildTornTailWAL commits three one-row transactions under SyncFull and
// returns the raw WAL bytes plus the offset where the final frame starts.
func buildTornTailWAL(t *testing.T) (walBytes []byte, finalFrameStart int) {
	t.Helper()
	dir := t.TempDir()
	e := openDir(t, dir, SyncFull)
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "users", Row{int64(1), "ada", int64(36), true})
	mustInsert(t, e, "users", Row{int64(2), "grace", int64(45), false})
	walPath := filepath.Join(dir, walFile)
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	prefixSize := st.Size()
	mustInsert(t, e, "users", Row{int64(3), "edsger", int64(72), true})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) <= prefixSize {
		t.Fatalf("final commit added no bytes (wal %d, prefix %d)", len(raw), prefixSize)
	}
	return raw, int(prefixSize)
}

// checkRecovery opens a database whose WAL is the given bytes and
// asserts it recovers the two-commit prefix and stays writable.
func checkRecovery(t *testing.T, walBytes []byte, label string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := Open(Options{Dir: dir, Sync: SyncFull})
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	n := countRows(t, e, "users")
	if n != 2 {
		e.Close()
		t.Fatalf("%s: recovered %d rows, want exactly the 2-commit prefix", label, n)
	}
	// The recovered log must accept and persist new commits.
	mustInsert(t, e, "users", Row{int64(4), "barbara", int64(28), true})
	if err := e.Close(); err != nil {
		t.Fatalf("%s: close: %v", label, err)
	}
	e2, err := Open(Options{Dir: dir, Sync: SyncFull})
	if err != nil {
		t.Fatalf("%s: second reopen: %v", label, err)
	}
	defer e2.Close()
	if n := countRows(t, e2, "users"); n != 3 {
		t.Fatalf("%s: %d rows after post-recovery commit, want 3", label, n)
	}
}

func TestWALTornTailEveryTruncation(t *testing.T) {
	raw, start := buildTornTailWAL(t)
	for cut := start; cut < len(raw); cut++ {
		checkRecovery(t, raw[:cut], "truncate at "+strconv.Itoa(cut))
	}
}

func TestWALTornTailEveryCorruptedByte(t *testing.T) {
	raw, start := buildTornTailWAL(t)
	for i := start; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xA5
		checkRecovery(t, mut, "flip byte "+strconv.Itoa(i))
	}
}
