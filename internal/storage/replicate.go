package storage

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/odbis/odbis/internal/fault"
)

// The follower side of WAL-frame shipping: ApplyReplicated applies one
// shipped frame (ship.go) to a replica engine. Apply is idempotent —
// bootstrap overlap means the first frames after a state dump may
// describe mutations the dump already contains — and atomic per frame:
// a commit frame's rows become visible to replica readers all at once,
// or (on a mid-frame failure) never.

// ErrBadFrame reports a shipped frame that cannot be decoded — a torn or
// corrupt stream. The replica must stop applying and re-bootstrap.
var ErrBadFrame = errors.New("storage: corrupt replication frame")

// beginReplicatedTx allocates a replica-local transaction id registered
// active, without taking a snapshot (replicated ops carry their own
// conflict-free ordering from the primary).
func (e *Engine) beginReplicatedTx() uint64 {
	e.txMu.Lock()
	id := e.nextTxID.Add(1) - 1
	e.txActive[id] = true
	e.txMu.Unlock()
	return id
}

// ApplyReplicated applies one shipped WAL frame to this engine. Frames
// must be applied in ship order by a single goroutine; replica readers
// may run concurrently. A decode failure (ErrBadFrame) or an injected
// apply fault leaves no partially visible commit: the frame's writes are
// parked under an aborted local transaction id and the caller is
// expected to re-bootstrap the replica.
func (e *Engine) ApplyReplicated(payload []byte) error {
	if len(payload) == 0 {
		return ErrBadFrame
	}
	dec := newDecoder(bytes.NewReader(payload))
	switch typ := dec.byte(); typ {
	case recCreateTable:
		s := dec.schema()
		if dec.err != nil {
			return fmt.Errorf("%w: %v", ErrBadFrame, dec.err)
		}
		if err := s.Validate(); err != nil {
			return err
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed {
			return ErrClosed
		}
		key := lowerName(s.Name)
		if _, ok := e.tables[key]; ok {
			return nil // already applied (bootstrap overlap)
		}
		t := &table{schema: s, byRID: make(map[RID]rowID), indexes: make(map[string]*index)}
		if len(s.PrimaryKey) > 0 {
			pk := e.buildIndex(t, IndexInfo{
				Name:    s.Name + "_pkey",
				Table:   s.Name,
				Columns: append([]string(nil), s.PrimaryKey...),
				Unique:  true,
				Kind:    IndexBTree,
			})
			t.pkIndex = pk
			t.indexes[lowerName(pk.info.Name)] = pk
		}
		e.tables[key] = t
		e.schemaEpoch.Add(1)
		return nil
	case recDropTable:
		name := dec.str()
		if dec.err != nil {
			return fmt.Errorf("%w: %v", ErrBadFrame, dec.err)
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed {
			return ErrClosed
		}
		key := lowerName(name)
		if _, ok := e.tables[key]; !ok {
			return nil
		}
		delete(e.tables, key)
		e.schemaEpoch.Add(1)
		return nil
	case recCreateIndex:
		info := decodeIndexInfo(dec)
		if dec.err != nil {
			return fmt.Errorf("%w: %v", ErrBadFrame, dec.err)
		}
		t, err := e.getTable(info.Table)
		if err != nil {
			return nil // table dropped by a later frame; the drop governs
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		key := lowerName(info.Name)
		if _, ok := t.indexes[key]; ok {
			return nil
		}
		t.indexes[key] = e.buildIndex(t, info)
		e.schemaEpoch.Add(1)
		return nil
	case recDropIndex:
		tbl, name := dec.str(), dec.str()
		if dec.err != nil {
			return fmt.Errorf("%w: %v", ErrBadFrame, dec.err)
		}
		t, err := e.getTable(tbl)
		if err != nil {
			return nil
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		key := lowerName(name)
		ix, ok := t.indexes[key]
		if !ok || ix == t.pkIndex {
			return nil
		}
		delete(t.indexes, key)
		e.schemaEpoch.Add(1)
		return nil
	case recSequence:
		name := dec.str()
		v := dec.varint()
		if dec.err != nil {
			return fmt.Errorf("%w: %v", ErrBadFrame, dec.err)
		}
		e.setSequence(name, v) // max-merge: idempotent
		return nil
	case recCommit:
		_ = dec.uvarint() // primary txid: informational only, see below
		nops := dec.uvarint()
		if dec.err != nil || nops > maxBlob {
			return ErrBadFrame
		}
		// Decode every op before touching any table: a torn or corrupt
		// frame must never partially apply.
		ops := make([]txOp, 0, nops)
		for i := uint64(0); i < nops; i++ {
			op := txOp{kind: txOpKind(dec.byte()), table: dec.str(), rid: RID(dec.uvarint())}
			if op.kind == opInsert {
				op.row = dec.row()
			}
			if dec.err != nil {
				return fmt.Errorf("%w: %v", ErrBadFrame, dec.err)
			}
			if op.kind != opInsert && op.kind != opDelete {
				return ErrBadFrame
			}
			ops = append(ops, op)
		}
		return e.applyReplicatedTx(ops)
	default:
		return fmt.Errorf("%w: unknown frame type %q", ErrBadFrame, typ)
	}
}

// applyReplicatedTx applies one commit frame's ops under a fresh
// replica-local transaction id.
//
// The frame's primary txid is deliberately not reused for xmin/xmax:
// replica-local read transactions draw ids from the same counter, so a
// primary id could collide with a local id whose status (active or
// aborted) would corrupt the visibility of replicated rows — an aborted
// local reader sharing a replicated delete's id would resurrect the
// deleted row. The local id is registered active for the duration of the
// apply, so concurrent replica readers see the frame all-or-nothing.
func (e *Engine) applyReplicatedTx(ops []txOp) error {
	local := e.beginReplicatedTx()
	var maxRID uint64
	applied := 0
	for i, op := range ops {
		if i > 0 {
			// The partial-apply window of a multi-op frame.
			if err := fault.Point(fault.ReplicaApplyMid); err != nil {
				e.abortReplicatedTx(local, ops[:applied])
				return err
			}
		}
		if err := e.applyReplicatedOp(local, op); err != nil {
			e.abortReplicatedTx(local, ops[:applied])
			return err
		}
		applied++
		if uint64(op.rid) > maxRID {
			maxRID = uint64(op.rid)
		}
	}
	e.finishTx(local, txCommitted)
	e.noteDead(ops, txCommitted)
	// Keep the local RID horizon past every replicated rid so local
	// allocations (none today, but Attachment users may mint rids) never
	// collide with future frames.
	for {
		cur := e.nextRID.Load()
		if maxRID < cur || e.nextRID.CompareAndSwap(cur, maxRID+1) {
			break
		}
	}
	return nil
}

// abortReplicatedTx parks a partially applied frame under an aborted
// transaction id: the partial writes stay in the heap but are invisible
// to every present and future reader, and vacuum reclaims them. The
// replica is expected to re-bootstrap.
func (e *Engine) abortReplicatedTx(local uint64, partial []txOp) {
	e.finishTx(local, txAborted)
	e.noteDead(partial, txAborted)
}

func (e *Engine) applyReplicatedOp(local uint64, op txOp) error {
	t, err := e.getTable(op.table)
	if err != nil {
		if errors.Is(err, ErrNoTable) {
			// Dropped by a frame the bootstrap dump already contained;
			// the drop governs.
			return nil
		}
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch op.kind {
	case opInsert:
		if _, ok := t.byRID[op.rid]; ok {
			return nil // already applied (bootstrap overlap)
		}
		slot := rowID(len(t.versions))
		t.versions = append(t.versions, version{rid: op.rid, row: op.row, xmin: local})
		t.byRID[op.rid] = slot
		for _, ix := range t.indexes {
			ix.insert(ix.keyFor(op.row), slot)
		}
	case opDelete:
		slot, ok := t.byRID[op.rid]
		if !ok {
			return nil // delete already reflected in the bootstrap dump
		}
		v := &t.versions[slot]
		if v.xmax != 0 {
			return nil // already deleted (bootstrap overlap)
		}
		v.xmax = local
	}
	return nil
}
