package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SyncMode selects the durability of committed transactions.
type SyncMode uint8

const (
	// SyncNone keeps WAL records in the process buffer; a crash may lose
	// recent commits. Fastest.
	SyncNone SyncMode = iota
	// SyncBuffered flushes WAL records to the operating system at every
	// commit; an OS crash may lose recent commits, a process crash does not.
	SyncBuffered
	// SyncFull fsyncs the WAL at every commit. Slowest, fully durable.
	SyncFull
)

// Options configure Open.
type Options struct {
	// Dir is the data directory. Empty means a purely in-memory engine
	// with no durability.
	Dir string
	// Sync selects WAL durability (ignored for in-memory engines).
	Sync SyncMode
}

// Common error values returned by the engine.
var (
	ErrTableExists   = errors.New("storage: table already exists")
	ErrNoTable       = errors.New("storage: no such table")
	ErrNoIndex       = errors.New("storage: no such index")
	ErrIndexExists   = errors.New("storage: index already exists")
	ErrDuplicate     = errors.New("storage: unique constraint violation")
	ErrConflict      = errors.New("storage: transaction conflict")
	ErrTxDone        = errors.New("storage: transaction already finished")
	ErrNoRow         = errors.New("storage: no such row")
	ErrClosed        = errors.New("storage: engine closed")
	ErrRowNotVisible = errors.New("storage: row not visible to transaction")
	// ErrWALFailed reports that a previous WAL write or sync failed and
	// the engine refuses further commits: the on-disk log tail is
	// suspect, and acknowledging writes that may not survive a restart
	// would silently diverge memory from disk. A successful Checkpoint
	// rebuilds the log from memory and clears the condition.
	ErrWALFailed = errors.New("storage: wal failed, engine is read-only until checkpoint or restart")
)

// rowID indexes a version slot within a table.
type rowID uint32

// RID is the stable, engine-wide identity of a row version. RIDs survive
// restarts and checkpoints and are how callers address updates/deletes.
type RID uint64

type txStatus uint8

const (
	txActive txStatus = iota
	txCommitted
	txAborted
)

// version is one MVCC version of a row.
type version struct {
	rid  RID
	row  Row
	xmin uint64 // creating transaction; 0 means frozen (always committed)
	xmax uint64 // deleting transaction; 0 means live
}

// IndexKind selects the index structure.
type IndexKind uint8

const (
	// IndexHash supports equality probes only.
	IndexHash IndexKind = iota
	// IndexBTree supports equality probes and ordered range scans.
	IndexBTree
)

func (k IndexKind) String() string {
	if k == IndexHash {
		return "hash"
	}
	return "btree"
}

// IndexInfo describes a secondary index.
type IndexInfo struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Kind    IndexKind
}

type index struct {
	info IndexInfo
	cols []int              // column positions
	hash map[string][]rowID // IndexHash
	tree *btree             // IndexBTree
}

func (ix *index) insert(key string, id rowID) {
	if ix.tree != nil {
		ix.tree.Insert(key, id)
		return
	}
	ix.hash[key] = append(ix.hash[key], id)
}

func (ix *index) remove(key string, id rowID) {
	if ix.tree != nil {
		ix.tree.Delete(key, id)
		return
	}
	ids := ix.hash[key]
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.hash, key)
		return
	}
	ix.hash[key] = ids
}

func (ix *index) lookup(key string) []rowID {
	if ix.tree != nil {
		return ix.tree.Get(key)
	}
	return ix.hash[key]
}

func (ix *index) keyFor(row Row) string {
	vals := make([]Value, len(ix.cols))
	for i, c := range ix.cols {
		vals[i] = row[c]
	}
	return EncodeKey(vals...)
}

// table holds the versions and indexes of one relation.
type table struct {
	mu     sync.RWMutex
	schema *Schema
	//odbis:guardedby mu -- WAL replay also writes it, single-threaded in Open before the engine is published
	versions []version
	//odbis:guardedby mu -- WAL replay also writes it, single-threaded in Open before the engine is published
	byRID   map[RID]rowID
	indexes map[string]*index // lower-cased index name
	pkIndex *index            // nil when the table has no primary key
	dead    int               // committed-dead version count, drives vacuum
}

// Engine is the storage engine. It is safe for concurrent use.
type Engine struct {
	opts Options

	mu     sync.RWMutex // guards tables map and closing
	tables map[string]*table
	closed bool

	txMu     sync.Mutex // guards txActive and txAborted
	txActive map[uint64]bool
	// txAborted retains aborted transaction ids until vacuum rewrites
	// the row versions that reference them; committed ids need no entry
	// (statusOf treats unknown ids as committed).
	txAborted map[uint64]bool
	nextTxID  atomic.Uint64
	nextRID   atomic.Uint64

	seqMu sync.Mutex
	//odbis:guardedby seqMu -- snapshot load also writes it, single-threaded in Open before the engine is published
	seqs map[string]int64

	wal *wal // nil for in-memory engines
	// epoch counts checkpoints: the snapshot on disk carries it and the
	// WAL is stamped with it on every reset, letting recovery detect a
	// WAL that predates the snapshot (crash between snapshot publish and
	// WAL reset). Guarded by e.mu.
	epoch uint64

	statsReads  atomic.Uint64
	statsWrites atomic.Uint64

	// schemaEpoch counts DDL changes (table or index create/drop).
	// The SQL layer stamps cached plans with the epoch they were
	// planned under and treats any mismatch as a cache miss, so one
	// atomic compare is the whole invalidation protocol.
	schemaEpoch atomic.Uint64

	attachMu sync.Mutex
	//odbis:guardedby attachMu
	attach map[any]any

	// tap fans committed redo frames out to WAL subscribers (replicas).
	// Lock order: e.mu and t.mu come before tap.mu; tap.mu comes before
	// txMu (Commit flips visibility and ships under it). See ship.go.
	tap frameTap
}

// SchemaEpoch returns the current schema epoch. Every DDL operation
// (CREATE/DROP TABLE, CREATE/DROP INDEX) bumps it; consumers that
// cache schema-derived artifacts revalidate by comparing epochs.
func (e *Engine) SchemaEpoch() uint64 { return e.schemaEpoch.Load() }

// Attachment returns the per-engine singleton stored under key,
// creating it with mk on first use. Layers above storage use this to
// share engine-lifetime state (e.g. the SQL plan cache) across
// independently constructed handles onto the same engine.
func (e *Engine) Attachment(key any, mk func() any) any {
	e.attachMu.Lock()
	defer e.attachMu.Unlock()
	if e.attach == nil {
		e.attach = make(map[any]any)
	}
	v, ok := e.attach[key]
	if !ok {
		v = mk()
		e.attach[key] = v
	}
	return v
}

// Open creates or recovers an engine. With a non-empty Options.Dir the
// directory is created if needed, the latest snapshot is loaded and the
// WAL replayed.
func Open(opts Options) (*Engine, error) {
	e := &Engine{
		opts:      opts,
		tables:    make(map[string]*table),
		txActive:  make(map[uint64]bool),
		txAborted: make(map[uint64]bool),
		seqs:      make(map[string]int64),
	}
	e.nextTxID.Store(1)
	e.nextRID.Store(1)
	if opts.Dir == "" {
		return e, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	if err := e.loadSnapshot(filepath.Join(opts.Dir, snapshotFile)); err != nil {
		return nil, err
	}
	w, err := openWAL(filepath.Join(opts.Dir, walFile), opts.Sync)
	if err != nil {
		return nil, err
	}
	e.wal = w
	if err := e.replayWAL(); err != nil {
		w.Close()
		return nil, err
	}
	return e, nil
}

// MustOpenMemory returns an in-memory engine, panicking on failure. It is
// a convenience for tests and examples.
func MustOpenMemory() *Engine {
	e, err := Open(Options{})
	if err != nil {
		panic(err)
	}
	return e
}

// Close flushes the WAL and releases resources. Closing twice is an error.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.closed = true
	e.closeTap()
	if e.wal != nil {
		return e.wal.Close()
	}
	return nil
}

// Dir reports the data directory ("" for in-memory engines).
func (e *Engine) Dir() string { return e.opts.Dir }

// Stats reports cumulative engine counters.
type Stats struct {
	Tables int
	Rows   int // live committed rows across all tables
	Reads  uint64
	Writes uint64
}

// Stats returns a point-in-time snapshot of engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := Stats{
		Tables: len(e.tables),
		Reads:  e.statsReads.Load(),
		Writes: e.statsWrites.Load(),
	}
	snap := e.takeSnapshotLocked()
	for _, t := range e.tables {
		t.mu.RLock()
		for i := range t.versions {
			if e.visible(&t.versions[i], snap, 0) {
				st.Rows++
			}
		}
		t.mu.RUnlock()
	}
	return st
}

func lowerName(name string) string { return strings.ToLower(name) }

func (e *Engine) getTable(name string) (*table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	t, ok := e.tables[lowerName(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// CreateTable registers a new table. DDL is auto-committed and durable
// immediately.
func (e *Engine) CreateTable(s *Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	s = s.Clone()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	key := lowerName(s.Name)
	if _, ok := e.tables[key]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, s.Name)
	}
	t := &table{
		schema:  s,
		byRID:   make(map[RID]rowID),
		indexes: make(map[string]*index),
	}
	if len(s.PrimaryKey) > 0 {
		pk := e.buildIndex(t, IndexInfo{
			Name:    s.Name + "_pkey",
			Table:   s.Name,
			Columns: append([]string(nil), s.PrimaryKey...),
			Unique:  true,
			Kind:    IndexBTree,
		})
		t.pkIndex = pk
		t.indexes[lowerName(pk.info.Name)] = pk
	}
	e.tables[key] = t
	if e.wal != nil {
		if err := e.wal.logCreateTable(s); err != nil {
			delete(e.tables, key)
			return err
		}
	}
	e.schemaEpoch.Add(1)
	e.ship(false, func(enc *encoder) {
		enc.byte(recCreateTable)
		enc.schema(s)
	})
	return nil
}

// DropTable removes a table and its indexes.
func (e *Engine) DropTable(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	key := lowerName(name)
	if _, ok := e.tables[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	delete(e.tables, key)
	e.schemaEpoch.Add(1)
	// Ship before the WAL write: the in-memory drop already happened and
	// survives a WAL error, so replicas must mirror it either way.
	e.ship(false, func(enc *encoder) {
		enc.byte(recDropTable)
		enc.str(name)
	})
	if e.wal != nil {
		return e.wal.logDropTable(name)
	}
	return nil
}

// HasTable reports whether the named table exists.
func (e *Engine) HasTable(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.tables[lowerName(name)]
	return ok
}

// Schema returns a copy of the named table's schema.
func (e *Engine) Schema(name string) (*Schema, error) {
	t, err := e.getTable(name)
	if err != nil {
		return nil, err
	}
	return t.schema.Clone(), nil
}

// Tables lists table names in sorted order.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for _, t := range e.tables {
		names = append(names, t.schema.Name)
	}
	sort.Strings(names)
	return names
}

func (e *Engine) buildIndex(t *table, info IndexInfo) *index {
	ix := &index{info: info}
	ix.cols = make([]int, len(info.Columns))
	for i, c := range info.Columns {
		pos, _ := t.schema.ColumnIndex(c)
		ix.cols[i] = pos
	}
	if info.Kind == IndexBTree {
		ix.tree = newBTree()
	} else {
		ix.hash = make(map[string][]rowID)
	}
	for id := range t.versions {
		v := &t.versions[id]
		ix.insert(ix.keyFor(v.row), rowID(id))
	}
	return ix
}

// CreateIndex builds a secondary index over existing and future rows.
// Unique indexes reject creation when committed rows already violate
// uniqueness.
func (e *Engine) CreateIndex(info IndexInfo) error {
	t, err := e.getTable(info.Table)
	if err != nil {
		return err
	}
	if !ValidIdent(info.Name) {
		return fmt.Errorf("storage: invalid index name %q", info.Name)
	}
	for _, c := range info.Columns {
		if _, ok := t.schema.ColumnIndex(c); !ok {
			return fmt.Errorf("storage: index %s: no column %q in table %s", info.Name, c, info.Table)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := lowerName(info.Name)
	if _, ok := t.indexes[key]; ok {
		return fmt.Errorf("%w: %s", ErrIndexExists, info.Name)
	}
	ix := e.buildIndex(t, info)
	if info.Unique {
		snap := e.takeSnapshot()
		dup := false
		check := func(ids []rowID) bool {
			live := 0
			for _, id := range ids {
				if e.visible(&t.versions[id], snap, 0) {
					live++
				}
			}
			return live > 1
		}
		if ix.tree != nil {
			ix.tree.Ascend(func(_ string, ids []rowID) bool {
				dup = check(ids)
				return !dup
			})
		} else {
			for _, ids := range ix.hash {
				if check(ids) {
					dup = true
					break
				}
			}
		}
		if dup {
			return fmt.Errorf("%w: existing rows violate unique index %s", ErrDuplicate, info.Name)
		}
	}
	t.indexes[key] = ix
	e.schemaEpoch.Add(1)
	e.ship(false, func(enc *encoder) {
		enc.byte(recCreateIndex)
		encodeIndexInfo(enc, info)
	})
	if e.wal != nil {
		return e.wal.logCreateIndex(info)
	}
	return nil
}

// DropIndex removes a secondary index. The implicit primary-key index
// cannot be dropped.
func (e *Engine) DropIndex(tableName, indexName string) error {
	t, err := e.getTable(tableName)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := lowerName(indexName)
	ix, ok := t.indexes[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoIndex, indexName)
	}
	if ix == t.pkIndex {
		return fmt.Errorf("storage: cannot drop primary key index %s", indexName)
	}
	delete(t.indexes, key)
	e.schemaEpoch.Add(1)
	e.ship(false, func(enc *encoder) {
		enc.byte(recDropIndex)
		enc.str(tableName)
		enc.str(indexName)
	})
	if e.wal != nil {
		return e.wal.logDropIndex(tableName, indexName)
	}
	return nil
}

// Indexes lists the indexes defined on a table.
func (e *Engine) Indexes(tableName string) ([]IndexInfo, error) {
	t, err := e.getTable(tableName)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexInfo, 0, len(t.indexes))
	for _, ix := range t.indexes {
		info := ix.info
		info.Columns = append([]string(nil), ix.info.Columns...)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// NextSequence atomically increments and returns the named sequence,
// starting from 1. Sequence bumps are durable independently of any open
// transaction (like PostgreSQL sequences, they do not roll back).
func (e *Engine) NextSequence(name string) (int64, error) {
	e.seqMu.Lock()
	e.seqs[name]++
	v := e.seqs[name]
	e.seqMu.Unlock()
	// Ship regardless of WAL outcome: the in-memory bump above is what
	// replicas mirror (like sequences everywhere, it never rolls back).
	e.ship(false, func(enc *encoder) {
		enc.byte(recSequence)
		enc.str(name)
		enc.varint(v)
	})
	if e.wal != nil {
		if err := e.wal.logSequence(name, v); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// SequenceValue reports the current value of a sequence without
// incrementing it.
func (e *Engine) SequenceValue(name string) int64 {
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	return e.seqs[name]
}

func (e *Engine) setSequence(name string, v int64) {
	e.seqMu.Lock()
	if v > e.seqs[name] {
		e.seqs[name] = v
	}
	e.seqMu.Unlock()
}

// snapshot captures the visibility horizon of a transaction.
type snapshot struct {
	xmax   uint64          // transactions with id >= xmax are invisible
	active map[uint64]bool // transactions in-flight at snapshot time
}

func (e *Engine) takeSnapshot() snapshot {
	e.txMu.Lock()
	defer e.txMu.Unlock()
	return e.takeSnapshotTxLocked()
}

func (e *Engine) takeSnapshotTxLocked() snapshot {
	s := snapshot{xmax: e.nextTxID.Load(), active: nil}
	if len(e.txActive) > 0 {
		s.active = make(map[uint64]bool, len(e.txActive))
		for id := range e.txActive {
			s.active[id] = true
		}
	}
	return s
}

// takeSnapshotLocked is takeSnapshot for callers already holding e.mu.
func (e *Engine) takeSnapshotLocked() snapshot { return e.takeSnapshot() }

func (e *Engine) statusOf(txid uint64) txStatus {
	if txid == 0 {
		return txCommitted
	}
	e.txMu.Lock()
	defer e.txMu.Unlock()
	switch {
	case e.txActive[txid]:
		return txActive
	case e.txAborted[txid]:
		return txAborted
	default:
		// Committed transactions carry no entry.
		return txCommitted
	}
}

// committedBefore reports whether txid committed before the snapshot was
// taken.
func (e *Engine) committedBefore(txid uint64, s snapshot) bool {
	if txid == 0 {
		return true
	}
	if txid >= s.xmax || s.active[txid] {
		return false
	}
	return e.statusOf(txid) == txCommitted
}

// visible reports whether version v is visible under snapshot s to the
// transaction with id self (0 for a read-only observer).
func (e *Engine) visible(v *version, s snapshot, self uint64) bool {
	switch {
	case v.xmin == self && self != 0:
		// Our own insert: visible unless we deleted it ourselves.
		if v.xmax == self {
			return false
		}
	case !e.committedBefore(v.xmin, s):
		return false
	}
	if v.xmax == 0 {
		return true
	}
	if v.xmax == self && self != 0 {
		return false
	}
	// A delete is effective only when its transaction committed before our
	// snapshot; otherwise the row is still visible to us.
	return !e.committedBefore(v.xmax, s)
}
