package storage

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/odbis/odbis/internal/fault"
)

// Crash-recovery proofs: for every storage fault point, run a child
// process that commits under SyncFull with the point armed in crash
// mode, let it die mid-operation (exit code fault.CrashExitCode), then
// reopen the directory in this process and assert the database recovered
// to exactly the acknowledged prefix — every commit the child was told
// "durable" is present, every commit it was not is absent — and that the
// recovered engine accepts new writes.
//
// The child records each acknowledged commit id in an acks file
// (O_APPEND + fsync before the workload proceeds), so the parent has a
// ground-truth ledger that survives the crash. Crash points fire before
// the physical operation they guard, so a commit can never be durable
// without being acked, and SyncFull means it can never be acked without
// being durable: recovery must reproduce the acks file exactly.

const (
	crashDirEnv  = "ODBIS_CRASH_DIR"
	acksFileName = "acks.txt"
	// crashCommits is the child's workload length; checkpoints fire at
	// crashCheckpointAt so both WAL and snapshot points get exercised
	// with committed state on both sides.
	crashCommits      = 10
	crashCheckpointAt = 4
)

// TestCrashChild is the re-exec target, not a test: it only runs when
// the harness env is present, runs the workload with ODBIS_FAULTS armed,
// and is expected to die at the armed point.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("crash-harness child (set " + crashDirEnv + " to run)")
	}
	if err := fault.FromEnv(); err != nil {
		t.Fatalf("child: %v", err)
	}
	e, err := Open(Options{Dir: dir, Sync: SyncFull})
	if err != nil {
		t.Fatalf("child: open: %v", err)
	}
	if err := e.CreateTable(usersSchema(t)); err != nil {
		t.Fatalf("child: create table: %v", err)
	}
	acks, err := os.OpenFile(filepath.Join(dir, acksFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("child: open acks: %v", err)
	}
	for i := 0; i < crashCommits; i++ {
		err := e.Update(func(tx *Tx) error {
			_, err := tx.Insert("users", Row{int64(i), fmt.Sprintf("user-%d", i), int64(20 + i), true})
			return err
		})
		if err != nil {
			// An error (not a crash) at the armed point: stop cleanly;
			// the parent only accepts death by CrashExitCode.
			t.Fatalf("child: commit %d: %v", i, err)
		}
		if _, err := fmt.Fprintf(acks, "%d\n", i); err != nil {
			t.Fatalf("child: ack %d: %v", i, err)
		}
		if err := acks.Sync(); err != nil {
			t.Fatalf("child: sync acks: %v", err)
		}
		if i == crashCheckpointAt {
			if err := e.Checkpoint(); err != nil {
				t.Fatalf("child: checkpoint: %v", err)
			}
		}
	}
	// Reaching here means the armed point never fired.
	t.Fatalf("child: workload completed without crashing (point never fired)")
}

func readAcks(t *testing.T, dir string) map[int64]bool {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, acksFileName))
	if err != nil {
		t.Fatalf("read acks: %v", err)
	}
	defer f.Close()
	acked := map[int64]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		id, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			t.Fatalf("acks file corrupt: %q", sc.Text())
		}
		acked[id] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return acked
}

func TestCrashRecoveryAtEveryStoragePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process harness")
	}
	cases := []struct {
		point string
		// after skips the first N hits so the crash lands with committed
		// records on both sides of it.
		after int
	}{
		// WAL points: hit on every record append. after=6 lands the
		// crash a few commits past the checkpoint (schema + commits +
		// epoch stamp all count as hits).
		{fault.StorageWALAppend, 6},
		{fault.StorageWALAppendMid, 6},
		{fault.StorageWALSync, 6},
		// Checkpoint points: first hit is the checkpoint itself.
		{fault.StorageSnapshotWrite, 0},
		{fault.StorageSnapshotRename, 0},
		{fault.StorageWALTruncate, 0},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			spec := fmt.Sprintf("%s=crash", tc.point)
			if tc.after > 0 {
				spec += fmt.Sprintf(":after=%d", tc.after)
			}
			cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$")
			cmd.Env = append(os.Environ(),
				crashDirEnv+"="+dir,
				"ODBIS_FAULTS="+spec,
			)
			out, err := cmd.CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != fault.CrashExitCode {
				t.Fatalf("child exited %v, want exit code %d\noutput:\n%s", err, fault.CrashExitCode, out)
			}

			acked := readAcks(t, dir)
			if len(acked) == 0 {
				t.Fatalf("child crashed before acknowledging any commit; move the point later (output:\n%s)", out)
			}

			e, err := Open(Options{Dir: dir, Sync: SyncFull})
			if err != nil {
				t.Fatalf("recovery open after crash at %s: %v", tc.point, err)
			}
			defer e.Close()
			recovered := map[int64]bool{}
			verr := e.View(func(tx *Tx) error {
				return tx.Scan("users", func(_ RID, row Row) bool {
					recovered[row[0].(int64)] = true
					return true
				})
			})
			if verr != nil {
				t.Fatalf("scan after recovery: %v", verr)
			}
			for id := range acked {
				if !recovered[id] {
					t.Errorf("acknowledged commit %d lost after crash at %s", id, tc.point)
				}
			}
			// A process crash (unlike power loss) keeps bytes already
			// handed to the OS, so the single in-flight commit may
			// legitimately survive even though it was never acked — e.g.
			// storage.wal.sync fires after the frame is fully written.
			// Anything else present is corruption.
			inFlight := int64(len(acked))
			for id := range recovered {
				if !acked[id] && id != inFlight {
					t.Errorf("commit %d recovered after crash at %s, but it was neither acknowledged nor in flight", id, tc.point)
				}
			}
			// The recovered engine must stay fully usable: write, then
			// checkpoint, then write again.
			mustInsert(t, e, "users", Row{int64(1000), "post-crash", int64(1), true})
			if err := e.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after recovery: %v", err)
			}
			mustInsert(t, e, "users", Row{int64(1001), "post-checkpoint", int64(2), true})
			if n := countRows(t, e, "users"); n != len(recovered)+2 {
				t.Errorf("row count after recovery writes = %d, want %d", n, len(recovered)+2)
			}
		})
	}
}
