package storage

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		in   Value
		want Value
	}{
		{nil, nil},
		{int(7), int64(7)},
		{int8(-3), int64(-3)},
		{uint32(9), int64(9)},
		{float32(1.5), float64(1.5)},
		{"x", "x"},
		{true, true},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	ts := time.Date(2026, 7, 6, 12, 0, 0, 123456789, time.FixedZone("X", 3600))
	got := Normalize(ts).(time.Time)
	if got.Location() != time.UTC {
		t.Errorf("Normalize(time) location = %v, want UTC", got.Location())
	}
	if got.Nanosecond()%1000 != 0 {
		t.Errorf("Normalize(time) not truncated to microseconds: %d ns", got.Nanosecond())
	}
}

func TestCheckValue(t *testing.T) {
	if v, err := CheckValue(TypeFloat, int64(3)); err != nil || v != float64(3) {
		t.Errorf("int into float column: got %v, %v", v, err)
	}
	if _, err := CheckValue(TypeInt, "nope"); err == nil {
		t.Error("string into int column should fail")
	}
	if v, err := CheckValue(TypeString, nil); err != nil || v != nil {
		t.Errorf("null should be storable: got %v, %v", v, err)
	}
	if _, err := CheckValue(TypeBool, struct{}{}); err == nil {
		t.Error("unsupported dynamic type should fail")
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{nil, nil, 0},
		{nil, int64(0), -1},
		{int64(0), nil, 1},
		{int64(1), int64(2), -1},
		{int64(2), float64(2), 0},
		{float64(2.5), int64(2), 1},
		{"a", "b", -1},
		{"b", "a", 1},
		{false, true, -1},
		{time.Unix(1, 0), time.Unix(2, 0), -1},
		{[]byte("ab"), []byte("ac"), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: EncodeKey preserves the ordering of Compare for same-typed
// values.
func TestEncodeKeyOrderInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := EncodeKey(a), EncodeKey(b)
		cmp := Compare(a, b)
		switch {
		case cmp < 0:
			return ka < kb
		case cmp > 0:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyOrderFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka, kb := EncodeKey(a), EncodeKey(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyOrderStrings(t *testing.T) {
	f := func(a, b string) bool {
		ka, kb := EncodeKey(a), EncodeKey(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tuple encodings never collide across component boundaries
// ("ab","c") vs ("a","bc").
func TestEncodeKeyTupleBoundaries(t *testing.T) {
	f := func(a, b, c string) bool {
		left := EncodeKey(a+b, c)
		right := EncodeKey(a, b+c)
		if b == "" {
			return left == right // tuples are componentwise equal
		}
		return left != right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyNullSortsFirst(t *testing.T) {
	keys := []string{EncodeKey("a"), EncodeKey(nil), EncodeKey(int64(-1 << 62))}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	if sorted[0] != EncodeKey(nil) {
		t.Error("NULL key should sort first")
	}
}

func TestEncodeKeyMixedTimeOrder(t *testing.T) {
	t1 := time.Date(1969, 1, 1, 0, 0, 0, 0, time.UTC) // negative unix micro
	t2 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	if !(EncodeKey(t1) < EncodeKey(t2)) {
		t.Error("pre-epoch time should encode before post-epoch time")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{nil, "NULL"},
		{int64(42), "42"},
		{float64(3), "3.0"},
		{float64(3.25), "3.25"},
		{"hi", "hi"},
		{true, "true"},
		{[]byte{0xAB}, "0xab"},
	}
	for _, c := range cases {
		if got := FormatValue(c.in); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSortRows(t *testing.T) {
	rows := []Row{
		{int64(2), "b"},
		{int64(1), "c"},
		{int64(2), "a"},
	}
	SortRows(rows, []int{0, 1})
	if rows[0][0] != int64(1) || rows[1][1] != "a" || rows[2][1] != "b" {
		t.Errorf("ascending sort wrong: %v", rows)
	}
	SortRows(rows, []int{-1}) // descending on column 0
	if rows[0][0] != int64(2) || rows[2][0] != int64(1) {
		t.Errorf("descending sort wrong: %v", rows)
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "varchar": TypeString,
		"double": TypeFloat, "boolean": TypeBool, "timestamp": TypeTime,
		"blob": TypeBytes,
	} {
		got, ok := ParseType(name)
		if !ok || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := ParseType("frobnicate"); ok {
		t.Error("unknown type accepted")
	}
}

func TestTypeString(t *testing.T) {
	if !strings.Contains(TypeInt.String(), "INT") {
		t.Errorf("TypeInt.String() = %q", TypeInt.String())
	}
	if TypeInvalid.String() != "INVALID" {
		t.Errorf("TypeInvalid.String() = %q", TypeInvalid.String())
	}
}
