// Package storage implements the embedded relational engine that backs the
// ODBIS platform. It is the stand-in for the PostgreSQL instance of the
// paper's technical-resources layer (Fig. 5): a durable, transactional,
// indexed store shared by every tenant of the platform.
//
// The engine provides:
//
//   - typed heap tables with NOT NULL / DEFAULT / PRIMARY KEY constraints,
//   - multi-version concurrency control with snapshot-isolation
//     transactions and first-updater-wins conflict detection,
//   - secondary indexes (hash for equality, B-tree for ranges),
//   - a write-ahead log with configurable durability plus checkpoint
//     snapshots for crash recovery.
//
// All state lives in memory; durability is via the WAL and snapshots under
// the engine directory. An engine opened with an empty directory is purely
// in memory, which the test suite and benchmarks use extensively.
package storage

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Type identifies the declared type of a column.
type Type uint8

// Column types supported by the engine.
const (
	TypeInvalid Type = iota
	TypeInt          // int64
	TypeFloat        // float64
	TypeString       // string
	TypeBool         // bool
	TypeTime         // time.Time (stored UTC, microsecond precision)
	TypeBytes        // []byte
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	case TypeTime:
		return "TIMESTAMP"
	case TypeBytes:
		return "BYTES"
	default:
		return "INVALID"
	}
}

// ParseType maps a type name (case-insensitive, with common SQL aliases)
// to a Type. It reports false for unknown names.
func ParseType(name string) (Type, bool) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "SERIAL":
		return TypeInt, true
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return TypeFloat, true
	case "TEXT", "STRING", "VARCHAR", "CHAR":
		return TypeString, true
	case "BOOL", "BOOLEAN":
		return TypeBool, true
	case "TIMESTAMP", "DATETIME", "DATE", "TIME":
		return TypeTime, true
	case "BYTES", "BLOB", "BYTEA":
		return TypeBytes, true
	default:
		return TypeInvalid, false
	}
}

// Value is a single cell value. The dynamic type is one of:
//
//	nil (SQL NULL), int64, float64, string, bool, time.Time, []byte
//
// Every function in this package that accepts a Value normalizes Go
// integers and float32 through Normalize first.
type Value any

// Normalize widens native Go numeric types to the canonical dynamic types
// used by the engine (int64, float64) and converts time values to UTC.
// Unknown dynamic types are returned unchanged and rejected later by
// CheckValue.
func Normalize(v Value) Value {
	switch x := v.(type) {
	case nil:
		return nil
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case int64:
		return x
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	case float64:
		return x
	case time.Time:
		return x.UTC().Truncate(time.Microsecond)
	default:
		return v
	}
}

// TypeOf reports the engine type of a (normalized) value. NULL has no type
// and reports TypeInvalid with ok=false.
func TypeOf(v Value) (Type, bool) {
	switch v.(type) {
	case int64:
		return TypeInt, true
	case float64:
		return TypeFloat, true
	case string:
		return TypeString, true
	case bool:
		return TypeBool, true
	case time.Time:
		return TypeTime, true
	case []byte:
		return TypeBytes, true
	default:
		return TypeInvalid, false
	}
}

// CheckValue verifies that v (after Normalize) is storable in a column of
// type t. NULL is always storable at this level; NOT NULL is enforced by
// the table layer. Int values are accepted by FLOAT columns and widened.
func CheckValue(t Type, v Value) (Value, error) {
	v = Normalize(v)
	if v == nil {
		return nil, nil
	}
	vt, ok := TypeOf(v)
	if !ok {
		return nil, fmt.Errorf("storage: unsupported value type %T", v)
	}
	if vt == t {
		return v, nil
	}
	if t == TypeFloat && vt == TypeInt {
		return float64(v.(int64)), nil
	}
	return nil, fmt.Errorf("storage: cannot store %s value in %s column", vt, t)
}

// Compare orders two normalized values of the same engine type.
// NULL sorts before every non-NULL value. Comparing values of different
// non-NULL types follows a fixed type order so that heterogeneous keys
// still sort deterministically (int and float compare numerically).
func Compare(a, b Value) int {
	a, b = Normalize(a), Normalize(b)
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	// Numeric cross-type comparison.
	af, aNum := asFloat(a)
	bf, bNum := asFloat(b)
	if aNum && bNum {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		// Equal as floats: ints and floats representing the same number
		// compare equal.
		return 0
	}
	ar, br := typeRank(a), typeRank(b)
	if ar != br {
		if ar < br {
			return -1
		}
		return 1
	}
	switch x := a.(type) {
	case string:
		return strings.Compare(x, b.(string))
	case bool:
		y := b.(bool)
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		default:
			return 1
		}
	case time.Time:
		y := b.(time.Time)
		switch {
		case x.Before(y):
			return -1
		case x.After(y):
			return 1
		default:
			return 0
		}
	case []byte:
		return strings.Compare(string(x), string(b.([]byte)))
	default:
		panic(fmt.Sprintf("storage: Compare on unsupported type %T", a))
	}
}

func asFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func typeRank(v Value) int {
	switch v.(type) {
	case int64, float64:
		return 1
	case string:
		return 2
	case bool:
		return 3
	case time.Time:
		return 4
	case []byte:
		return 5
	default:
		return 6
	}
}

// Equal reports whether two values compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FormatValue renders a value for human-readable output (reports, CLI,
// logs). NULL renders as the empty string placeholder "NULL".
func FormatValue(v Value) string {
	switch x := Normalize(v).(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatFloat(x, 'f', 1, 64)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case time.Time:
		return x.Format(time.RFC3339)
	case []byte:
		return fmt.Sprintf("0x%x", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// EncodeKey produces an order-preserving string encoding of a tuple of
// values: for values a, b of the same type, Compare(a,b) < 0 iff
// EncodeKey(a) < EncodeKey(b) lexicographically. It is used as the key
// form for both hash and B-tree indexes.
func EncodeKey(vals ...Value) string {
	var sb strings.Builder
	for _, v := range vals {
		encodeKeyOne(&sb, Normalize(v))
	}
	return sb.String()
}

func encodeKeyOne(sb *strings.Builder, v Value) {
	switch x := v.(type) {
	case nil:
		sb.WriteByte(0x00)
	case int64:
		sb.WriteByte(0x01)
		encodeOrderedFloat(sb, float64(x))
		// Disambiguate ints that collide as floats (|x| >= 2^53): append
		// the exact decimal. Cheap and rare.
		if x > 1<<53 || x < -(1<<53) {
			sb.WriteString(strconv.FormatInt(x, 10))
		}
	case float64:
		sb.WriteByte(0x01)
		encodeOrderedFloat(sb, x)
	case string:
		sb.WriteByte(0x02)
		encodeEscaped(sb, x)
	case bool:
		sb.WriteByte(0x03)
		if x {
			sb.WriteByte(1)
		} else {
			sb.WriteByte(0)
		}
	case time.Time:
		sb.WriteByte(0x04)
		encodeOrderedInt(sb, x.UnixMicro())
	case []byte:
		sb.WriteByte(0x05)
		encodeEscaped(sb, string(x))
	default:
		panic(fmt.Sprintf("storage: EncodeKey on unsupported type %T", v))
	}
}

// encodeEscaped writes s with 0x00 escaped so that tuple components cannot
// bleed into each other, terminated by 0x00 0x01.
func encodeEscaped(sb *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == 0x00 {
			sb.WriteByte(0x00)
			sb.WriteByte(0xFF)
			continue
		}
		sb.WriteByte(c)
	}
	sb.WriteByte(0x00)
	sb.WriteByte(0x01)
}

// encodeOrderedFloat writes an 8-byte big-endian encoding of f whose
// lexicographic order matches numeric order (standard sign-flip trick).
func encodeOrderedFloat(sb *strings.Builder, f float64) {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	writeBE64(sb, bits)
}

func encodeOrderedInt(sb *strings.Builder, i int64) {
	writeBE64(sb, uint64(i)^(1<<63))
}

func writeBE64(sb *strings.Builder, u uint64) {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(u)
		u >>= 8
	}
	sb.Write(b[:])
}

// Row is a tuple of values positionally aligned with a table's columns.
type Row []Value

// Clone returns a shallow copy of the row (values are immutable by
// convention, so a shallow copy is an independent row).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// SortRows orders rows by the given column positions; negative positions
// mean descending on column (-pos - 1).
func SortRows(rows []Row, keys []int) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			col, desc := k, false
			if k < 0 {
				col, desc = -k-1, true
			}
			c := Compare(rows[i][col], rows[j][col])
			if c == 0 {
				continue
			}
			if desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}
