package storage

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// WAL frame shipping: the primary side of the replication protocol.
//
// Every committed transaction and every auto-committed DDL/sequence
// mutation produces one logical redo frame — the same payload encoding
// the durable WAL uses (recCommit, recCreateTable, …) — and the frame
// tap fans it out to subscribers in commit order. The tap observes
// memory-state mutations, not the WAL file, so in-memory engines ship
// exactly like durable ones.
//
// The shipping invariant: a subscriber that registers and then dumps the
// primary's state sees every committed transaction exactly once — in the
// dump, on the channel, or both (never neither). Commit makes its
// memory-visibility flip (finishTx) and its ship atomic under tap.mu, and
// SubscribeWAL registers under the same mutex, so a commit either
// completes its flip before registration (and is in any later dump) or
// ships to the already-registered channel. Overlap is resolved by the
// consumer applying idempotently (ApplyReplicated).

// WALFrame is one shipped redo record.
type WALFrame struct {
	// LSN is the frame's position in the ship stream (1 = first frame
	// since engine start). LSNs are process-lifetime, not durable.
	LSN uint64
	// Payload is the WAL-record encoding of the mutation. It is shared
	// across subscribers and must not be mutated.
	Payload []byte
}

// WALSub is one subscription to the primary's shipped frame stream.
type WALSub struct {
	// StartLSN/StartBytes/StartCommitLSN are the tap positions at
	// registration: everything at or before them is covered by a state
	// dump taken after Subscribe, everything after arrives on Frames.
	StartLSN       uint64
	StartBytes     uint64
	StartCommitLSN uint64

	ch chan WALFrame
	id int
	e  *Engine
}

// Frames delivers shipped frames in LSN order. The channel is closed
// when the subscriber falls behind (its buffer overflowed — commits
// never block on a slow consumer), or when the subscription or engine
// is closed; a consumer seeing the close must re-bootstrap.
func (s *WALSub) Frames() <-chan WALFrame { return s.ch }

// Close cancels the subscription. Closing twice is a no-op.
func (s *WALSub) Close() {
	tp := &s.e.tap
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if _, ok := tp.subs[s.id]; ok {
		delete(tp.subs, s.id)
		close(s.ch)
	}
}

// frameTap fans committed redo frames out to WAL subscribers.
type frameTap struct {
	mu sync.Mutex
	//odbis:guardedby mu
	subs map[int]*WALSub
	//odbis:guardedby mu
	nextID int
	//odbis:guardedby mu -- authoritative positions; the atomics below republish them for lock-free lag reads
	lsn, bytes, commitLSN uint64

	// Lock-free mirrors of the positions above, for lag accounting on
	// read paths that must not contend with commits.
	pubLSN       atomic.Uint64
	pubBytes     atomic.Uint64
	pubCommitLSN atomic.Uint64
}

// SubscribeWAL registers a subscriber for all frames shipped after the
// returned Start positions. buf is the channel capacity (≤0 selects a
// default); a subscriber that lets the buffer fill is dropped and its
// channel closed rather than ever blocking a commit.
//
// Bootstrap protocol: Subscribe first, then DumpState. The dump covers
// every commit at or before StartLSN; the channel covers everything
// after. Frames the dump already contains re-apply idempotently.
func (e *Engine) SubscribeWAL(buf int) *WALSub {
	if buf <= 0 {
		buf = 256
	}
	tp := &e.tap
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.subs == nil {
		tp.subs = make(map[int]*WALSub)
	}
	tp.nextID++
	sub := &WALSub{
		StartLSN:       tp.lsn,
		StartBytes:     tp.bytes,
		StartCommitLSN: tp.commitLSN,
		ch:             make(chan WALFrame, buf),
		id:             tp.nextID,
		e:              e,
	}
	tp.subs[sub.id] = sub
	return sub
}

// ShippedLSN reports the primary's current ship position (frames).
func (e *Engine) ShippedLSN() uint64 { return e.tap.pubLSN.Load() }

// ShippedBytes reports cumulative shipped payload bytes. Byte accounting
// only advances while at least one subscriber is registered (frames are
// encoded lazily), so it is meaningful as a delta against a
// subscription's StartBytes, not as an absolute volume.
func (e *Engine) ShippedBytes() uint64 { return e.tap.pubBytes.Load() }

// ShippedCommitLSN reports the LSN of the most recent commit frame
// (DDL and sequence frames advance the LSN but not the commit LSN).
func (e *Engine) ShippedCommitLSN() uint64 { return e.tap.pubCommitLSN.Load() }

// WALHealthy reports whether the engine can still accept commits: true
// for in-memory engines, false once the WAL latch is stuck (ErrWALFailed
// until a checkpoint or restart clears it).
func (e *Engine) WALHealthy() bool {
	if e.wal == nil {
		return true
	}
	e.wal.mu.Lock()
	defer e.wal.mu.Unlock()
	return e.wal.failed == nil
}

// closeTap drops every subscriber (engine shutdown).
func (e *Engine) closeTap() {
	tp := &e.tap
	tp.mu.Lock()
	defer tp.mu.Unlock()
	for id, sub := range tp.subs {
		delete(tp.subs, id)
		close(sub.ch)
	}
}

// shipLocked advances the ship position by one frame and fans the
// payload out. The caller holds tap.mu; encode runs only when a
// subscriber exists, so the disabled-replication cost of a ship site is
// one uncontended mutex and two integer stores. isCommit marks commit
// frames for commit-LSN accounting. shipLocked acquires no other locks.
func (tp *frameTap) shipLocked(isCommit bool, encode func(enc *encoder)) {
	tp.lsn++
	if isCommit {
		tp.commitLSN = tp.lsn
	}
	if len(tp.subs) > 0 {
		var buf bytes.Buffer
		enc := newEncoder(&buf)
		encode(enc)
		// Flushing into a bytes.Buffer cannot fail.
		_ = enc.flush()
		payload := buf.Bytes()
		tp.bytes += uint64(len(payload))
		frame := WALFrame{LSN: tp.lsn, Payload: payload}
		for id, sub := range tp.subs {
			select {
			case sub.ch <- frame:
			default:
				// The subscriber's buffer is full: it is too far behind
				// to catch up frame-by-frame. Drop it — the closed
				// channel tells the consumer to re-bootstrap — rather
				// than ever letting a slow replica block a commit.
				delete(tp.subs, id)
				close(sub.ch)
			}
		}
	}
	tp.pubLSN.Store(tp.lsn)
	tp.pubBytes.Store(tp.bytes)
	tp.pubCommitLSN.Store(tp.commitLSN)
}

// ship is shipLocked for call sites that do not already hold tap.mu.
func (e *Engine) ship(isCommit bool, encode func(enc *encoder)) {
	e.tap.mu.Lock()
	e.tap.shipLocked(isCommit, encode)
	e.tap.mu.Unlock()
}

// FrameIsCommit reports whether a shipped payload is a commit frame
// (as opposed to DDL or sequence) — followers use it for commit-LSN
// lag accounting without decoding the frame.
func FrameIsCommit(payload []byte) bool {
	return len(payload) > 0 && payload[0] == recCommit
}

// encodeTxFrame writes a commit frame — identical to wal.logTx's record.
func encodeTxFrame(enc *encoder, txid uint64, ops []txOp) {
	enc.byte(recCommit)
	enc.uvarint(txid)
	enc.uvarint(uint64(len(ops)))
	for _, op := range ops {
		enc.byte(byte(op.kind))
		enc.str(op.table)
		enc.uvarint(uint64(op.rid))
		if op.kind == opInsert {
			enc.row(op.row)
		}
	}
}
