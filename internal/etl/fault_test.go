package etl

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/fault"
)

func onePipeline() *Pipeline {
	return &Pipeline{
		Source: &SliceSource{Records: []Record{{"x": int64(1)}, {"x": int64(2)}}},
		Sink:   &SliceSink{},
	}
}

// Each stage point fails the pipeline at its stage with the injected
// error wrapped so reports say which stage died.
func TestETLStageFaultPoints(t *testing.T) {
	defer fault.Reset()
	for _, tc := range []struct {
		point string
		stage string
	}{
		{fault.ETLExtract, "extract"},
		{fault.ETLLoad, "load"},
	} {
		fault.Reset()
		if err := fault.Arm(tc.point, fault.Behavior{Mode: fault.ModeError}); err != nil {
			t.Fatal(err)
		}
		_, _, err := onePipeline().Run(context.Background())
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s: err = %v, want ErrInjected", tc.point, err)
		}
		if !strings.Contains(err.Error(), tc.stage) {
			t.Errorf("%s: err %q does not name stage %q", tc.point, err, tc.stage)
		}
	}
	// The transform point only fires when the pipeline has transforms.
	fault.Reset()
	if err := fault.Arm(fault.ETLTransform, fault.Behavior{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	p := onePipeline()
	p.Transforms = []Transform{Rename{Mapping: map[string]string{"x": "y"}}}
	if _, _, err := p.Run(context.Background()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("etl.transform: err = %v, want ErrInjected", err)
	}
}

// A panicking stage implementation becomes a task error, not a process
// crash, and the job retry machinery treats it like any failure.
func TestPipelinePanicRecovered(t *testing.T) {
	p := onePipeline()
	p.Transforms = []Transform{panicTransform{}}
	_, _, err := p.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want recovered panic error", err)
	}
	if _, err := p.Preview(context.Background(), 10); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Preview err = %v, want recovered panic error", err)
	}
}

type panicTransform struct{}

func (panicTransform) Name() string                     { return "panic" }
func (panicTransform) Apply([]Record) ([]Record, error) { panic("connector bug") }

// A transiently failing task is retried with backoff and succeeds; the
// report shows the attempts.
func TestJobRetryWithBackoffRecovers(t *testing.T) {
	defer fault.Reset()
	// First two loads fail, the third succeeds.
	if err := fault.Arm(fault.ETLLoad, fault.Behavior{Mode: fault.ModeError, Count: 2}); err != nil {
		t.Fatal(err)
	}
	job := &Job{Name: "j", Tasks: []Task{{
		Name:         "t",
		Pipeline:     onePipeline(),
		Retries:      3,
		RetryBackoff: time.Millisecond,
	}}}
	start := time.Now()
	report := job.Run(context.Background())
	if err := report.Err(); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	res := report.Results[0]
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if res.Written != 2 {
		t.Fatalf("written = %d, want 2", res.Written)
	}
	// Two backoff sleeps happened (≥ base/2 each with jitter).
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("job finished in %v; backoff sleeps missing", elapsed)
	}
}

// A cancelled context interrupts the backoff sleep: the job must not
// wait out a long retry schedule for a dead request.
func TestJobBackoffHonorsContext(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm(fault.ETLLoad, fault.Behavior{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	job := &Job{Name: "j", Tasks: []Task{{
		Name:         "t",
		Pipeline:     onePipeline(),
		Retries:      10,
		RetryBackoff: time.Hour, // would take ~10h without ctx interruption
	}}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	report := job.Run(ctx)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("job took %v; backoff ignored cancellation", elapsed)
	}
	res := report.Results[0]
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("task err = %v, want DeadlineExceeded", res.Err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (cancelled during first backoff)", res.Attempts)
	}
}

// Retries are not burned on cancellation: a pipeline failing with the
// ctx error stops the retry loop immediately (pre-existing behavior that
// must survive the backoff change).
func TestJobNoRetryAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := &Job{Name: "j", Tasks: []Task{{
		Name:         "t",
		Pipeline:     &Pipeline{Source: cancelAwareSource{}, Sink: &SliceSink{}},
		Retries:      5,
		RetryBackoff: time.Millisecond,
	}}}
	report := job.Run(ctx)
	if res := report.Results[0]; res.Err == nil {
		t.Fatal("want error from cancelled run")
	}
}

type cancelAwareSource struct{}

func (cancelAwareSource) Read(ctx context.Context) ([]Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("should not be reached with cancelled ctx")
}

// An injected delay at a stage point is interruptible via the pipeline
// context (PointCtx, not Point, guards the stages).
func TestETLDelayPointHonorsContext(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm(fault.ETLExtract, fault.Behavior{Mode: fault.ModeDelay, Delay: time.Hour}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := onePipeline().Run(ctx)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delayed point held the pipeline %v despite cancellation", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
