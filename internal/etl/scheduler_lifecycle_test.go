package etl

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// gateSource blocks Read until released (or, when honorCtx is set,
// until the run context dies), signalling when a run has entered it.
type gateSource struct {
	startOnce sync.Once
	started   chan struct{}
	release   chan struct{}
	honorCtx  bool
}

func newGateSource(honorCtx bool) *gateSource {
	return &gateSource{started: make(chan struct{}), release: make(chan struct{}), honorCtx: honorCtx}
}

func (g *gateSource) Read(ctx context.Context) ([]Record, error) {
	g.startOnce.Do(func() { close(g.started) })
	if g.honorCtx {
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	} else {
		<-g.release
	}
	return []Record{{"a": int64(1)}}, nil
}

func (g *gateSource) Name() string { return "gate" }

// TestSchedulerStopWaitsForInflightJob: the regression test for the
// shutdown race — stop must not return while a Tick-driven job is still
// running, and no job may start after stop returns. Run under -race.
func TestSchedulerStopWaitsForInflightJob(t *testing.T) {
	s := NewScheduler()
	gate := newGateSource(false)
	job := &Job{Name: "slow", Tasks: []Task{{Name: "t", Pipeline: &Pipeline{
		Source: gate, Sink: &SliceSink{},
	}}}}
	if err := s.Register(job, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stop := s.Start(context.Background(), time.Millisecond)

	select {
	case <-gate.started:
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}

	stopped := make(chan struct{})
	go func() {
		stop()
		close(stopped)
	}()
	select {
	case <-stopped:
		t.Fatal("stop returned while a job was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate.release)
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("stop never returned after the job finished")
	}

	// The in-flight run completed and was recorded; nothing runs after.
	if len(s.History("slow")) == 0 {
		t.Error("in-flight run was not recorded before shutdown")
	}
	n := len(s.History("slow"))
	time.Sleep(20 * time.Millisecond)
	if got := len(s.History("slow")); got != n {
		t.Errorf("job ran after stop: history %d -> %d", n, got)
	}
}

// TestSchedulerStopCancelsInflightJob: a job that honors its context is
// cancelled by stop rather than waited out — shutdown is bounded.
func TestSchedulerStopCancelsInflightJob(t *testing.T) {
	s := NewScheduler()
	gate := newGateSource(true)
	job := &Job{Name: "ctxed", Tasks: []Task{{Name: "t", Pipeline: &Pipeline{
		Source: gate, Sink: &SliceSink{},
	}}}}
	if err := s.Register(job, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stop := s.Start(context.Background(), time.Millisecond)
	select {
	case <-gate.started:
	case <-time.After(2 * time.Second):
		t.Fatal("job never started")
	}
	stop() // never released: returns only because cancellation unblocks Read

	h := s.History("ctxed")
	if len(h) == 0 {
		t.Fatal("cancelled run not recorded")
	}
	if err := h[len(h)-1].Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("report err = %v, want context.Canceled", err)
	}
}

// TestSchedulerUnregisterDuringTick: removing a job while its run is in
// flight must be safe (run under -race) — the run finishes, the entry
// and history are gone.
func TestSchedulerUnregisterDuringTick(t *testing.T) {
	s := NewScheduler()
	gate := newGateSource(false)
	job := &Job{Name: "doomed", Tasks: []Task{{Name: "t", Pipeline: &Pipeline{
		Source: gate, Sink: &SliceSink{},
	}}}}
	if err := s.Register(job, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stop := s.Start(context.Background(), time.Millisecond)
	<-gate.started
	s.Unregister("doomed")
	close(gate.release)
	stop()
	if len(s.Jobs()) != 0 {
		t.Errorf("jobs = %v after unregister", s.Jobs())
	}
}
