package etl

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

// TestAggregateMatchesSQL checks the cross-subsystem invariant that the
// ETL Aggregate transform and the SQL engine's GROUP BY agree on random
// datasets: two independent aggregation implementations over the same
// storage substrate must produce identical groups.
func TestAggregateMatchesSQL(t *testing.T) {
	f := func(seed int64, nRows uint8) bool {
		rows := int(nRows)%200 + 10
		rng := rand.New(rand.NewSource(seed))

		// Random dataset: group key g in a small domain, value v, with
		// occasional NULLs.
		recs := make([]Record, rows)
		for i := range recs {
			rec := Record{"g": fmt.Sprintf("g%d", rng.Intn(5))}
			if rng.Intn(10) == 0 {
				rec["v"] = nil
			} else {
				rec["v"] = float64(rng.Intn(1000)) / 10
			}
			recs[i] = rec
		}

		// Path 1: ETL aggregate.
		etlOut, err := Aggregate{
			GroupBy: []string{"g"},
			Aggs: []AggSpec{
				{Op: "count", Field: "v", As: "n"},
				{Op: "sum", Field: "v", As: "total"},
				{Op: "min", Field: "v", As: "lo"},
				{Op: "max", Field: "v", As: "hi"},
				{Op: "avg", Field: "v", As: "mean"},
			},
		}.Apply(recs)
		if err != nil {
			return false
		}

		// Path 2: load into the engine, SQL GROUP BY.
		e := storage.MustOpenMemory()
		defer e.Close()
		sink := &TableSink{Engine: e, Table: "d", CreateTable: true}
		if _, err := sink.Write(context.Background(), recs); err != nil {
			return false
		}
		db := sql.NewDB(e)
		res, err := db.Query(`
			SELECT g, COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v)
			FROM d GROUP BY g ORDER BY g`)
		if err != nil {
			return false
		}

		byGroup := map[string]Record{}
		for _, r := range etlOut {
			byGroup[r["g"].(string)] = r
		}
		if len(res.Rows) != len(byGroup) {
			return false
		}
		for _, row := range res.Rows {
			r, ok := byGroup[row[0].(string)]
			if !ok {
				return false
			}
			if row[1].(int64) != r["n"].(int64) {
				return false
			}
			if !closeEnough(row[2], r["total"]) || !closeEnough(row[5], r["mean"]) {
				return false
			}
			if !storage.Equal(row[3], r["lo"]) || !storage.Equal(row[4], r["hi"]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// closeEnough compares numeric aggregates tolerating float summation
// order differences; NULLs must agree exactly. ETL sums report 0 for
// all-NULL groups where SQL reports NULL — both mean "no values", so 0
// and NULL are treated as equivalent for sums here.
func closeEnough(a, b storage.Value) bool {
	af, aok := asF(a)
	bf, bok := asF(b)
	if !aok || !bok {
		return aok == bok
	}
	return math.Abs(af-bf) < 1e-6
}

func asF(v storage.Value) (float64, bool) {
	switch x := v.(type) {
	case nil:
		return 0, true
	case float64:
		return x, true
	case int64:
		return float64(x), true
	default:
		return 0, false
	}
}
