package etl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/odbis/odbis/internal/fault"
	"github.com/odbis/odbis/internal/obs"
)

// Stage metrics, resolved once at init. Stage histograms share one name
// with a stage label so /metrics shows extract/transform/load cost side
// by side.
var (
	mETLExtractSecs   = obs.GetHistogramL("odbis_etl_stage_seconds", "stage", "extract", nil)
	mETLTransformSecs = obs.GetHistogramL("odbis_etl_stage_seconds", "stage", "transform", nil)
	mETLLoadSecs      = obs.GetHistogramL("odbis_etl_stage_seconds", "stage", "load", nil)
	mETLRetries       = obs.GetCounter("odbis_etl_retries_total")
)

// Pipeline is one source → transforms → sink flow.
type Pipeline struct {
	Source     Source
	Transforms []Transform
	Sink       Sink
}

// Run executes the pipeline, returning rows read and written. ctx bounds
// every stage: the source read, each transform, and the sink write all
// stop at their next checkpoint once ctx is cancelled. A panic in any
// stage implementation (sources, transforms and sinks are extension
// points) is recovered into an error, so one bad connector fails its
// task instead of the process — the job runner's retry/backoff then
// applies to it like any other failure.
func (p *Pipeline) Run(ctx context.Context) (read, written int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("etl: pipeline panic: %v", r)
		}
	}()
	if p.Source == nil || p.Sink == nil {
		return 0, 0, fmt.Errorf("etl: pipeline needs a source and a sink")
	}
	if err := fault.PointCtx(ctx, fault.ETLExtract); err != nil {
		return 0, 0, fmt.Errorf("etl: extract: %w", err)
	}
	// Each stage runs inside its own scope with the span ended by defer:
	// stage implementations are extension points, and when one panics the
	// recover above keeps this goroutine alive — a manually-ended span
	// would leak into the recovered world and pin its trace buffer.
	recs, err := func() ([]Record, error) {
		extractCtx, extractSpan := obs.StartSpan(ctx, "etl.extract")
		defer extractSpan.End()
		defer func(start time.Time) { mETLExtractSecs.ObserveDuration(time.Since(start)) }(time.Now())
		return p.Source.Read(extractCtx)
	}()
	if err != nil {
		return 0, 0, err
	}
	read = len(recs)
	recs, err = func() ([]Record, error) {
		transformCtx, transformSpan := obs.StartSpan(ctx, "etl.transform")
		defer transformSpan.End()
		defer func(start time.Time) { mETLTransformSecs.ObserveDuration(time.Since(start)) }(time.Now())
		out := recs
		for _, tr := range p.Transforms {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := fault.PointCtx(ctx, fault.ETLTransform); err != nil {
				return nil, fmt.Errorf("etl: transform %s: %w", tr.Name(), err)
			}
			var err error
			out, err = applyTransform(transformCtx, tr, out)
			if err != nil {
				return nil, fmt.Errorf("etl: transform %s: %w", tr.Name(), err)
			}
		}
		return out, nil
	}()
	if err != nil {
		return read, 0, err
	}
	if err := fault.PointCtx(ctx, fault.ETLLoad); err != nil {
		return read, 0, fmt.Errorf("etl: load: %w", err)
	}
	written, err = func() (int, error) {
		loadCtx, loadSpan := obs.StartSpan(ctx, "etl.load")
		defer loadSpan.End()
		defer func(start time.Time) { mETLLoadSecs.ObserveDuration(time.Since(start)) }(time.Now())
		return p.Sink.Write(loadCtx, recs)
	}()
	return read, written, err
}

// Preview runs source + transforms and returns up to limit records
// without writing the sink (ad-hoc job design support). Stage panics are
// recovered like in Run.
func (p *Pipeline) Preview(ctx context.Context, limit int) (recs []Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			recs, err = nil, fmt.Errorf("etl: pipeline panic: %v", r)
		}
	}()
	if p.Source == nil {
		return nil, fmt.Errorf("etl: pipeline needs a source")
	}
	if err := fault.PointCtx(ctx, fault.ETLExtract); err != nil {
		return nil, fmt.Errorf("etl: extract: %w", err)
	}
	recs, err = p.Source.Read(ctx)
	if err != nil {
		return nil, err
	}
	for _, tr := range p.Transforms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		recs, err = applyTransform(ctx, tr, recs)
		if err != nil {
			return nil, err
		}
	}
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	return recs, nil
}

// Task is one named node of a job DAG.
type Task struct {
	Name      string
	DependsOn []string
	Pipeline  *Pipeline
	// Retries re-runs a failing task up to N extra times.
	Retries int
	// RetryBackoff is the sleep before the first retry; each further
	// retry doubles it up to maxRetryBackoff, with jitter. Zero means
	// defaultRetryBackoff. The sleep observes ctx: a cancelled request
	// does not sit out a backoff schedule.
	RetryBackoff time.Duration
}

// Retry backoff bounds: an immediate retry hammers whatever just failed
// (a loaded warehouse, a flaky extract endpoint), while an uncapped
// doubling can outlive the request. Jitter spreads retries from tasks
// that failed together.
const (
	defaultRetryBackoff = 50 * time.Millisecond
	maxRetryBackoff     = 5 * time.Second
)

// retrySleep waits out the capped exponential backoff before retry
// attempt n (1-based), honoring ctx cancellation.
func retrySleep(ctx context.Context, base time.Duration, n int) error {
	if base <= 0 {
		base = defaultRetryBackoff
	}
	d := base << (n - 1)
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Job is a DAG of tasks.
type Job struct {
	Name  string
	Tasks []Task
}

// TaskResult reports one task execution.
type TaskResult struct {
	Task     string
	Read     int
	Written  int
	Attempts int
	Err      error
	Duration time.Duration
	Skipped  bool // an upstream task failed
}

// JobReport aggregates a job run.
type JobReport struct {
	Job      string
	Started  time.Time
	Finished time.Time
	Results  []TaskResult
}

// Err returns the first task error, or nil when the job succeeded.
func (r *JobReport) Err() error {
	for _, tr := range r.Results {
		if tr.Err != nil {
			return fmt.Errorf("etl: job %s, task %s: %w", r.Job, tr.Task, tr.Err)
		}
	}
	return nil
}

// TotalWritten sums rows written across tasks.
func (r *JobReport) TotalWritten() int {
	n := 0
	for _, tr := range r.Results {
		n += tr.Written
	}
	return n
}

// topoOrder sorts tasks so dependencies run first, rejecting unknown
// dependencies and cycles.
func (j *Job) topoOrder() ([]int, error) {
	index := make(map[string]int, len(j.Tasks))
	for i, t := range j.Tasks {
		if t.Name == "" {
			return nil, fmt.Errorf("etl: job %s: task %d has no name", j.Name, i)
		}
		if _, dup := index[t.Name]; dup {
			return nil, fmt.Errorf("etl: job %s: duplicate task %q", j.Name, t.Name)
		}
		index[t.Name] = i
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(j.Tasks))
	var order []int
	var visit func(i int) error
	visit = func(i int) error {
		switch color[i] {
		case gray:
			return fmt.Errorf("etl: job %s: dependency cycle through %q", j.Name, j.Tasks[i].Name)
		case black:
			return nil
		}
		color[i] = gray
		for _, dep := range j.Tasks[i].DependsOn {
			di, ok := index[dep]
			if !ok {
				return fmt.Errorf("etl: job %s: task %q depends on unknown %q", j.Name, j.Tasks[i].Name, dep)
			}
			if err := visit(di); err != nil {
				return err
			}
		}
		color[i] = black
		order = append(order, i)
		return nil
	}
	// Deterministic root order.
	roots := make([]int, len(j.Tasks))
	for i := range roots {
		roots[i] = i
	}
	sort.SliceStable(roots, func(a, b int) bool { return j.Tasks[roots[a]].Name < j.Tasks[roots[b]].Name })
	for _, i := range roots {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Run executes the job: tasks in dependency order, retrying failures,
// skipping tasks whose dependencies failed. A cancelled ctx fails the
// current task without retrying (retrying a dead request wastes work)
// and skips the remaining tasks.
func (j *Job) Run(ctx context.Context) *JobReport {
	report := &JobReport{Job: j.Name, Started: time.Now()}
	defer func() { report.Finished = time.Now() }()
	order, err := j.topoOrder()
	if err != nil {
		report.Results = append(report.Results, TaskResult{Task: j.Name, Err: err})
		return report
	}
	failed := map[string]bool{}
	for _, i := range order {
		task := j.Tasks[i]
		res := TaskResult{Task: task.Name}
		blocked := false
		for _, dep := range task.DependsOn {
			if failed[dep] {
				blocked = true
				break
			}
		}
		if err := ctx.Err(); err != nil && !blocked {
			res.Err = err
			failed[task.Name] = true
			report.Results = append(report.Results, res)
			continue
		}
		if blocked {
			res.Skipped = true
			failed[task.Name] = true
			report.Results = append(report.Results, res)
			continue
		}
		start := time.Now()
		for attempt := 0; attempt <= task.Retries; attempt++ {
			if attempt > 0 {
				if serr := retrySleep(ctx, task.RetryBackoff, attempt); serr != nil {
					res.Err = serr
					break
				}
				mETLRetries.Inc()
				obs.AddTenant(ctx, obs.TenantRetries, 1)
			}
			res.Attempts++
			read, written, err := task.Pipeline.Run(ctx)
			res.Read, res.Written, res.Err = read, written, err
			if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				break
			}
		}
		res.Duration = time.Since(start)
		if res.Err != nil {
			failed[task.Name] = true
		}
		report.Results = append(report.Results, res)
	}
	return report
}
