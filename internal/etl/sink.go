package etl

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

// newDB isolates the sql dependency so sources/sinks share one
// construction point.
func newDB(e *storage.Engine) *sql.DB { return sql.NewDB(e) }

// Sink consumes the final record stream of a pipeline.
type Sink interface {
	// Write stores the records, returning the number written. ctx bounds
	// the write: a cancelled context rolls back the in-flight batch, so
	// table sinks never commit a partial batch.
	Write(ctx context.Context, recs []Record) (int, error)
}

// SliceSink collects records in memory (tests, previews).
type SliceSink struct {
	Records []Record
}

// Write implements Sink.
func (s *SliceSink) Write(ctx context.Context, recs []Record) (int, error) {
	for _, r := range recs {
		s.Records = append(s.Records, r.Clone())
	}
	return len(recs), nil
}

// TableSink loads records into a storage table.
type TableSink struct {
	Engine *storage.Engine
	Table  string
	// Truncate deletes existing rows first (full reload semantics).
	Truncate bool
	// CreateTable creates the table from the first record's shape when it
	// does not exist. Column types are taken from the first non-NULL
	// value per field; all columns are nullable with no primary key.
	CreateTable bool
	// BatchSize bounds rows per transaction (default 1000).
	BatchSize int
}

// Write implements Sink.
func (s *TableSink) Write(ctx context.Context, recs []Record) (int, error) {
	if s.Engine == nil || s.Table == "" {
		return 0, fmt.Errorf("etl: TableSink needs Engine and Table")
	}
	if !s.Engine.HasTable(s.Table) {
		if !s.CreateTable {
			return 0, fmt.Errorf("%w: %s", storage.ErrNoTable, s.Table)
		}
		if len(recs) == 0 {
			return 0, fmt.Errorf("etl: cannot infer schema for %s from zero records", s.Table)
		}
		schema, err := inferSchema(s.Table, recs)
		if err != nil {
			return 0, err
		}
		if err := s.Engine.CreateTable(schema); err != nil {
			return 0, err
		}
	}
	schema, err := s.Engine.Schema(s.Table)
	if err != nil {
		return 0, err
	}
	if s.Truncate {
		err := s.Engine.UpdateCtx(ctx, func(tx *storage.Tx) error {
			var rids []storage.RID
			tx.Scan(s.Table, func(rid storage.RID, _ storage.Row) bool {
				rids = append(rids, rid)
				return true
			})
			for _, rid := range rids {
				if err := tx.DeleteRID(s.Table, rid); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	batch := s.BatchSize
	if batch <= 0 {
		batch = 1000
	}
	names := schema.ColumnNames()
	written := 0
	for start := 0; start < len(recs); start += batch {
		end := start + batch
		if end > len(recs) {
			end = len(recs)
		}
		err := s.Engine.UpdateCtx(ctx, func(tx *storage.Tx) error {
			for _, rec := range recs[start:end] {
				row := make(storage.Row, len(names))
				for i, n := range names {
					row[i] = lookupField(rec, n)
				}
				if _, err := tx.Insert(s.Table, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return written, fmt.Errorf("etl: load into %s: %w", s.Table, err)
		}
		written += end - start
	}
	return written, nil
}

func lookupField(rec Record, name string) storage.Value {
	if v, ok := rec[name]; ok {
		return v
	}
	for k, v := range rec {
		if strings.EqualFold(k, name) {
			return v
		}
	}
	return nil
}

// inferSchema derives a table schema from record shapes: the union of
// fields, each typed by its first non-NULL value.
func inferSchema(table string, recs []Record) (*storage.Schema, error) {
	types := map[string]storage.Type{}
	var order []string
	for _, rec := range recs {
		for _, f := range rec.Fields() {
			if _, seen := types[f]; !seen {
				types[f] = storage.TypeInvalid
				order = append(order, f)
			}
			if types[f] == storage.TypeInvalid && rec[f] != nil {
				if t, ok := storage.TypeOf(storage.Normalize(rec[f])); ok {
					types[f] = t
				}
			}
		}
	}
	sort.Strings(order)
	cols := make([]storage.Column, 0, len(order))
	for _, f := range order {
		t := types[f]
		if t == storage.TypeInvalid {
			t = storage.TypeString // all-NULL field: default to text
		}
		cols = append(cols, storage.Column{Name: f, Type: t})
	}
	return storage.NewSchema(table, cols)
}

// CSVSink writes records as CSV with a sorted header union.
type CSVSink struct {
	W io.Writer
}

// Write implements Sink.
func (s *CSVSink) Write(ctx context.Context, recs []Record) (int, error) {
	fields := map[string]bool{}
	for _, rec := range recs {
		for f := range rec {
			fields[f] = true
		}
	}
	header := make([]string, 0, len(fields))
	for f := range fields {
		header = append(header, f)
	}
	sort.Strings(header)
	w := csv.NewWriter(s.W)
	if err := w.Write(header); err != nil {
		return 0, err
	}
	for _, rec := range recs {
		cells := make([]string, len(header))
		for i, f := range header {
			if rec[f] == nil {
				cells[i] = ""
			} else {
				cells[i] = storage.FormatValue(rec[f])
			}
		}
		if err := w.Write(cells); err != nil {
			return 0, err
		}
	}
	w.Flush()
	return len(recs), w.Error()
}
