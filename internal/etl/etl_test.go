package etl

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/storage"
)

const salesCSV = `date,store,product,amount,qty
2026-01-01,paris,widget,10.5,2
2026-01-01,lyon,widget,7.0,1
2026-01-02,paris,gadget,20.0,4
2026-01-02,paris,widget,,3
2026-01-03,lyon,gadget,5.5,1
`

func TestCSVSourceInference(t *testing.T) {
	src := &CSVSource{Data: salesCSV}
	recs, err := src.Read(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if _, ok := r["date"].(time.Time); !ok {
		t.Errorf("date type = %T", r["date"])
	}
	if r["amount"] != 10.5 || r["qty"] != int64(2) || r["store"] != "paris" {
		t.Errorf("record = %v", r)
	}
	if recs[3]["amount"] != nil {
		t.Errorf("empty cell should be NULL, got %v", recs[3]["amount"])
	}
}

func TestCSVSourceErrors(t *testing.T) {
	if _, err := (&CSVSource{}).Read(context.Background()); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := (&CSVSource{Data: "a,b\n1"}).Read(context.Background()); err == nil {
		t.Error("ragged CSV accepted")
	}
	if _, err := (&CSVSource{Path: "x", Data: "y"}).Read(context.Background()); err == nil {
		t.Error("both path and data accepted")
	}
}

func TestJSONSource(t *testing.T) {
	src := &JSONSource{Data: `[{"a": 1, "b": "x", "c": 1.5, "d": true, "e": null}]`}
	recs, err := src.Read(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if r["a"] != int64(1) || r["b"] != "x" || r["c"] != 1.5 || r["d"] != true || r["e"] != nil {
		t.Errorf("record = %v", r)
	}
	// NDJSON form.
	src = &JSONSource{Data: "{\"a\":1}\n{\"a\":2}\n"}
	recs, err = src.Read(context.Background())
	if err != nil || len(recs) != 2 {
		t.Fatalf("ndjson: %v, %d records", err, len(recs))
	}
}

func TestFilterDerive(t *testing.T) {
	p := &Pipeline{
		Source: &CSVSource{Data: salesCSV},
		Transforms: []Transform{
			Filter{Condition: "amount IS NOT NULL AND store = 'paris'"},
			Derive{Field: "total", Expression: "amount * qty"},
		},
		Sink: &SliceSink{},
	}
	read, written, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if read != 5 || written != 2 {
		t.Errorf("read=%d written=%d", read, written)
	}
	out := p.Sink.(*SliceSink).Records
	if out[0]["total"] != 21.0 || out[1]["total"] != 80.0 {
		t.Errorf("totals = %v, %v", out[0]["total"], out[1]["total"])
	}
}

func TestFilterBadExpression(t *testing.T) {
	p := &Pipeline{
		Source:     &SliceSource{Records: []Record{{"a": int64(1)}}},
		Transforms: []Transform{Filter{Condition: "SELECT nope"}},
		Sink:       &SliceSink{},
	}
	if _, _, err := p.Run(context.Background()); err == nil {
		t.Error("bad filter expression accepted")
	}
}

func TestRenameProject(t *testing.T) {
	recs := []Record{{"a": int64(1), "b": int64(2), "c": int64(3)}}
	out, err := Rename{Mapping: map[string]string{"a": "x"}}.Apply(recs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]["x"] != int64(1) || out[0]["b"] != int64(2) {
		t.Errorf("rename = %v", out[0])
	}
	out, err = Project{Fields: []string{"x", "ghost"}}.Apply(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 2 || out[0]["x"] != int64(1) || out[0]["ghost"] != nil {
		t.Errorf("project = %v", out[0])
	}
}

func TestLookup(t *testing.T) {
	stores := &SliceSource{Records: []Record{
		{"id": "paris", "region": "idf", "size": int64(100)},
		{"id": "lyon", "region": "ara", "size": int64(60)},
	}}
	in := []Record{
		{"store": "paris", "amount": 1.0},
		{"store": "nowhere", "amount": 2.0},
	}
	out, err := Lookup{On: "store", From: stores, Key: "id", Take: []string{"region", "size AS store_size"}}.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]["region"] != "idf" || out[0]["store_size"] != int64(100) {
		t.Errorf("lookup hit = %v", out[0])
	}
	if out[1]["region"] != nil {
		t.Errorf("lookup miss should yield NULL, got %v", out[1]["region"])
	}
	// Required lookups fail on a miss.
	_, err = Lookup{On: "store", From: stores, Key: "id", Take: []string{"region"}, Required: true}.Apply(in)
	if err == nil {
		t.Error("required lookup miss accepted")
	}
}

func TestAggregate(t *testing.T) {
	src := &CSVSource{Data: salesCSV}
	recs, _ := src.Read(context.Background())
	out, err := Aggregate{
		GroupBy: []string{"store"},
		Aggs: []AggSpec{
			{Op: "count", As: "n"},
			{Op: "sum", Field: "amount", As: "total"},
			{Op: "max", Field: "qty", As: "max_qty"},
		},
	}.Apply(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	byStore := map[string]Record{}
	for _, r := range out {
		byStore[r["store"].(string)] = r
	}
	paris := byStore["paris"]
	if paris["n"] != int64(3) || paris["total"] != 30.5 || paris["max_qty"] != int64(4) {
		t.Errorf("paris = %v", paris)
	}
	if _, err := (Aggregate{Aggs: []AggSpec{{Op: "median", Field: "x"}}}).Apply(recs); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := (Aggregate{}).Apply(recs); err == nil {
		t.Error("no aggs accepted")
	}
}

func TestDedupSort(t *testing.T) {
	recs := []Record{
		{"k": int64(2), "v": "b"},
		{"k": int64(1), "v": "a"},
		{"k": int64(2), "v": "c"},
	}
	out, err := Dedup{Fields: []string{"k"}}.Apply(recs)
	if err != nil || len(out) != 2 {
		t.Fatalf("dedup: %v, %d", err, len(out))
	}
	out, err = SortBy{Fields: []string{"-k"}}.Apply(out)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]["k"] != int64(2) || out[1]["k"] != int64(1) {
		t.Errorf("sort = %v", out)
	}
}

func TestMapFunc(t *testing.T) {
	recs := []Record{{"n": int64(1)}, {"n": int64(2)}}
	out, err := MapFunc{Label: "odd-only", Fn: func(r Record) (Record, error) {
		if r["n"].(int64)%2 == 0 {
			return nil, nil
		}
		r["n2"] = r["n"].(int64) * 10
		return r, nil
	}}.Apply(recs)
	if err != nil || len(out) != 1 || out[0]["n2"] != int64(10) {
		t.Errorf("mapfunc: %v %v", err, out)
	}
}

func TestTableSinkAndSource(t *testing.T) {
	e := storage.MustOpenMemory()
	defer e.Close()
	sink := &TableSink{Engine: e, Table: "sales", CreateTable: true}
	p := &Pipeline{
		Source:     &CSVSource{Data: salesCSV},
		Transforms: []Transform{Filter{Condition: "amount IS NOT NULL"}},
		Sink:       sink,
	}
	if _, written, err := p.Run(context.Background()); err != nil || written != 4 {
		t.Fatalf("load: %v, written=%d", err, written)
	}
	// The inferred schema must be readable back.
	src := &TableSource{Engine: e, Table: "sales"}
	recs, err := src.Read(context.Background())
	if err != nil || len(recs) != 4 {
		t.Fatalf("table source: %v, %d", err, len(recs))
	}
	// Truncate reload.
	sink2 := &TableSink{Engine: e, Table: "sales", Truncate: true}
	if _, _, err := (&Pipeline{Source: src, Sink: sink2}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs, _ = (&TableSource{Engine: e, Table: "sales"}).Read(context.Background())
	if len(recs) != 4 {
		t.Errorf("after truncate reload: %d", len(recs))
	}
	// QuerySource.
	qs := &QuerySource{Engine: e, Query: "SELECT store, SUM(amount) AS total FROM sales GROUP BY store"}
	recs, err = qs.Read(context.Background())
	if err != nil || len(recs) != 2 {
		t.Fatalf("query source: %v %v", err, recs)
	}
}

func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	sink := &CSVSink{W: &buf}
	n, err := sink.Write(context.Background(), []Record{{"b": int64(2), "a": "x"}, {"a": "y", "b": nil}})
	if err != nil || n != 2 {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "a,b" || lines[1] != "x,2" || lines[2] != "y," {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestJobDAG(t *testing.T) {
	e := storage.MustOpenMemory()
	defer e.Close()
	staging := &SliceSink{}
	job := &Job{
		Name: "dw-load",
		Tasks: []Task{
			{
				Name: "load-fact",
				DependsOn: []string{
					"stage",
				},
				Pipeline: &Pipeline{
					Source: &CSVSource{Data: salesCSV},
					Sink:   &TableSink{Engine: e, Table: "fact", CreateTable: true},
				},
			},
			{
				Name: "stage",
				Pipeline: &Pipeline{
					Source: &CSVSource{Data: salesCSV},
					Sink:   staging,
				},
			},
		},
	}
	report := job.Run(context.Background())
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 2 || report.Results[0].Task != "stage" {
		t.Errorf("order = %+v", report.Results)
	}
	if report.TotalWritten() != 10 {
		t.Errorf("total written = %d", report.TotalWritten())
	}
}

func TestJobDependencyFailureSkips(t *testing.T) {
	bad := &Pipeline{
		Source: &CSVSource{Data: "x"}, // header only, then any transform ok
		Transforms: []Transform{
			Filter{Condition: "???bad"},
		},
		Sink: &SliceSink{},
	}
	good := &Pipeline{Source: &SliceSource{}, Sink: &SliceSink{}}
	job := &Job{
		Name: "j",
		Tasks: []Task{
			{Name: "a", Pipeline: bad},
			{Name: "b", DependsOn: []string{"a"}, Pipeline: good},
		},
	}
	report := job.Run(context.Background())
	if report.Err() == nil {
		t.Fatal("failure not reported")
	}
	if !report.Results[1].Skipped {
		t.Error("dependent task was not skipped")
	}
}

func TestJobRetries(t *testing.T) {
	attempts := 0
	flaky := &Pipeline{
		Source: &SliceSource{Records: []Record{{"a": int64(1)}}},
		Transforms: []Transform{MapFunc{Label: "flaky", Fn: func(r Record) (Record, error) {
			attempts++
			if attempts < 3 {
				return nil, errors.New("transient")
			}
			return r, nil
		}}},
		Sink: &SliceSink{},
	}
	job := &Job{Name: "retry", Tasks: []Task{{Name: "t", Pipeline: flaky, Retries: 3}}}
	report := job.Run(context.Background())
	if err := report.Err(); err != nil {
		t.Fatalf("retries exhausted: %v", err)
	}
	if report.Results[0].Attempts != 3 {
		t.Errorf("attempts = %d", report.Results[0].Attempts)
	}
}

func TestJobCycleDetection(t *testing.T) {
	p := &Pipeline{Source: &SliceSource{}, Sink: &SliceSink{}}
	job := &Job{Name: "cyc", Tasks: []Task{
		{Name: "a", DependsOn: []string{"b"}, Pipeline: p},
		{Name: "b", DependsOn: []string{"a"}, Pipeline: p},
	}}
	if job.Run(context.Background()).Err() == nil {
		t.Error("cycle accepted")
	}
	job = &Job{Name: "dangling", Tasks: []Task{{Name: "a", DependsOn: []string{"ghost"}, Pipeline: p}}}
	if job.Run(context.Background()).Err() == nil {
		t.Error("unknown dependency accepted")
	}
}

func TestSchedulerTriggerAndHistory(t *testing.T) {
	s := NewScheduler()
	job := &Job{Name: "j", Tasks: []Task{{Name: "t", Pipeline: &Pipeline{
		Source: &SliceSource{Records: []Record{{"a": int64(1)}}},
		Sink:   &SliceSink{},
	}}}}
	if err := s.Register(job, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(job, 0); err == nil {
		t.Error("duplicate registration accepted")
	}
	report, err := s.Trigger(context.Background(), "j")
	if err != nil || report.Err() != nil {
		t.Fatalf("trigger: %v / %v", err, report.Err())
	}
	if _, err := s.Trigger(context.Background(), "ghost"); err == nil {
		t.Error("unknown job triggered")
	}
	if h := s.History("j"); len(h) != 1 {
		t.Errorf("history = %d", len(h))
	}
	if jobs := s.Jobs(); len(jobs) != 1 || jobs[0] != "j" {
		t.Errorf("jobs = %v", jobs)
	}
}

func TestSchedulerTick(t *testing.T) {
	s := NewScheduler()
	now := time.Unix(1000, 0)
	s.clock = func() time.Time { return now }
	job := &Job{Name: "periodic", Tasks: []Task{{Name: "t", Pipeline: &Pipeline{
		Source: &SliceSource{Records: []Record{{"a": int64(1)}}},
		Sink:   &SliceSink{},
	}}}}
	if err := s.Register(job, time.Minute); err != nil {
		t.Fatal(err)
	}
	// Not yet due.
	if reports := s.Tick(context.Background()); len(reports) != 0 {
		t.Errorf("early tick ran %d jobs", len(reports))
	}
	now = now.Add(2 * time.Minute)
	if reports := s.Tick(context.Background()); len(reports) != 1 {
		t.Fatalf("due tick ran %d jobs", len(reports))
	}
	// Immediately after, the job is rescheduled in the future.
	if reports := s.Tick(context.Background()); len(reports) != 0 {
		t.Errorf("re-run before interval: %d", len(reports))
	}
	// Paused jobs are skipped.
	now = now.Add(2 * time.Minute)
	s.Pause("periodic")
	if reports := s.Tick(context.Background()); len(reports) != 0 {
		t.Errorf("paused job ran")
	}
	s.Resume("periodic")
	now = now.Add(2 * time.Minute)
	if reports := s.Tick(context.Background()); len(reports) != 1 {
		t.Errorf("resumed job did not run")
	}
	if h := s.History("periodic"); len(h) != 2 {
		t.Errorf("history = %d", len(h))
	}
}

func TestSchedulerHistoryBound(t *testing.T) {
	s := NewScheduler()
	s.HistoryLimit = 3
	job := &Job{Name: "j", Tasks: []Task{{Name: "t", Pipeline: &Pipeline{
		Source: &SliceSource{}, Sink: &SliceSink{},
	}}}}
	s.Register(job, 0)
	for i := 0; i < 10; i++ {
		s.Trigger(context.Background(), "j")
	}
	if h := s.History("j"); len(h) != 3 {
		t.Errorf("history = %d, want 3", len(h))
	}
}

func TestPipelinePreview(t *testing.T) {
	p := &Pipeline{
		Source:     &CSVSource{Data: salesCSV},
		Transforms: []Transform{Filter{Condition: "qty > 1"}},
	}
	recs, err := p.Preview(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("preview = %d records", len(recs))
	}
}

func TestTransformNames(t *testing.T) {
	cases := map[string]Transform{
		"filter(x > 1)": Filter{Condition: "x > 1"},
		"derive(y)":     Derive{Field: "y", Expression: "1"},
		"rename":        Rename{},
		"project(a,b)":  Project{Fields: []string{"a", "b"}},
		"lookup(k)":     Lookup{On: "k"},
		"aggregate(g)":  Aggregate{GroupBy: []string{"g"}},
		"dedup":         Dedup{},
		"sort(a,-b)":    SortBy{Fields: []string{"a", "-b"}},
		"custom":        MapFunc{Label: "custom"},
		"map":           MapFunc{},
	}
	for want, tr := range cases {
		if got := tr.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestSchedulerUnregisterAndStart(t *testing.T) {
	s := NewScheduler()
	job := &Job{Name: "j", Tasks: []Task{{Name: "t", Pipeline: &Pipeline{
		Source: &SliceSource{Records: []Record{{"a": int64(1)}}},
		Sink:   &SliceSink{},
	}}}}
	if err := s.Register(job, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stop := s.Start(context.Background(), 2*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for len(s.History("j")) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	if len(s.History("j")) == 0 {
		t.Fatal("ticker never ran the job")
	}
	s.Unregister("j")
	if len(s.Jobs()) != 0 {
		t.Errorf("jobs after unregister = %v", s.Jobs())
	}
	if len(s.History("j")) != 0 {
		t.Error("history survived unregister")
	}
	if _, err := s.Trigger(context.Background(), "j"); err == nil {
		t.Error("unregistered job triggered")
	}
	// Pause/resume of unknown jobs error.
	if err := s.Pause("ghost"); err == nil {
		t.Error("pause ghost accepted")
	}
	if err := s.Resume("ghost"); err == nil {
		t.Error("resume ghost accepted")
	}
	// Register validation.
	if err := s.Register(nil, 0); err == nil {
		t.Error("nil job accepted")
	}
	if err := s.Register(&Job{Name: "cyc", Tasks: []Task{
		{Name: "a", DependsOn: []string{"a"}, Pipeline: &Pipeline{Source: &SliceSource{}, Sink: &SliceSink{}}},
	}}, 0); err == nil {
		t.Error("cyclic job registered")
	}
}

func TestTableSinkCaseInsensitiveColumns(t *testing.T) {
	e := storage.MustOpenMemory()
	defer e.Close()
	s, _ := storage.NewSchema("t", []storage.Column{
		{Name: "Amount", Type: storage.TypeFloat},
	})
	e.CreateTable(s)
	sink := &TableSink{Engine: e, Table: "t"}
	n, err := sink.Write(context.Background(), []Record{{"AMOUNT": 1.5}})
	if err != nil || n != 1 {
		t.Fatalf("write: %v n=%d", err, n)
	}
	recs, _ := (&TableSource{Engine: e, Table: "t"}).Read(context.Background())
	if recs[0]["Amount"] != 1.5 {
		t.Errorf("round trip = %v", recs[0])
	}
}
