package etl

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

// Transform rewrites a record stream. Transforms must not mutate their
// input records.
type Transform interface {
	// Name identifies the transform in job reports.
	Name() string
	// Apply consumes the input stream and produces the output stream.
	Apply(in []Record) ([]Record, error)
}

// ContextTransform is implemented by transforms that do I/O and must
// observe request cancellation (e.g. Lookup, which reads a reference
// Source). Pipeline.Run prefers ApplyContext when available.
type ContextTransform interface {
	Transform
	ApplyContext(ctx context.Context, in []Record) ([]Record, error)
}

// applyTransform runs one transform, routing through ApplyContext when
// the transform observes cancellation.
func applyTransform(ctx context.Context, t Transform, in []Record) ([]Record, error) {
	if ct, ok := t.(ContextTransform); ok {
		return ct.ApplyContext(ctx, in)
	}
	return t.Apply(in)
}

// Filter keeps records matching a SQL predicate over the record's fields.
type Filter struct {
	// Condition is a SQL boolean expression, e.g. "amount > 0 AND
	// country = 'FR'".
	Condition string
}

// Name implements Transform.
func (f Filter) Name() string { return "filter(" + f.Condition + ")" }

// Apply implements Transform.
func (f Filter) Apply(in []Record) ([]Record, error) {
	expr, err := sql.CompileExpr(f.Condition)
	if err != nil {
		return nil, fmt.Errorf("etl: filter: %w", err)
	}
	var out []Record
	for _, rec := range in {
		ok, err := expr.EvalBool(rec)
		if err != nil {
			return nil, fmt.Errorf("etl: filter: %w", err)
		}
		if ok {
			out = append(out, rec)
		}
	}
	return out, nil
}

// Derive adds (or overwrites) a field computed from a SQL expression.
type Derive struct {
	Field      string
	Expression string
}

// Name implements Transform.
func (d Derive) Name() string { return "derive(" + d.Field + ")" }

// Apply implements Transform.
func (d Derive) Apply(in []Record) ([]Record, error) {
	expr, err := sql.CompileExpr(d.Expression)
	if err != nil {
		return nil, fmt.Errorf("etl: derive %s: %w", d.Field, err)
	}
	out := make([]Record, len(in))
	for i, rec := range in {
		v, err := expr.Eval(rec)
		if err != nil {
			return nil, fmt.Errorf("etl: derive %s: %w", d.Field, err)
		}
		nr := rec.Clone()
		nr[d.Field] = v
		out[i] = nr
	}
	return out, nil
}

// Rename renames fields; missing sources are ignored.
type Rename struct {
	// Mapping is old-name → new-name.
	Mapping map[string]string
}

// Name implements Transform.
func (r Rename) Name() string { return "rename" }

// Apply implements Transform.
func (r Rename) Apply(in []Record) ([]Record, error) {
	out := make([]Record, len(in))
	for i, rec := range in {
		nr := make(Record, len(rec))
		for k, v := range rec {
			if nk, ok := r.Mapping[k]; ok {
				nr[nk] = v
			} else {
				nr[k] = v
			}
		}
		out[i] = nr
	}
	return out, nil
}

// Project keeps only the listed fields (unknown names read as NULL).
type Project struct {
	Fields []string
}

// Name implements Transform.
func (p Project) Name() string { return "project(" + strings.Join(p.Fields, ",") + ")" }

// Apply implements Transform.
func (p Project) Apply(in []Record) ([]Record, error) {
	out := make([]Record, len(in))
	for i, rec := range in {
		nr := make(Record, len(p.Fields))
		for _, f := range p.Fields {
			nr[f] = rec[f]
		}
		out[i] = nr
	}
	return out, nil
}

// Lookup enriches records from a keyed reference table (a dimension
// lookup in DW terms).
type Lookup struct {
	// On is the input field whose value is the lookup key.
	On string
	// From supplies the reference records.
	From Source
	// Key is the key field within the reference records.
	Key string
	// Take lists reference fields copied into the record, optionally
	// renamed via "field AS alias".
	Take []string
	// Required makes unmatched keys an error; otherwise taken fields stay
	// NULL.
	Required bool
}

// Name implements Transform.
func (l Lookup) Name() string { return "lookup(" + l.On + ")" }

// Apply implements Transform.
func (l Lookup) Apply(in []Record) ([]Record, error) {
	return l.ApplyContext(context.Background(), in)
}

// ApplyContext implements ContextTransform: the reference-source read is
// bounded by ctx.
func (l Lookup) ApplyContext(ctx context.Context, in []Record) ([]Record, error) {
	refs, err := l.From.Read(ctx)
	if err != nil {
		return nil, fmt.Errorf("etl: lookup %s: %w", l.On, err)
	}
	index := make(map[string]Record, len(refs))
	for _, ref := range refs {
		k := ref[l.Key]
		if k == nil {
			continue
		}
		index[storage.EncodeKey(k)] = ref
	}
	type taken struct{ src, dst string }
	takes := make([]taken, len(l.Take))
	for i, t := range l.Take {
		parts := strings.SplitN(t, " AS ", 2)
		if len(parts) == 2 {
			takes[i] = taken{src: strings.TrimSpace(parts[0]), dst: strings.TrimSpace(parts[1])}
		} else {
			takes[i] = taken{src: t, dst: t}
		}
	}
	out := make([]Record, len(in))
	for i, rec := range in {
		nr := rec.Clone()
		var ref Record
		if k := rec[l.On]; k != nil {
			ref = index[storage.EncodeKey(k)]
		}
		if ref == nil && l.Required {
			return nil, fmt.Errorf("etl: lookup %s: no match for %v", l.On, rec[l.On])
		}
		for _, t := range takes {
			if ref != nil {
				nr[t.dst] = ref[t.src]
			} else {
				nr[t.dst] = nil
			}
		}
		out[i] = nr
	}
	return out, nil
}

// AggSpec is one aggregation of an Aggregate transform.
type AggSpec struct {
	// Field is the input field aggregated (ignored for "count").
	Field string
	// Op is one of count, sum, avg, min, max.
	Op string
	// As names the output field; defaults to op_field.
	As string
}

// Aggregate groups records and computes aggregations, producing one
// record per group.
type Aggregate struct {
	GroupBy []string
	Aggs    []AggSpec
}

// Name implements Transform.
func (a Aggregate) Name() string { return "aggregate(" + strings.Join(a.GroupBy, ",") + ")" }

// Apply implements Transform.
func (a Aggregate) Apply(in []Record) ([]Record, error) {
	type state struct {
		rec    Record
		counts []int64
		sums   []float64
		mins   []storage.Value
		maxs   []storage.Value
	}
	if len(a.Aggs) == 0 {
		return nil, fmt.Errorf("etl: aggregate: no aggregations")
	}
	for _, spec := range a.Aggs {
		switch spec.Op {
		case "count", "sum", "avg", "min", "max":
		default:
			return nil, fmt.Errorf("etl: aggregate: unknown op %q", spec.Op)
		}
	}
	var order []string
	states := map[string]*state{}
	for _, rec := range in {
		keyVals := make([]storage.Value, len(a.GroupBy))
		for i, g := range a.GroupBy {
			keyVals[i] = rec[g]
		}
		key := storage.EncodeKey(keyVals...)
		st, ok := states[key]
		if !ok {
			st = &state{
				rec:    make(Record, len(a.GroupBy)+len(a.Aggs)),
				counts: make([]int64, len(a.Aggs)),
				sums:   make([]float64, len(a.Aggs)),
				mins:   make([]storage.Value, len(a.Aggs)),
				maxs:   make([]storage.Value, len(a.Aggs)),
			}
			for i, g := range a.GroupBy {
				st.rec[g] = keyVals[i]
			}
			states[key] = st
			order = append(order, key)
		}
		for i, spec := range a.Aggs {
			v := rec[spec.Field]
			if spec.Op == "count" {
				if spec.Field == "" || v != nil {
					st.counts[i]++
				}
				continue
			}
			if v == nil {
				continue
			}
			st.counts[i]++
			switch spec.Op {
			case "sum", "avg":
				f, ok := asFloat(v)
				if !ok {
					return nil, fmt.Errorf("etl: aggregate %s(%s): non-numeric value %v", spec.Op, spec.Field, v)
				}
				st.sums[i] += f
			case "min":
				if st.mins[i] == nil || storage.Compare(v, st.mins[i]) < 0 {
					st.mins[i] = v
				}
			case "max":
				if st.maxs[i] == nil || storage.Compare(v, st.maxs[i]) > 0 {
					st.maxs[i] = v
				}
			}
		}
	}
	out := make([]Record, 0, len(order))
	for _, key := range order {
		st := states[key]
		for i, spec := range a.Aggs {
			name := spec.As
			if name == "" {
				name = spec.Op + "_" + spec.Field
				if spec.Field == "" {
					name = spec.Op
				}
			}
			switch spec.Op {
			case "count":
				st.rec[name] = st.counts[i]
			case "sum":
				st.rec[name] = st.sums[i]
			case "avg":
				if st.counts[i] == 0 {
					st.rec[name] = nil
				} else {
					st.rec[name] = st.sums[i] / float64(st.counts[i])
				}
			case "min":
				st.rec[name] = st.mins[i]
			case "max":
				st.rec[name] = st.maxs[i]
			}
		}
		out = append(out, st.rec)
	}
	return out, nil
}

func asFloat(v storage.Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// Dedup drops records whose key fields repeat an earlier record.
type Dedup struct {
	Fields []string // empty means the whole record
}

// Name implements Transform.
func (d Dedup) Name() string { return "dedup" }

// Apply implements Transform.
func (d Dedup) Apply(in []Record) ([]Record, error) {
	seen := map[string]bool{}
	var out []Record
	for _, rec := range in {
		fields := d.Fields
		if len(fields) == 0 {
			fields = rec.Fields()
		}
		vals := make([]storage.Value, 0, len(fields)*2)
		for _, f := range fields {
			vals = append(vals, f, rec[f])
		}
		key := storage.EncodeKey(vals...)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, rec)
	}
	return out, nil
}

// SortBy orders records by the given fields (prefix a field with '-' for
// descending).
type SortBy struct {
	Fields []string
}

// Name implements Transform.
func (s SortBy) Name() string { return "sort(" + strings.Join(s.Fields, ",") + ")" }

// Apply implements Transform.
func (s SortBy) Apply(in []Record) ([]Record, error) {
	out := append([]Record(nil), in...)
	sort.SliceStable(out, func(i, j int) bool {
		for _, f := range s.Fields {
			field, desc := f, false
			if strings.HasPrefix(f, "-") {
				field, desc = f[1:], true
			}
			c := storage.Compare(out[i][field], out[j][field])
			if c == 0 {
				continue
			}
			if desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return out, nil
}

// MapFunc applies an arbitrary Go function per record (escape hatch for
// logic the expression language cannot express). Returning nil drops the
// record.
type MapFunc struct {
	Label string
	Fn    func(Record) (Record, error)
}

// Name implements Transform.
func (m MapFunc) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return "map"
}

// Apply implements Transform.
func (m MapFunc) Apply(in []Record) ([]Record, error) {
	var out []Record
	for _, rec := range in {
		nr, err := m.Fn(rec.Clone())
		if err != nil {
			return nil, fmt.Errorf("etl: %s: %w", m.Name(), err)
		}
		if nr != nil {
			out = append(out, nr)
		}
	}
	return out, nil
}
