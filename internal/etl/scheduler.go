package etl

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Scheduler runs registered jobs on fixed intervals — the "jobs
// scheduling" half of the Integration Service. It keeps a bounded history
// of reports per job.
//
// Lifecycle is context-driven: Start derives a run context and the stop
// function cancels it and waits for the in-flight Tick, so no job can
// fire concurrently with (or after) shutdown or entry removal.
type Scheduler struct {
	mu      sync.Mutex
	entries map[string]*entry
	history map[string][]*JobReport
	// HistoryLimit bounds retained reports per job (default 32).
	HistoryLimit int
	// OnReport, when set, is called synchronously after every scheduled
	// (Tick-driven) run with the job name and its report. Set it before
	// Start; it must not call back into the scheduler.
	OnReport func(job string, report *JobReport)
	// clock is replaceable in tests.
	clock func() time.Time
}

type entry struct {
	job      *Job
	interval time.Duration
	nextRun  time.Time
	paused   bool
	running  bool
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{
		entries:      make(map[string]*entry),
		history:      make(map[string][]*JobReport),
		HistoryLimit: 32,
		clock:        time.Now,
	}
}

// Register adds a job with a run interval. Interval 0 registers the job
// for manual triggering only.
func (s *Scheduler) Register(job *Job, interval time.Duration) error {
	if job == nil || job.Name == "" {
		return fmt.Errorf("etl: scheduler: job needs a name")
	}
	if _, _, err := (&Job{Name: job.Name, Tasks: job.Tasks}).validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[job.Name]; dup {
		return fmt.Errorf("etl: scheduler: job %q already registered", job.Name)
	}
	e := &entry{job: job, interval: interval}
	if interval > 0 {
		e.nextRun = s.clock().Add(interval)
	}
	s.entries[job.Name] = e
	return nil
}

// validate checks the job DAG without running it.
func (j *Job) validate() (*Job, []int, error) {
	order, err := j.topoOrder()
	return j, order, err
}

// Unregister removes a job and its history. A run already in flight
// finishes (its report is recorded under the removed name and then
// dropped with the history); future Ticks no longer see the entry.
func (s *Scheduler) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
	delete(s.history, name)
}

// Pause suspends interval runs; Trigger still works.
func (s *Scheduler) Pause(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return fmt.Errorf("etl: scheduler: no job %q", name)
	}
	e.paused = true
	return nil
}

// Resume re-enables interval runs.
func (s *Scheduler) Resume(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return fmt.Errorf("etl: scheduler: no job %q", name)
	}
	e.paused = false
	e.nextRun = s.clock().Add(e.interval)
	return nil
}

// Trigger runs a job immediately and synchronously under ctx, recording
// the report.
func (s *Scheduler) Trigger(ctx context.Context, name string) (*JobReport, error) {
	s.mu.Lock()
	e, ok := s.entries[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("etl: scheduler: no job %q", name)
	}
	report := e.job.Run(ctx)
	s.record(name, report)
	return report, nil
}

func (s *Scheduler) record(name string, report *JobReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := append(s.history[name], report)
	limit := s.HistoryLimit
	if limit <= 0 {
		limit = 32
	}
	if len(h) > limit {
		h = h[len(h)-limit:]
	}
	s.history[name] = h
}

// History returns the retained reports for a job, oldest first.
func (s *Scheduler) History(name string) []*JobReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*JobReport(nil), s.history[name]...)
}

// Jobs lists registered job names sorted.
func (s *Scheduler) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.entries))
	for n := range s.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tick runs every due, unpaused interval job once (synchronously) under
// ctx and reschedules it. It is the scheduler's heartbeat: call it from a
// ticker goroutine (Start does this) or directly in tests for
// deterministic time control. A cancelled ctx makes due jobs fail fast at
// their first checkpoint rather than silently skipping them.
func (s *Scheduler) Tick(ctx context.Context) []*JobReport {
	now := s.clock()
	s.mu.Lock()
	var due []*entry
	for _, e := range s.entries {
		if e.interval > 0 && !e.paused && !e.running && !e.nextRun.After(now) {
			e.running = true
			due = append(due, e)
		}
	}
	s.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].job.Name < due[j].job.Name })
	var reports []*JobReport
	for _, e := range due {
		report := e.job.Run(ctx)
		s.record(e.job.Name, report)
		reports = append(reports, report)
		s.mu.Lock()
		e.running = false
		e.nextRun = s.clock().Add(e.interval)
		s.mu.Unlock()
		if s.OnReport != nil {
			s.OnReport(e.job.Name, report)
		}
	}
	return reports
}

// Start launches a background ticker that calls Tick every resolution,
// bound to ctx. The returned stop function cancels the run context and
// blocks until the ticker goroutine — including any in-flight Tick — has
// fully exited, so shutdown cannot race a running job. Cancelling the
// parent ctx stops the ticker the same way (stop then just waits).
func (s *Scheduler) Start(ctx context.Context, resolution time.Duration) (stop func()) {
	if resolution <= 0 {
		resolution = time.Second
	}
	runCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(resolution)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				s.Tick(runCtx)
			}
		}
	}()
	return func() {
		cancel()
		wg.Wait()
	}
}
