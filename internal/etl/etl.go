// Package etl is the data-integration substrate behind the ODBIS
// Integration Service (IS) — the paper's "ad-hoc way to define data
// integration jobs, jobs scheduling, etc." (§3.1), standing in for the
// Talend/LogiXML class of tools.
//
// A Pipeline reads records from a Source, passes them through Transforms
// (filter, map, derive, lookup, aggregate, …) and writes them to a Sink.
// Pipelines compose into Jobs — DAGs of dependent tasks — and Jobs run on
// a Scheduler with retry and history.
package etl

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/odbis/odbis/internal/storage"
)

// Record is one data row keyed by field name. Values use the storage
// engine's canonical dynamic types.
type Record map[string]storage.Value

// Clone copies the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Fields returns the record's field names sorted.
func (r Record) Fields() []string {
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Source produces records.
type Source interface {
	// Read returns every record of the source. Sources are re-readable:
	// each call restarts from the beginning. ctx bounds the read;
	// sources backed by table scans or queries stop at the next row
	// checkpoint once ctx is cancelled.
	Read(ctx context.Context) ([]Record, error)
}

// SliceSource serves an in-memory record slice; the zero value is empty.
type SliceSource struct {
	Records []Record
}

// Read implements Source.
func (s *SliceSource) Read(ctx context.Context) ([]Record, error) {
	out := make([]Record, len(s.Records))
	for i, r := range s.Records {
		out[i] = r.Clone()
	}
	return out, nil
}

// CSVSource reads delimited text with a header row. Field values are
// typed by inference (int, float, bool, RFC-3339 time, else string);
// empty cells become NULL.
type CSVSource struct {
	// Path names a file to read; mutually exclusive with Data.
	Path string
	// Data holds inline CSV content (useful for tests and uploads).
	Data string
	// Comma overrides the delimiter (default ',').
	Comma rune
	// RawStrings disables type inference.
	RawStrings bool
}

// Read implements Source.
func (s *CSVSource) Read(ctx context.Context) ([]Record, error) {
	var r io.Reader
	switch {
	case s.Path != "" && s.Data != "":
		return nil, fmt.Errorf("etl: CSVSource: Path and Data are mutually exclusive")
	case s.Path != "":
		f, err := os.Open(s.Path)
		if err != nil {
			return nil, fmt.Errorf("etl: %w", err)
		}
		defer f.Close()
		r = f
	case s.Data != "":
		r = strings.NewReader(s.Data)
	default:
		return nil, fmt.Errorf("etl: CSVSource: no input")
	}
	cr := csv.NewReader(r)
	if s.Comma != 0 {
		cr.Comma = s.Comma
	}
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("etl: CSV input is empty")
	}
	if err != nil {
		return nil, fmt.Errorf("etl: read CSV header: %w", err)
	}
	var out []Record
	for line := 2; ; line++ {
		cells, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("etl: CSV line %d: %w", line, err)
		}
		rec := make(Record, len(header))
		for i, h := range header {
			if i >= len(cells) {
				rec[h] = nil
				continue
			}
			if s.RawStrings {
				rec[h] = cells[i]
			} else {
				rec[h] = inferValue(cells[i])
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// inferValue types a CSV cell.
func inferValue(cell string) storage.Value {
	trimmed := strings.TrimSpace(cell)
	if trimmed == "" {
		return nil
	}
	if i, err := strconv.ParseInt(trimmed, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(trimmed, 64); err == nil {
		return f
	}
	switch strings.ToLower(trimmed) {
	case "true":
		return true
	case "false":
		return false
	}
	if t, err := time.Parse(time.RFC3339, trimmed); err == nil {
		return t.UTC()
	}
	if t, err := time.Parse("2006-01-02", trimmed); err == nil {
		return t.UTC()
	}
	return cell
}

// JSONSource reads either a JSON array of objects or newline-delimited
// JSON objects.
type JSONSource struct {
	Path string
	Data string
}

// Read implements Source.
func (s *JSONSource) Read(ctx context.Context) ([]Record, error) {
	var data []byte
	switch {
	case s.Path != "" && s.Data != "":
		return nil, fmt.Errorf("etl: JSONSource: Path and Data are mutually exclusive")
	case s.Path != "":
		b, err := os.ReadFile(s.Path)
		if err != nil {
			return nil, fmt.Errorf("etl: %w", err)
		}
		data = b
	case s.Data != "":
		data = []byte(s.Data)
	default:
		return nil, fmt.Errorf("etl: JSONSource: no input")
	}
	trimmed := strings.TrimSpace(string(data))
	var objs []map[string]any
	if strings.HasPrefix(trimmed, "[") {
		if err := json.Unmarshal([]byte(trimmed), &objs); err != nil {
			return nil, fmt.Errorf("etl: parse JSON array: %w", err)
		}
	} else {
		dec := json.NewDecoder(strings.NewReader(trimmed))
		for dec.More() {
			var obj map[string]any
			if err := dec.Decode(&obj); err != nil {
				return nil, fmt.Errorf("etl: parse NDJSON: %w", err)
			}
			objs = append(objs, obj)
		}
	}
	out := make([]Record, 0, len(objs))
	for _, obj := range objs {
		rec := make(Record, len(obj))
		for k, v := range obj {
			rec[k] = jsonValue(v)
		}
		out = append(out, rec)
	}
	return out, nil
}

func jsonValue(v any) storage.Value {
	switch x := v.(type) {
	case nil:
		return nil
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
		return x
	case string:
		if t, err := time.Parse(time.RFC3339, x); err == nil {
			return t.UTC()
		}
		return x
	case bool:
		return x
	default:
		// Nested structures flatten to their JSON text.
		b, _ := json.Marshal(x)
		return string(b)
	}
}

// TableSource reads every row of a storage table.
type TableSource struct {
	Engine *storage.Engine
	Table  string
}

// Read implements Source.
func (s *TableSource) Read(ctx context.Context) ([]Record, error) {
	schema, err := s.Engine.Schema(s.Table)
	if err != nil {
		return nil, err
	}
	names := schema.ColumnNames()
	var out []Record
	err = s.Engine.ViewCtx(ctx, func(tx *storage.Tx) error {
		return tx.Scan(s.Table, func(_ storage.RID, row storage.Row) bool {
			rec := make(Record, len(names))
			for i, n := range names {
				rec[n] = row[i]
			}
			out = append(out, rec)
			return true
		})
	})
	return out, err
}

// QuerySource reads records from a SQL query against a storage engine.
type QuerySource struct {
	Engine *storage.Engine
	Query  string
	Args   []storage.Value
}

// Read implements Source.
func (s *QuerySource) Read(ctx context.Context) ([]Record, error) {
	db := newDB(s.Engine)
	res, err := db.QueryContext(ctx, s.Query, s.Args...)
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(res.Rows))
	for i, row := range res.Rows {
		rec := make(Record, len(res.Columns))
		for j, c := range res.Columns {
			rec[c] = row[j]
		}
		out[i] = rec
	}
	return out, nil
}
