package rules

import (
	"context"
	"strings"
	"testing"

	"github.com/odbis/odbis/internal/storage"
)

func v(m map[string]storage.Value) map[string]storage.Value { return m }

func TestEngineCompileErrors(t *testing.T) {
	noop := func(s *Session, b Bindings) error { return nil }
	cases := []Rule{
		{},
		{Name: "r"},
		{Name: "r", When: []Condition{{Var: "x", Kind: "K"}}},
		{Name: "r", When: []Condition{{Kind: "K"}}, Then: noop},
		{Name: "r", When: []Condition{{Var: "x", Kind: "K", Where: "??bad"}}, Then: noop},
		{Name: "r", When: []Condition{{Var: "x", Kind: "K"}, {Var: "x", Kind: "K"}}, Then: noop},
	}
	for i, r := range cases {
		if _, err := NewEngine(r); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewEngine(
		Rule{Name: "a", When: []Condition{{Var: "x", Kind: "K"}}, Then: noop},
		Rule{Name: "a", When: []Condition{{Var: "x", Kind: "K"}}, Then: noop},
	); err == nil {
		t.Error("duplicate rule name accepted")
	}
}

func TestSimpleFiring(t *testing.T) {
	var seen []string
	eng, err := NewEngine(Rule{
		Name: "big-order",
		When: []Condition{{Var: "o", Kind: "Order", Where: "o.amount > 100"}},
		Then: func(s *Session, b Bindings) error {
			seen = append(seen, b["o"].Get("customer").(string))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession()
	s.Assert("Order", v(map[string]storage.Value{"customer": "acme", "amount": 250}))
	s.Assert("Order", v(map[string]storage.Value{"customer": "tiny", "amount": 10}))
	fired, err := s.FireAll(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 || len(seen) != 1 || seen[0] != "acme" {
		t.Errorf("fired=%d seen=%v", fired, seen)
	}
}

func TestSalienceOrdersFiring(t *testing.T) {
	eng, _ := NewEngine(
		Rule{
			Name: "low", Salience: 1,
			When: []Condition{{Var: "x", Kind: "T"}},
			Then: func(s *Session, b Bindings) error { return nil },
		},
		Rule{
			Name: "high", Salience: 10,
			When: []Condition{{Var: "x", Kind: "T"}},
			Then: func(s *Session, b Bindings) error { return nil },
		},
	)
	s := eng.NewSession()
	s.Assert("T", nil)
	if _, err := s.FireAll(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if len(s.Log) != 2 || s.Log[0] != "high" || s.Log[1] != "low" {
		t.Errorf("log = %v", s.Log)
	}
}

func TestChainingAssert(t *testing.T) {
	// Rule 1 promotes big orders to Alerts; rule 2 counts alerts.
	alerts := 0
	eng, _ := NewEngine(
		Rule{
			Name: "flag",
			When: []Condition{{Var: "o", Kind: "Order", Where: "o.amount >= 1000"}},
			Then: func(s *Session, b Bindings) error {
				s.Assert("Alert", v(map[string]storage.Value{"order": b["o"].Get("id")}))
				return nil
			},
		},
		Rule{
			Name: "notify",
			When: []Condition{{Var: "a", Kind: "Alert"}},
			Then: func(s *Session, b Bindings) error {
				alerts++
				return nil
			},
		},
	)
	s := eng.NewSession()
	s.Assert("Order", v(map[string]storage.Value{"id": 1, "amount": 2000}))
	s.Assert("Order", v(map[string]storage.Value{"id": 2, "amount": 50}))
	fired, err := s.FireAll(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if alerts != 1 || fired != 2 {
		t.Errorf("alerts=%d fired=%d", alerts, fired)
	}
	if len(s.Facts("Alert")) != 1 {
		t.Errorf("working memory alerts = %d", len(s.Facts("Alert")))
	}
}

func TestJoinConditions(t *testing.T) {
	// Match customer + their over-limit order.
	var hits []string
	eng, err := NewEngine(Rule{
		Name: "over-limit",
		When: []Condition{
			{Var: "c", Kind: "Customer"},
			{Var: "o", Kind: "Order", Where: "o.customer = c.name AND o.amount > c.credit"},
		},
		Then: func(s *Session, b Bindings) error {
			hits = append(hits, b["c"].Get("name").(string))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession()
	s.Assert("Customer", v(map[string]storage.Value{"name": "acme", "credit": 100}))
	s.Assert("Customer", v(map[string]storage.Value{"name": "globex", "credit": 10000}))
	s.Assert("Order", v(map[string]storage.Value{"customer": "acme", "amount": 500}))
	s.Assert("Order", v(map[string]storage.Value{"customer": "globex", "amount": 500}))
	if _, err := s.FireAll(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != "acme" {
		t.Errorf("hits = %v", hits)
	}
}

func TestRefractionPreventsRefire(t *testing.T) {
	count := 0
	eng, _ := NewEngine(Rule{
		Name: "once",
		When: []Condition{{Var: "x", Kind: "T"}},
		Then: func(s *Session, b Bindings) error { count++; return nil },
	})
	s := eng.NewSession()
	s.Assert("T", nil)
	s.FireAll(context.Background(), 0)
	s.FireAll(context.Background(), 0) // second call: no new activations
	if count != 1 {
		t.Errorf("fired %d times", count)
	}
}

func TestUpdateReactivates(t *testing.T) {
	count := 0
	eng, _ := NewEngine(Rule{
		Name: "hot",
		When: []Condition{{Var: "x", Kind: "Sensor", Where: "x.temp > 50"}},
		Then: func(s *Session, b Bindings) error { count++; return nil },
	})
	s := eng.NewSession()
	f := s.Assert("Sensor", v(map[string]storage.Value{"temp": 20}))
	s.FireAll(context.Background(), 0)
	if count != 0 {
		t.Fatal("cold sensor fired")
	}
	f.Attrs["temp"] = int64(80)
	if err := s.Update(f); err != nil {
		t.Fatal(err)
	}
	s.FireAll(context.Background(), 0)
	if count != 1 {
		t.Errorf("after update fired %d", count)
	}
	// A second update fires again (new version).
	f.Attrs["temp"] = int64(90)
	s.Update(f)
	s.FireAll(context.Background(), 0)
	if count != 2 {
		t.Errorf("after second update fired %d", count)
	}
}

func TestRetract(t *testing.T) {
	eng, _ := NewEngine(Rule{
		Name: "consume",
		When: []Condition{{Var: "x", Kind: "Job"}},
		Then: func(s *Session, b Bindings) error {
			s.Retract(b["x"])
			return nil
		},
	})
	s := eng.NewSession()
	for i := 0; i < 5; i++ {
		s.Assert("Job", v(map[string]storage.Value{"n": int64(i)}))
	}
	fired, err := s.FireAll(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 5 || len(s.Facts("Job")) != 0 {
		t.Errorf("fired=%d remaining=%d", fired, len(s.Facts("Job")))
	}
}

func TestLoopGuard(t *testing.T) {
	// A rule that keeps modifying its own fact loops forever; the engine
	// must stop at the cycle bound.
	eng, _ := NewEngine(Rule{
		Name: "loop",
		When: []Condition{{Var: "x", Kind: "T"}},
		Then: func(s *Session, b Bindings) error {
			return s.Update(b["x"])
		},
	})
	s := eng.NewSession()
	s.Assert("T", nil)
	fired, err := s.FireAll(context.Background(), 50)
	if err == nil {
		t.Fatalf("loop not detected after %d firings", fired)
	}
	if !strings.Contains(err.Error(), "fire limit") {
		t.Errorf("error = %v", err)
	}
}

func TestActionErrorPropagates(t *testing.T) {
	eng, _ := NewEngine(Rule{
		Name: "bad",
		When: []Condition{{Var: "x", Kind: "T"}},
		Then: func(s *Session, b Bindings) error {
			return storage.ErrNoTable
		},
	})
	s := eng.NewSession()
	s.Assert("T", nil)
	if _, err := s.FireAll(context.Background(), 0); err == nil {
		t.Error("action error swallowed")
	}
}

func TestFactString(t *testing.T) {
	f := NewFact("X", map[string]storage.Value{"b": 2, "a": "one"})
	if got := f.String(); got != "X{a=one b=2}" {
		t.Errorf("String = %q", got)
	}
}

func TestNoSelfJoinOnSameFact(t *testing.T) {
	pairs := 0
	eng, _ := NewEngine(Rule{
		Name: "pair",
		When: []Condition{
			{Var: "a", Kind: "P"},
			{Var: "b", Kind: "P"},
		},
		Then: func(s *Session, b Bindings) error { pairs++; return nil },
	})
	s := eng.NewSession()
	s.Assert("P", v(map[string]storage.Value{"n": 1}))
	s.Assert("P", v(map[string]storage.Value{"n": 2}))
	s.FireAll(context.Background(), 0)
	// Ordered pairs of distinct facts: 2.
	if pairs != 2 {
		t.Errorf("pairs = %d", pairs)
	}
}
