// Package rules is a forward-chaining business-rules engine — the
// stand-in for Drools in the paper's technical architecture (Fig. 5,
// §3.3): "a SaaS platform is shared by several customers that have
// different business processes, the definition of a business rules
// engine is essential for the orchestration of services."
//
// A Rule matches tuples of facts in working memory via SQL-expression
// conditions and runs an action when activated. Activations queue on an
// agenda ordered by salience; firing may assert, modify or retract facts,
// re-activating other rules, until the agenda empties (with refraction to
// prevent re-firing on unchanged facts and a cycle bound as a loop
// backstop).
package rules

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

// Fact is one unit of working memory: a kind plus named attributes.
type Fact struct {
	id      int
	version int
	Kind    string
	Attrs   map[string]storage.Value
}

// NewFact builds a fact.
func NewFact(kind string, attrs map[string]storage.Value) *Fact {
	a := make(map[string]storage.Value, len(attrs))
	for k, v := range attrs {
		a[k] = storage.Normalize(v)
	}
	return &Fact{Kind: kind, Attrs: a}
}

// Get reads one attribute.
func (f *Fact) Get(name string) storage.Value { return f.Attrs[name] }

// String renders the fact compactly.
func (f *Fact) String() string {
	keys := make([]string, 0, len(f.Attrs))
	for k := range f.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, storage.FormatValue(f.Attrs[k]))
	}
	return fmt.Sprintf("%s{%s}", f.Kind, strings.Join(parts, " "))
}

// Condition is one pattern of a rule: bind a fact of Kind to Var when the
// optional Where expression holds. Where may reference the current
// binding and earlier bindings as "var.attr".
type Condition struct {
	Var   string
	Kind  string
	Where string
}

// Rule is one production.
type Rule struct {
	Name string
	// Salience orders the agenda: higher fires first (default 0).
	Salience int
	// When lists the conditions; all must match (conjunction).
	When []Condition
	// Then runs when the rule fires. The action may call Session methods
	// to assert, modify or retract facts.
	Then func(s *Session, b Bindings) error
}

// Bindings maps condition variables to the matched facts.
type Bindings map[string]*Fact

// Engine is an immutable rule set; sessions execute against it.
type Engine struct {
	rules   []compiledRule
	ruleIdx map[string]int
}

type compiledRule struct {
	rule  Rule
	conds []compiledCond
}

type compiledCond struct {
	cond Condition
	expr *sql.CompiledExpr // nil when Where is empty
}

// NewEngine compiles a rule set. Conditions parse eagerly so malformed
// expressions fail at definition time.
func NewEngine(ruleSet ...Rule) (*Engine, error) {
	e := &Engine{ruleIdx: make(map[string]int)}
	for _, r := range ruleSet {
		if err := e.add(r); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *Engine) add(r Rule) error {
	if r.Name == "" {
		return fmt.Errorf("rules: rule needs a name")
	}
	if _, dup := e.ruleIdx[r.Name]; dup {
		return fmt.Errorf("rules: duplicate rule %q", r.Name)
	}
	if len(r.When) == 0 {
		return fmt.Errorf("rules: rule %q has no conditions", r.Name)
	}
	if r.Then == nil {
		return fmt.Errorf("rules: rule %q has no action", r.Name)
	}
	cr := compiledRule{rule: r}
	vars := map[string]bool{}
	for _, c := range r.When {
		if c.Var == "" || c.Kind == "" {
			return fmt.Errorf("rules: rule %q: condition needs Var and Kind", r.Name)
		}
		if vars[c.Var] {
			return fmt.Errorf("rules: rule %q: duplicate variable %q", r.Name, c.Var)
		}
		vars[c.Var] = true
		cc := compiledCond{cond: c}
		if c.Where != "" {
			expr, err := sql.CompileExpr(c.Where)
			if err != nil {
				return fmt.Errorf("rules: rule %q: %w", r.Name, err)
			}
			cc.expr = expr
		}
		cr.conds = append(cr.conds, cc)
	}
	e.ruleIdx[r.Name] = len(e.rules)
	e.rules = append(e.rules, cr)
	return nil
}

// Rules lists rule names in definition order.
func (e *Engine) Rules() []string {
	out := make([]string, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.rule.Name
	}
	return out
}

// Session is a working memory bound to an engine. Sessions are not safe
// for concurrent use.
type Session struct {
	engine *Engine
	facts  map[int]*Fact
	nextID int
	// fired tracks refraction: an activation key fires at most once per
	// fact-version combination.
	fired map[string]bool
	// Log records fired rule names in order (diagnostics, tests).
	Log []string
}

// NewSession opens an empty working memory.
func (e *Engine) NewSession() *Session {
	return &Session{
		engine: e,
		facts:  make(map[int]*Fact),
		fired:  make(map[string]bool),
	}
}

// Insert asserts a fact into working memory and returns it.
func (s *Session) Insert(f *Fact) *Fact {
	if f.id != 0 {
		// Re-inserting an existing fact bumps its version (modify).
		if _, ok := s.facts[f.id]; ok {
			f.version++
			return f
		}
	}
	s.nextID++
	f.id = s.nextID
	f.version = 1
	s.facts[f.id] = f
	return f
}

// Assert builds and inserts a fact in one call.
func (s *Session) Assert(kind string, attrs map[string]storage.Value) *Fact {
	return s.Insert(NewFact(kind, attrs))
}

// Update marks a fact as modified (after changing Attrs) so rules can
// re-activate on it.
func (s *Session) Update(f *Fact) error {
	if _, ok := s.facts[f.id]; !ok {
		return fmt.Errorf("rules: fact not in working memory")
	}
	f.version++
	return nil
}

// Retract removes a fact from working memory.
func (s *Session) Retract(f *Fact) {
	delete(s.facts, f.id)
}

// Facts returns working-memory facts of a kind ("" for all), in insertion
// order.
func (s *Session) Facts(kind string) []*Fact {
	ids := make([]int, 0, len(s.facts))
	for id := range s.facts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []*Fact
	for _, id := range ids {
		f := s.facts[id]
		if kind == "" || strings.EqualFold(f.Kind, kind) {
			out = append(out, f)
		}
	}
	return out
}

// activation is one matched rule instance on the agenda.
type activation struct {
	ruleIdx int
	facts   []*Fact
	key     string
}

// FireAll runs the match-fire loop until the agenda is empty or maxCycles
// firings have happened (0 means the default bound of 10000). It returns
// the number of rules fired. ctx bounds the loop: a cancelled or expired
// context stops matching at the next cycle with the ctx error.
func (s *Session) FireAll(ctx context.Context, maxCycles int) (int, error) {
	if maxCycles <= 0 {
		maxCycles = 10000
	}
	fired := 0
	for fired < maxCycles {
		if err := ctx.Err(); err != nil {
			return fired, err
		}
		agenda, err := s.matchAll()
		if err != nil {
			return fired, err
		}
		// Pick the highest-priority unfired activation.
		var next *activation
		for i := range agenda {
			if !s.fired[agenda[i].key] {
				next = &agenda[i]
				break
			}
		}
		if next == nil {
			return fired, nil
		}
		s.fired[next.key] = true
		rule := s.engine.rules[next.ruleIdx].rule
		b := make(Bindings, len(rule.When))
		for i, c := range rule.When {
			b[c.Var] = next.facts[i]
		}
		s.Log = append(s.Log, rule.Name)
		if err := rule.Then(s, b); err != nil {
			return fired, fmt.Errorf("rules: rule %q: %w", rule.Name, err)
		}
		fired++
	}
	return fired, fmt.Errorf("rules: fire limit %d reached (possible rule loop)", maxCycles)
}

// matchAll computes the full agenda, ordered by salience (desc), rule
// definition order, then fact recency.
func (s *Session) matchAll() ([]activation, error) {
	var agenda []activation
	for ri := range s.engine.rules {
		cr := &s.engine.rules[ri]
		matches, err := s.matchRule(cr)
		if err != nil {
			return nil, err
		}
		agenda = append(agenda, matches...)
	}
	sort.SliceStable(agenda, func(i, j int) bool {
		ri, rj := s.engine.rules[agenda[i].ruleIdx].rule, s.engine.rules[agenda[j].ruleIdx].rule
		if ri.Salience != rj.Salience {
			return ri.Salience > rj.Salience
		}
		return agenda[i].ruleIdx < agenda[j].ruleIdx
	})
	return agenda, nil
}

// matchRule enumerates fact tuples satisfying every condition.
func (s *Session) matchRule(cr *compiledRule) ([]activation, error) {
	var out []activation
	bound := make([]*Fact, len(cr.conds))
	var rec func(ci int) error
	rec = func(ci int) error {
		if ci == len(cr.conds) {
			key := activationKey(cr.rule.Name, bound)
			out = append(out, activation{
				ruleIdx: s.engine.ruleIdx[cr.rule.Name],
				facts:   append([]*Fact(nil), bound...),
				key:     key,
			})
			return nil
		}
		cc := cr.conds[ci]
		for _, f := range s.Facts(cc.cond.Kind) {
			// A fact binds at most one variable of a rule instance.
			dup := false
			for _, prev := range bound[:ci] {
				if prev == f {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			bound[ci] = f
			if cc.expr != nil {
				scopes := make(map[string]map[string]storage.Value, ci+1)
				for k := 0; k <= ci; k++ {
					scopes[cr.conds[k].cond.Var] = bound[k].Attrs
				}
				ok, err := cc.expr.EvalScopedBool(scopes)
				if err != nil {
					return fmt.Errorf("rules: rule %q condition %q: %w", cr.rule.Name, cc.cond.Where, err)
				}
				if !ok {
					continue
				}
			}
			if err := rec(ci + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

func activationKey(rule string, facts []*Fact) string {
	var sb strings.Builder
	sb.WriteString(rule)
	for _, f := range facts {
		fmt.Fprintf(&sb, "|%d@%d", f.id, f.version)
	}
	return sb.String()
}
