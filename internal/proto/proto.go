// Package proto defines the ODBIS binary wire protocol — the
// persistent-connection traffic path of the end-user access layer. The
// HTTP/JSON API is one-shot: every request pays TCP setup, header
// parsing, JSON encode/decode and re-authentication. The paper's
// on-demand economics ("heavy multi-tenant traffic on one platform
// instance") want the opposite shape: a connection that authenticates
// once, then streams many cheap requests. This package supplies the
// framing for that connection; internal/netsrv serves it and client/
// consumes it.
//
// # Frame grammar
//
// Every frame is a 5-byte header followed by a payload:
//
//	frame   := type(u8) length(u32 BE) payload(length bytes)
//
// Payloads are type-specific (see the Append*/Parse* pairs). Integers
// are big-endian; strings are length-prefixed (u16 for short protocol
// strings, u32 for SQL text); cell values are a tag byte plus a fixed
// or length-prefixed body (see AppendValue). A reader enforces
// MaxFrame before allocating, so a corrupt or hostile length prefix
// cannot balloon memory.
//
// # Handshake
//
// The client opens with HELLO (magic "ODBP", protocol version, bearer
// token — the same token POST /api/login mints); the server answers
// WELCOME (version, tenant id) or ERROR and closes. After the
// handshake the session is authenticated for its lifetime: per-request
// auth, the largest constant cost of the HTTP path, is gone.
//
// # Requests and streaming results
//
// QUERY carries a client-chosen request id, SQL text and bound args.
// The server streams RESULT_HEADER (column names), zero or more
// RESULT_CHUNK frames (a bounded batch of rows each, so a million-row
// result never materializes as one frame), and RESULT_DONE (affected
// count + access-path plan). Errors end a request with ERROR carrying
// the HTTP-equivalent status code. PING/PONG keep idle connections
// verifiably alive; RETRY is the protocol twin of 503 + Retry-After
// (admission control says "back off N ms"); GOAWAY is a graceful "this
// connection is closing, open a new one elsewhere".
//
// Encode is allocation-free over a caller-reused buffer (append
// convention); decode is allocation-free through RawValue views into
// the frame buffer, materializing storage.Values only when the caller
// asks.
package proto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/odbis/odbis/internal/fault"
	"github.com/odbis/odbis/internal/storage"
)

// Version is the protocol version this package speaks. A server
// rejects HELLO frames carrying any other version (there is exactly
// one deployed version; the field exists so there can be two).
const Version = 1

// Magic opens every HELLO payload. Four bytes chosen to be
// implausible as the start of an HTTP request or TLS record, so a
// client pointed at the wrong port fails fast with a clear error.
const Magic = "ODBP"

// DefaultMaxFrame bounds a frame payload (16 MiB). Result chunks are
// far smaller (see netsrv); the bound exists so a corrupt length
// prefix cannot allocate unbounded memory.
const DefaultMaxFrame = 16 << 20

// headerSize is the fixed frame header: type(1) + length(4).
const headerSize = 5

// FrameType discriminates frames.
type FrameType uint8

// Frame types of the wire protocol.
const (
	FrameInvalid FrameType = iota
	// FrameHello is the client's opening frame: magic, version, token.
	FrameHello
	// FrameWelcome accepts a handshake: version, tenant id.
	FrameWelcome
	// FrameQuery is one SQL request: id, flags, SQL text, args.
	FrameQuery
	// FrameResultHeader starts a result stream: id, column names.
	FrameResultHeader
	// FrameResultChunk carries a batch of rows: id, row count, rows.
	FrameResultChunk
	// FrameResultDone ends a result stream: id, affected, plan.
	FrameResultDone
	// FrameError reports a failure: id (0 = connection-level), code
	// (HTTP-equivalent status), message.
	FrameError
	// FramePing requests a liveness echo; payload is opaque.
	FramePing
	// FramePong answers a ping, echoing its payload.
	FramePong
	// FrameRetry is the protocol twin of 503 + Retry-After: id, backoff
	// in milliseconds. The request was shed before execution and may be
	// retried after the backoff.
	FrameRetry
	// FrameGoAway announces a graceful close: reason. The peer should
	// stop sending and reconnect elsewhere.
	FrameGoAway
)

// String names a frame type for errors and logs.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameWelcome:
		return "WELCOME"
	case FrameQuery:
		return "QUERY"
	case FrameResultHeader:
		return "RESULT_HEADER"
	case FrameResultChunk:
		return "RESULT_CHUNK"
	case FrameResultDone:
		return "RESULT_DONE"
	case FrameError:
		return "ERROR"
	case FramePing:
		return "PING"
	case FramePong:
		return "PONG"
	case FrameRetry:
		return "RETRY"
	case FrameGoAway:
		return "GOAWAY"
	default:
		return fmt.Sprintf("FRAME(%d)", uint8(t))
	}
}

// Protocol errors.
var (
	// ErrShortFrame means a payload ended before its declared content —
	// a truncated or corrupt frame. Decoders return it instead of
	// over-reading.
	ErrShortFrame = errors.New("proto: truncated frame payload")
	// ErrFrameTooLarge means a frame declared a payload beyond the
	// reader's maximum.
	ErrFrameTooLarge = errors.New("proto: frame exceeds maximum size")
	// ErrBadMagic means a HELLO did not start with Magic — the peer is
	// not speaking this protocol.
	ErrBadMagic = errors.New("proto: bad handshake magic")
	// ErrBadVersion means the peer speaks an unsupported protocol
	// version.
	ErrBadVersion = errors.New("proto: unsupported protocol version")
	// ErrBadValue means a value tag byte is unknown.
	ErrBadValue = errors.New("proto: unknown value tag")
)

// --- frame I/O ---

// Writer frames payloads onto an underlying connection. It owns a
// buffered writer; call Flush after the last frame of a response.
// Writers are not safe for concurrent use — one goroutine owns each
// connection's write side.
type Writer struct {
	w   *bufio.Writer
	hdr [headerSize]byte
	// frames and bytes count traffic for the owner's metrics.
	frames uint64
	bytes  uint64
}

// NewWriter wraps w for frame output.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteFrame appends one frame to the output buffer.
func (w *Writer) WriteFrame(t FrameType, payload []byte) error {
	w.hdr[0] = byte(t)
	binary.BigEndian.PutUint32(w.hdr[1:], uint32(len(payload)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.frames++
	w.bytes += uint64(headerSize + len(payload))
	return nil
}

// Flush pushes buffered frames to the connection.
func (w *Writer) Flush() error { return w.w.Flush() }

// Frames reports how many frames have been written.
func (w *Writer) Frames() uint64 { return w.frames }

// Bytes reports how many bytes have been written (including headers).
func (w *Writer) Bytes() uint64 { return w.bytes }

// Reader reads frames from an underlying connection into a reused
// buffer. The payload returned by ReadFrame is valid only until the
// next call. Readers are not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
	max int
	// frames and bytes count traffic for the owner's metrics.
	frames uint64
	bytes  uint64
}

// NewReader wraps r for frame input with the DefaultMaxFrame bound.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), max: DefaultMaxFrame}
}

// SetMaxFrame overrides the payload size bound.
func (r *Reader) SetMaxFrame(n int) {
	if n > 0 {
		r.max = n
	}
}

// ReadFrame reads the next frame. The returned payload aliases the
// reader's internal buffer and is valid until the next ReadFrame. The
// proto.decode fault point fires here: arming it simulates a peer
// whose stream turned to garbage mid-connection.
func (r *Reader) ReadFrame() (FrameType, []byte, error) {
	if err := fault.Point(fault.ProtoDecode); err != nil {
		return FrameInvalid, nil, err
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return FrameInvalid, nil, err
	}
	t := FrameType(hdr[0])
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > r.max {
		return FrameInvalid, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, r.max)
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return FrameInvalid, nil, err
	}
	r.frames++
	r.bytes += uint64(headerSize + n)
	return t, payload, nil
}

// Frames reports how many frames have been read.
func (r *Reader) Frames() uint64 { return r.frames }

// Bytes reports how many bytes have been read (including headers).
func (r *Reader) Bytes() uint64 { return r.bytes }

// --- primitive append/read helpers ---

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v>>32)), uint32(v))
}

// appendStr16 appends a u16-length-prefixed string (protocol strings:
// tokens, column names, reasons). Longer input is an encoding bug; the
// caller validates sizes at the API boundary.
func appendStr16(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// appendStr32 appends a u32-length-prefixed string (SQL text).
func appendStr32(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// cursor walks a payload without ever indexing past its end: every
// read checks remaining length first and fails with ErrShortFrame.
// This is the invariant FuzzDecodeFrame hammers on.
type cursor struct {
	p   []byte
	off int
}

func (c *cursor) remain() int { return len(c.p) - c.off }

func (c *cursor) u8() (byte, error) {
	if c.remain() < 1 {
		return 0, ErrShortFrame
	}
	v := c.p[c.off]
	c.off++
	return v, nil
}

func (c *cursor) u16() (uint16, error) {
	if c.remain() < 2 {
		return 0, ErrShortFrame
	}
	v := binary.BigEndian.Uint16(c.p[c.off:])
	c.off += 2
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if c.remain() < 4 {
		return 0, ErrShortFrame
	}
	v := binary.BigEndian.Uint32(c.p[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.remain() < 8 {
		return 0, ErrShortFrame
	}
	v := binary.BigEndian.Uint64(c.p[c.off:])
	c.off += 8
	return v, nil
}

// bytes returns an n-byte view into the payload (no copy).
func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.remain() < n {
		return nil, ErrShortFrame
	}
	v := c.p[c.off : c.off+n]
	c.off += n
	return v, nil
}

func (c *cursor) str16() (string, error) {
	n, err := c.u16()
	if err != nil {
		return "", err
	}
	raw, err := c.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func (c *cursor) str32() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	raw, err := c.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// --- value codec ---

// Value tags. The set mirrors storage's dynamic value types exactly.
const (
	tagNull   = 0
	tagInt    = 1
	tagFloat  = 2
	tagString = 3
	tagBool   = 4
	tagTime   = 5 // int64 microseconds since Unix epoch, UTC
	tagBytes  = 6
)

// AppendValue appends one cell value in wire form. Canonical dynamic
// types encode directly (no re-boxing — this path must stay
// allocation-free); anything else goes through storage.Normalize once,
// and types the engine would reject fail cleanly.
func AppendValue(b []byte, v storage.Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNull), nil
	case int64:
		return appendU64(append(b, tagInt), uint64(x)), nil
	case float64:
		return appendU64(append(b, tagFloat), math.Float64bits(x)), nil
	case string:
		return appendStr32(append(b, tagString), x), nil
	case bool:
		n := byte(0)
		if x {
			n = 1
		}
		return append(b, tagBool, n), nil
	case time.Time:
		// UnixMicro is location-independent; decode re-stamps UTC.
		return appendU64(append(b, tagTime), uint64(x.UnixMicro())), nil
	case []byte:
		b = appendU32(append(b, tagBytes), uint32(len(x)))
		return append(b, x...), nil
	default:
		switch y := storage.Normalize(v).(type) {
		case int64:
			return appendU64(append(b, tagInt), uint64(y)), nil
		case float64:
			return appendU64(append(b, tagFloat), math.Float64bits(y)), nil
		case string:
			return appendStr32(append(b, tagString), y), nil
		}
		return nil, fmt.Errorf("proto: cannot encode value of type %T", v)
	}
}

// RawValue is a decoded cell value that still aliases the frame
// buffer: Bytes points into the payload for string/bytes kinds, so a
// RawValue is only valid until the next ReadFrame. Value() pays the
// materialization cost (string copy) only when asked — the
// zero-allocation decode contract lives here.
type RawValue struct {
	// Kind is the wire tag (tagNull..tagBytes).
	Kind uint8
	// Int holds int64, bool (0/1) and time (UnixMicro) kinds.
	Int int64
	// Float holds the float kind.
	Float float64
	// Bytes views string/bytes kinds inside the frame buffer.
	Bytes []byte
}

// IsNull reports whether the value is SQL NULL.
func (rv RawValue) IsNull() bool { return rv.Kind == tagNull }

// Value materializes the canonical storage.Value (allocating for
// string/bytes kinds).
func (rv RawValue) Value() storage.Value {
	switch rv.Kind {
	case tagInt:
		return rv.Int
	case tagFloat:
		return rv.Float
	case tagString:
		return string(rv.Bytes)
	case tagBool:
		return rv.Int != 0
	case tagTime:
		return time.UnixMicro(rv.Int).UTC()
	case tagBytes:
		out := make([]byte, len(rv.Bytes))
		copy(out, rv.Bytes)
		return out
	default:
		return nil
	}
}

// readValue decodes one value at the cursor into rv without
// allocating.
func readValue(c *cursor, rv *RawValue) error {
	tag, err := c.u8()
	if err != nil {
		return err
	}
	rv.Kind = tag
	rv.Bytes = nil
	switch tag {
	case tagNull:
		return nil
	case tagInt, tagTime:
		u, err := c.u64()
		if err != nil {
			return err
		}
		rv.Int = int64(u)
		return nil
	case tagFloat:
		u, err := c.u64()
		if err != nil {
			return err
		}
		rv.Float = math.Float64frombits(u)
		return nil
	case tagBool:
		b, err := c.u8()
		if err != nil {
			return err
		}
		rv.Int = int64(b)
		return nil
	case tagString, tagBytes:
		n, err := c.u32()
		if err != nil {
			return err
		}
		raw, err := c.bytes(int(n))
		if err != nil {
			return err
		}
		rv.Bytes = raw
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrBadValue, tag)
	}
}

// --- HELLO / WELCOME ---

// AppendHello builds a HELLO payload: magic, version, bearer token.
func AppendHello(b []byte, token string) []byte {
	b = append(b, Magic...)
	b = append(b, Version)
	return appendStr16(b, token)
}

// ParseHello decodes a HELLO payload, validating magic and version.
func ParseHello(p []byte) (token string, err error) {
	c := cursor{p: p}
	magic, err := c.bytes(len(Magic))
	if err != nil {
		return "", err
	}
	if string(magic) != Magic {
		return "", ErrBadMagic
	}
	v, err := c.u8()
	if err != nil {
		return "", err
	}
	if v != Version {
		return "", fmt.Errorf("%w: %d (want %d)", ErrBadVersion, v, Version)
	}
	return c.str16()
}

// AppendWelcome builds a WELCOME payload: version, tenant id.
func AppendWelcome(b []byte, tenant string) []byte {
	b = append(b, Version)
	return appendStr16(b, tenant)
}

// ParseWelcome decodes a WELCOME payload.
func ParseWelcome(p []byte) (tenant string, err error) {
	c := cursor{p: p}
	v, err := c.u8()
	if err != nil {
		return "", err
	}
	if v != Version {
		return "", fmt.Errorf("%w: %d (want %d)", ErrBadVersion, v, Version)
	}
	return c.str16()
}

// --- QUERY ---

// AppendQuery builds a QUERY payload: request id, SQL text, bound
// args. The append convention keeps steady-state encoding
// allocation-free: pass last call's buffer back in.
func AppendQuery(b []byte, id uint32, sql string, args []storage.Value) ([]byte, error) {
	b = appendU32(b, id)
	b = appendStr32(b, sql)
	b = appendU16(b, uint16(len(args)))
	var err error
	for _, a := range args {
		if b, err = AppendValue(b, a); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// ParseQuery decodes a QUERY payload. The SQL string and arg values
// are materialized (the executor keeps them past the frame buffer's
// lifetime).
func ParseQuery(p []byte) (id uint32, sql string, args []storage.Value, err error) {
	c := cursor{p: p}
	if id, err = c.u32(); err != nil {
		return 0, "", nil, err
	}
	if sql, err = c.str32(); err != nil {
		return 0, "", nil, err
	}
	n, err := c.u16()
	if err != nil {
		return 0, "", nil, err
	}
	if n > 0 {
		args = make([]storage.Value, n)
		var rv RawValue
		for i := range args {
			if err = readValue(&c, &rv); err != nil {
				return 0, "", nil, err
			}
			args[i] = rv.Value()
		}
	}
	return id, sql, args, nil
}

// --- RESULT_HEADER ---

// AppendResultHeader builds a RESULT_HEADER payload: request id plus
// column names. A statement with no result columns (DDL/DML) sends an
// empty column list.
func AppendResultHeader(b []byte, id uint32, cols []string) []byte {
	b = appendU32(b, id)
	b = appendU16(b, uint16(len(cols)))
	for _, col := range cols {
		b = appendStr16(b, col)
	}
	return b
}

// ParseResultHeader decodes a RESULT_HEADER payload.
func ParseResultHeader(p []byte) (id uint32, cols []string, err error) {
	c := cursor{p: p}
	if id, err = c.u32(); err != nil {
		return 0, nil, err
	}
	n, err := c.u16()
	if err != nil {
		return 0, nil, err
	}
	if n > 0 {
		cols = make([]string, n)
		for i := range cols {
			if cols[i], err = c.str16(); err != nil {
				return 0, nil, err
			}
		}
	}
	return id, cols, nil
}

// --- RESULT_CHUNK ---

// AppendRows builds a RESULT_CHUNK payload: request id, row count,
// then each row as a u16 column count plus values. Encoding appends
// into the caller's buffer — the hot path reuses one buffer per
// session.
func AppendRows(b []byte, id uint32, rows []storage.Row) ([]byte, error) {
	b = appendU32(b, id)
	b = appendU16(b, uint16(len(rows)))
	var err error
	for _, row := range rows {
		b = appendU16(b, uint16(len(row)))
		for _, v := range row {
			if b, err = AppendValue(b, v); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// RowReader iterates a RESULT_CHUNK payload without allocating: Scan
// fills a caller-reused RawValue slice whose string views alias the
// frame buffer.
type RowReader struct {
	c    cursor
	id   uint32
	left int
}

// NewRowReader opens a RESULT_CHUNK payload.
func NewRowReader(p []byte) (*RowReader, error) {
	rr := &RowReader{c: cursor{p: p}}
	id, err := rr.c.u32()
	if err != nil {
		return nil, err
	}
	n, err := rr.c.u16()
	if err != nil {
		return nil, err
	}
	rr.id, rr.left = id, int(n)
	return rr, nil
}

// ID returns the request id the chunk belongs to.
func (rr *RowReader) ID() uint32 { return rr.id }

// Remaining reports how many rows are left to scan.
func (rr *RowReader) Remaining() int { return rr.left }

// Scan decodes the next row into dst (reusing its backing array when
// large enough) and returns the filled prefix. io.EOF signals the end
// of the chunk; dst is returned unchanged then, so `buf, err =
// rr.Scan(buf)` loops keep their buffer across chunks.
func (rr *RowReader) Scan(dst []RawValue) ([]RawValue, error) {
	if rr.left == 0 {
		return dst, io.EOF
	}
	n, err := rr.c.u16()
	if err != nil {
		return nil, err
	}
	if cap(dst) < int(n) {
		dst = make([]RawValue, n)
	}
	dst = dst[:n]
	for i := range dst {
		if err := readValue(&rr.c, &dst[i]); err != nil {
			return nil, err
		}
	}
	rr.left--
	return dst, nil
}

// ParseRows materializes every row of a RESULT_CHUNK (test and
// convenience path; the pooled client scans).
func ParseRows(p []byte) (id uint32, rows []storage.Row, err error) {
	rr, err := NewRowReader(p)
	if err != nil {
		return 0, nil, err
	}
	var raw []RawValue
	for {
		raw, err = rr.Scan(raw)
		if err == io.EOF {
			return rr.ID(), rows, nil
		}
		if err != nil {
			return 0, nil, err
		}
		row := make(storage.Row, len(raw))
		for i, rv := range raw {
			row[i] = rv.Value()
		}
		rows = append(rows, row)
	}
}

// --- RESULT_DONE ---

// AppendDone builds a RESULT_DONE payload: request id, affected row
// count, total rows streamed, access-path plan (the sql.Result.Plan
// string, kept for parity with the HTTP result shape).
func AppendDone(b []byte, id uint32, affected, rows uint32, plan string) []byte {
	b = appendU32(b, id)
	b = appendU32(b, affected)
	b = appendU32(b, rows)
	return appendStr16(b, plan)
}

// ParseDone decodes a RESULT_DONE payload.
func ParseDone(p []byte) (id, affected, rows uint32, plan string, err error) {
	c := cursor{p: p}
	if id, err = c.u32(); err != nil {
		return 0, 0, 0, "", err
	}
	if affected, err = c.u32(); err != nil {
		return 0, 0, 0, "", err
	}
	if rows, err = c.u32(); err != nil {
		return 0, 0, 0, "", err
	}
	plan, err = c.str16()
	return id, affected, rows, plan, err
}

// --- ERROR / RETRY / GOAWAY ---

// AppendError builds an ERROR payload: request id (0 for
// connection-level failures like a rejected handshake), an
// HTTP-equivalent status code, and a message.
func AppendError(b []byte, id uint32, code uint16, msg string) []byte {
	b = appendU32(b, id)
	b = appendU16(b, code)
	return appendStr16(b, msg)
}

// ParseError decodes an ERROR payload.
func ParseError(p []byte) (id uint32, code uint16, msg string, err error) {
	c := cursor{p: p}
	if id, err = c.u32(); err != nil {
		return 0, 0, "", err
	}
	if code, err = c.u16(); err != nil {
		return 0, 0, "", err
	}
	msg, err = c.str16()
	return id, code, msg, err
}

// AppendRetry builds a RETRY payload: request id plus backoff in
// milliseconds — the admission-control rejection, carrying the same
// hint 503 + Retry-After carries on the HTTP path.
func AppendRetry(b []byte, id uint32, backoff time.Duration) []byte {
	b = appendU32(b, id)
	ms := backoff.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	return appendU32(b, uint32(ms))
}

// ParseRetry decodes a RETRY payload.
func ParseRetry(p []byte) (id uint32, backoff time.Duration, err error) {
	c := cursor{p: p}
	if id, err = c.u32(); err != nil {
		return 0, 0, err
	}
	ms, err := c.u32()
	if err != nil {
		return 0, 0, err
	}
	return id, time.Duration(ms) * time.Millisecond, nil
}

// AppendGoAway builds a GOAWAY payload: a human-readable reason.
func AppendGoAway(b []byte, reason string) []byte {
	return appendStr16(b, reason)
}

// ParseGoAway decodes a GOAWAY payload.
func ParseGoAway(p []byte) (reason string, err error) {
	c := cursor{p: p}
	return c.str16()
}
