package proto

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/storage"
)

// roundTrip frames a payload through a Writer and reads it back.
func roundTrip(t *testing.T, ft FrameType, payload []byte) (FrameType, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(ft, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r := NewReader(&buf)
	gt, gp, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return gt, gp
}

func TestFrameRoundTrip(t *testing.T) {
	ft, p := roundTrip(t, FramePing, []byte("hello"))
	if ft != FramePing || string(p) != "hello" {
		t.Fatalf("got %v %q, want PING hello", ft, p)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	ft, p := roundTrip(t, FramePong, nil)
	if ft != FramePong || len(p) != 0 {
		t.Fatalf("got %v %q, want PONG empty", ft, p)
	}
}

func TestReaderCounters(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.WriteFrame(FramePing, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != 3 || w.Bytes() != 3*(headerSize+1) {
		t.Fatalf("writer counters frames=%d bytes=%d", w.Frames(), w.Bytes())
	}
	r := NewReader(&buf)
	for i := 0; i < 3; i++ {
		if _, _, err := r.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Frames() != 3 || r.Bytes() != 3*(headerSize+1) {
		t.Fatalf("reader counters frames=%d bytes=%d", r.Frames(), r.Bytes())
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(FramePing, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.SetMaxFrame(512)
	if _, _, err := r.ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(FramePing, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, _, err := r.ReadFrame(); err == nil {
			t.Fatalf("cut=%d: want error on truncated stream", cut)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	p := AppendHello(nil, "tok-123")
	tok, err := ParseHello(p)
	if err != nil {
		t.Fatalf("ParseHello: %v", err)
	}
	if tok != "tok-123" {
		t.Fatalf("token = %q", tok)
	}
}

func TestHelloBadMagic(t *testing.T) {
	p := AppendHello(nil, "tok")
	p[0] = 'X'
	if _, err := ParseHello(p); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestHelloBadVersion(t *testing.T) {
	p := AppendHello(nil, "tok")
	p[len(Magic)] = 99
	if _, err := ParseHello(p); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	p := AppendWelcome(nil, "acme")
	tenant, err := ParseWelcome(p)
	if err != nil || tenant != "acme" {
		t.Fatalf("got %q, %v", tenant, err)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	when := time.Date(2026, 8, 7, 12, 0, 0, 123456000, time.UTC)
	args := []storage.Value{int64(42), 3.5, "ward-a", true, nil, when, []byte{0xde, 0xad}}
	p, err := AppendQuery(nil, 7, "SELECT * FROM t WHERE a = ?", args)
	if err != nil {
		t.Fatalf("AppendQuery: %v", err)
	}
	id, sqlText, gotArgs, err := ParseQuery(p)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if id != 7 || sqlText != "SELECT * FROM t WHERE a = ?" {
		t.Fatalf("id=%d sql=%q", id, sqlText)
	}
	if !reflect.DeepEqual(gotArgs, args) {
		t.Fatalf("args = %#v, want %#v", gotArgs, args)
	}
}

func TestQueryNoArgs(t *testing.T) {
	p, err := AppendQuery(nil, 1, "SELECT 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, args, err := ParseQuery(p)
	if err != nil || args != nil {
		t.Fatalf("args=%v err=%v", args, err)
	}
}

func TestQueryRejectsUnknownType(t *testing.T) {
	if _, err := AppendQuery(nil, 1, "SELECT ?", []storage.Value{struct{}{}}); err == nil {
		t.Fatal("want error encoding unsupported type")
	}
}

func TestResultHeaderRoundTrip(t *testing.T) {
	p := AppendResultHeader(nil, 9, []string{"ward", "patients"})
	id, cols, err := ParseResultHeader(p)
	if err != nil || id != 9 || !reflect.DeepEqual(cols, []string{"ward", "patients"}) {
		t.Fatalf("id=%d cols=%v err=%v", id, cols, err)
	}
}

func TestResultHeaderNoCols(t *testing.T) {
	p := AppendResultHeader(nil, 2, nil)
	id, cols, err := ParseResultHeader(p)
	if err != nil || id != 2 || cols != nil {
		t.Fatalf("id=%d cols=%v err=%v", id, cols, err)
	}
}

func TestRowsRoundTrip(t *testing.T) {
	rows := []storage.Row{
		{int64(1), "a", 1.5},
		{int64(2), "b", nil},
	}
	p, err := AppendRows(nil, 4, rows)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := ParseRows(p)
	if err != nil || id != 4 {
		t.Fatalf("id=%d err=%v", id, err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("rows = %#v, want %#v", got, rows)
	}
}

func TestRowReaderScan(t *testing.T) {
	rows := []storage.Row{{int64(10), "x"}, {int64(20), "y"}}
	p, err := AppendRows(nil, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRowReader(p)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Remaining() != 2 {
		t.Fatalf("remaining = %d", rr.Remaining())
	}
	var raw []RawValue
	raw, err = rr.Scan(raw)
	if err != nil || raw[0].Int != 10 || string(raw[1].Bytes) != "x" {
		t.Fatalf("row 0: %v %v", raw, err)
	}
	raw, err = rr.Scan(raw)
	if err != nil || raw[0].Int != 20 || string(raw[1].Bytes) != "y" {
		t.Fatalf("row 1: %v %v", raw, err)
	}
	if _, err := rr.Scan(raw); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestDoneRoundTrip(t *testing.T) {
	p := AppendDone(nil, 3, 17, 120, "scan(t)")
	id, affected, rows, plan, err := ParseDone(p)
	if err != nil || id != 3 || affected != 17 || rows != 120 || plan != "scan(t)" {
		t.Fatalf("got %d %d %d %q %v", id, affected, rows, plan, err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	p := AppendError(nil, 5, 403, "denied")
	id, code, msg, err := ParseError(p)
	if err != nil || id != 5 || code != 403 || msg != "denied" {
		t.Fatalf("got %d %d %q %v", id, code, msg, err)
	}
}

func TestRetryRoundTrip(t *testing.T) {
	p := AppendRetry(nil, 8, 250*time.Millisecond)
	id, backoff, err := ParseRetry(p)
	if err != nil || id != 8 || backoff != 250*time.Millisecond {
		t.Fatalf("got %d %v %v", id, backoff, err)
	}
}

func TestRetryNegativeBackoff(t *testing.T) {
	p := AppendRetry(nil, 1, -time.Second)
	_, backoff, err := ParseRetry(p)
	if err != nil || backoff != 0 {
		t.Fatalf("got %v %v", backoff, err)
	}
}

func TestGoAwayRoundTrip(t *testing.T) {
	p := AppendGoAway(nil, "draining")
	reason, err := ParseGoAway(p)
	if err != nil || reason != "draining" {
		t.Fatalf("got %q %v", reason, err)
	}
}

// TestParsersRejectTruncation feeds every parser every proper prefix of
// a valid payload: each must fail cleanly, never over-read or panic.
func TestParsersRejectTruncation(t *testing.T) {
	queryPayload, err := AppendQuery(nil, 1, "SELECT ?", []storage.Value{int64(1), "x"})
	if err != nil {
		t.Fatal(err)
	}
	rowsPayload, err := AppendRows(nil, 1, []storage.Row{{int64(1), "a"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		payload []byte
		parse   func([]byte) error
	}{
		{"hello", AppendHello(nil, "token"), func(p []byte) error { _, err := ParseHello(p); return err }},
		{"welcome", AppendWelcome(nil, "acme"), func(p []byte) error { _, err := ParseWelcome(p); return err }},
		{"query", queryPayload, func(p []byte) error { _, _, _, err := ParseQuery(p); return err }},
		{"header", AppendResultHeader(nil, 1, []string{"a", "b"}), func(p []byte) error { _, _, err := ParseResultHeader(p); return err }},
		{"rows", rowsPayload, func(p []byte) error { _, _, err := ParseRows(p); return err }},
		{"done", AppendDone(nil, 1, 2, 3, "plan"), func(p []byte) error { _, _, _, _, err := ParseDone(p); return err }},
		{"error", AppendError(nil, 1, 500, "boom"), func(p []byte) error { _, _, _, err := ParseError(p); return err }},
		{"retry", AppendRetry(nil, 1, time.Second), func(p []byte) error { _, _, err := ParseRetry(p); return err }},
		{"goaway", AppendGoAway(nil, "bye"), func(p []byte) error { _, err := ParseGoAway(p); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.parse(tc.payload); err != nil {
				t.Fatalf("full payload should parse: %v", err)
			}
			for cut := 0; cut < len(tc.payload); cut++ {
				if err := tc.parse(tc.payload[:cut]); err == nil {
					t.Fatalf("cut=%d: truncated payload parsed without error", cut)
				}
			}
		})
	}
}

// TestParsersRejectOversizedLengths hand-crafts payloads whose length
// prefixes point past the end of the buffer.
func TestParsersRejectOversizedLengths(t *testing.T) {
	// HELLO with a token length far beyond the payload.
	p := append([]byte(Magic), Version, 0xFF, 0xFF)
	if _, err := ParseHello(p); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("hello: want ErrShortFrame, got %v", err)
	}
	// QUERY claiming a 4 GiB SQL string.
	q := []byte{0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, _, err := ParseQuery(q); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("query: want ErrShortFrame, got %v", err)
	}
}

func TestValueBadTag(t *testing.T) {
	// A one-row chunk whose single value has an unknown tag.
	p := appendU16(appendU32(nil, 1), 1) // id, rowc=1
	p = appendU16(p, 1)                  // colc=1
	p = append(p, 0x7F)                  // bogus tag
	if _, _, err := ParseRows(p); !errors.Is(err, ErrBadValue) {
		t.Fatalf("want ErrBadValue, got %v", err)
	}
}

func TestTimeNormalizedToUTCMicros(t *testing.T) {
	loc := time.FixedZone("X", 3600)
	in := time.Date(2026, 1, 2, 3, 4, 5, 678901234, loc)
	b, err := AppendValue(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var rv RawValue
	c := cursor{p: b}
	if err := readValue(&c, &rv); err != nil {
		t.Fatal(err)
	}
	got, ok := rv.Value().(time.Time)
	if !ok {
		t.Fatalf("got %T", rv.Value())
	}
	want := in.UTC().Truncate(time.Microsecond)
	if !got.Equal(want) || got.Location() != time.UTC {
		t.Fatalf("got %v, want %v (UTC)", got, want)
	}
}

func TestFrameTypeString(t *testing.T) {
	for ft, want := range map[FrameType]string{
		FrameHello: "HELLO", FrameWelcome: "WELCOME", FrameQuery: "QUERY",
		FrameResultHeader: "RESULT_HEADER", FrameResultChunk: "RESULT_CHUNK",
		FrameResultDone: "RESULT_DONE", FrameError: "ERROR", FramePing: "PING",
		FramePong: "PONG", FrameRetry: "RETRY", FrameGoAway: "GOAWAY",
	} {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
	if got := FrameType(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown type String() = %q", got)
	}
}

// TestEncodeReuseIsAllocationFree proves the append convention: once
// the buffer has grown to steady-state size, encoding a query and a
// row chunk into it allocates nothing.
func TestEncodeReuseIsAllocationFree(t *testing.T) {
	args := []storage.Value{int64(1), "ward-a"}
	rows := []storage.Row{{int64(1), "a", 2.5}, {int64(2), "b", 3.5}}
	var buf []byte
	var err error
	// Warm the buffer.
	if buf, err = AppendQuery(buf[:0], 1, "SELECT ?", args); err != nil {
		t.Fatal(err)
	}
	if buf, err = AppendRows(buf[:0], 1, rows); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if buf, err = AppendQuery(buf[:0], 1, "SELECT ?", args); err != nil {
			t.Fatal(err)
		}
		if buf, err = AppendRows(buf[:0], 1, rows); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state encode allocates %.1f/op, want 0", allocs)
	}
}

// TestDecodeScanIsAllocationFree proves the RawValue cursor contract:
// scanning a chunk's rows with a reused destination allocates nothing.
func TestDecodeScanIsAllocationFree(t *testing.T) {
	rows := []storage.Row{{int64(1), "a", 2.5}, {int64(2), "b", 3.5}}
	payload, err := AppendRows(nil, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]RawValue, 3)
	allocs := testing.AllocsPerRun(100, func() {
		rr := RowReader{c: cursor{p: payload}}
		id, err := rr.c.u32()
		if err != nil || id != 1 {
			t.Fatal("bad chunk")
		}
		n, err := rr.c.u16()
		if err != nil {
			t.Fatal(err)
		}
		rr.left = int(n)
		for {
			raw, err = rr.Scan(raw)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state scan allocates %.1f/op, want 0", allocs)
	}
}
