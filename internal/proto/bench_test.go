package proto

import (
	"io"
	"testing"

	"github.com/odbis/odbis/internal/storage"
)

// benchRows is a representative result chunk: 64 rows of the shape the
// workload mix produces (group key, two aggregates).
func benchRows() []storage.Row {
	rows := make([]storage.Row, 64)
	for i := range rows {
		rows[i] = storage.Row{"ward-" + string(rune('a'+i%8)), int64(i * 17), float64(i) * 1234.5}
	}
	return rows
}

// BenchmarkFrameEncode measures encoding one query frame and one
// 64-row result chunk into a reused buffer — the per-request encode
// cost of the wire path. The budget gate holds this at 0 allocs/op.
func BenchmarkFrameEncode(b *testing.B) {
	rows := benchRows()
	args := []storage.Value{int64(3), "icu"}
	var buf []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = AppendQuery(buf[:0], uint32(i), "SELECT ward, SUM(patients), SUM(cost) FROM admissions GROUP BY ward", args); err != nil {
			b.Fatal(err)
		}
		if buf, err = AppendRows(buf[:0], uint32(i), rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameDecode measures scanning a 64-row chunk through the
// zero-allocation RawValue cursor — the per-chunk decode cost on the
// client. The budget gate holds this at 0 allocs/op.
func BenchmarkFrameDecode(b *testing.B) {
	payload, err := AppendRows(nil, 1, benchRows())
	if err != nil {
		b.Fatal(err)
	}
	raw := make([]RawValue, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr := RowReader{c: cursor{p: payload}}
		id, err := rr.c.u32()
		if err != nil || id != 1 {
			b.Fatal("bad chunk")
		}
		n, err := rr.c.u16()
		if err != nil {
			b.Fatal(err)
		}
		rr.left = int(n)
		for {
			raw, err = rr.Scan(raw)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
