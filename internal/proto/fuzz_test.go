package proto

import (
	"bytes"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/storage"
)

// FuzzDecodeFrame throws arbitrary byte streams at the frame reader
// and every payload parser. The invariants are the wire protocol's
// safety contract: no panic on any input, and no read past the end of
// a frame (the cursor either yields exactly the declared content or
// fails with ErrShortFrame — enforced structurally, and spot-checked
// here by re-parsing a copy to catch aliasing bugs).
func FuzzDecodeFrame(f *testing.F) {
	// Corpus: golden frames of every type, wrapped with real headers.
	frame := func(t FrameType, payload []byte) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteFrame(t, payload); err != nil {
			f.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	queryPayload, err := AppendQuery(nil, 7, "SELECT ward, SUM(patients) FROM admissions WHERE severity = ? GROUP BY ward", []storage.Value{int64(3), "icu", 1.5, true, nil, time.Unix(1754000000, 0).UTC(), []byte{1, 2, 3}})
	if err != nil {
		f.Fatal(err)
	}
	rowsPayload, err := AppendRows(nil, 7, []storage.Row{
		{int64(1), "ward-a", 12.5, true},
		{int64(2), "ward-b", nil, false},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame(FrameHello, AppendHello(nil, "tok-abc123")))
	f.Add(frame(FrameWelcome, AppendWelcome(nil, "acme")))
	f.Add(frame(FrameQuery, queryPayload))
	f.Add(frame(FrameResultHeader, AppendResultHeader(nil, 7, []string{"ward", "patients"})))
	f.Add(frame(FrameResultChunk, rowsPayload))
	f.Add(frame(FrameResultDone, AppendDone(nil, 7, 0, 2, "scan(admissions)")))
	f.Add(frame(FrameError, AppendError(nil, 7, 503, "over capacity")))
	f.Add(frame(FramePing, []byte("keepalive")))
	f.Add(frame(FrameRetry, AppendRetry(nil, 7, 250*time.Millisecond)))
	f.Add(frame(FrameGoAway, AppendGoAway(nil, "draining")))
	// Mutation bait: truncated header, hostile length prefix, empty.
	f.Add([]byte{byte(FrameQuery), 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{byte(FramePing)})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		// A hostile stream must not make the reader allocate its
		// declared (possibly multi-GiB) length; cap well below the
		// input size bound.
		r.SetMaxFrame(1 << 20)
		for {
			ft, payload, err := r.ReadFrame()
			if err != nil {
				return
			}
			// The payload view must sit inside the stream that produced
			// it: decode from a defensive copy and require identical
			// outcomes, so an over-read (reading bytes beyond the frame)
			// would diverge and fail.
			cp := make([]byte, len(payload))
			copy(cp, payload)
			parseAll(t, ft, payload, cp)
		}
	})
}

// parseAll runs every payload parser that accepts the frame type over
// both the live view and the defensive copy, requiring identical
// success/failure.
func parseAll(t *testing.T, ft FrameType, live, cp []byte) {
	check := func(name string, e1, e2 error) {
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("%s: live err=%v copy err=%v — decoder read outside the frame", name, e1, e2)
		}
	}
	switch ft {
	case FrameHello:
		_, e1 := ParseHello(live)
		_, e2 := ParseHello(cp)
		check("hello", e1, e2)
	case FrameWelcome:
		_, e1 := ParseWelcome(live)
		_, e2 := ParseWelcome(cp)
		check("welcome", e1, e2)
	case FrameQuery:
		_, _, _, e1 := ParseQuery(live)
		_, _, _, e2 := ParseQuery(cp)
		check("query", e1, e2)
	case FrameResultHeader:
		_, _, e1 := ParseResultHeader(live)
		_, _, e2 := ParseResultHeader(cp)
		check("header", e1, e2)
	case FrameResultChunk:
		_, r1, e1 := ParseRows(live)
		_, r2, e2 := ParseRows(cp)
		check("rows", e1, e2)
		if e1 == nil && len(r1) != len(r2) {
			t.Fatalf("rows: live decoded %d rows, copy %d", len(r1), len(r2))
		}
	case FrameResultDone:
		_, _, _, _, e1 := ParseDone(live)
		_, _, _, _, e2 := ParseDone(cp)
		check("done", e1, e2)
	case FrameError:
		_, _, _, e1 := ParseError(live)
		_, _, _, e2 := ParseError(cp)
		check("error", e1, e2)
	case FrameRetry:
		_, _, e1 := ParseRetry(live)
		_, _, e2 := ParseRetry(cp)
		check("retry", e1, e2)
	case FrameGoAway:
		_, e1 := ParseGoAway(live)
		_, e2 := ParseGoAway(cp)
		check("goaway", e1, e2)
	}
}
