package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/odbis/odbis/internal/storage"
)

// RenderText writes the output as fixed-width text with ASCII bar charts,
// the format used by the CLI and the examples.
func RenderText(w io.Writer, out *Output) error {
	fmt.Fprintf(w, "== %s ==\n", out.Title)
	for _, item := range out.Items {
		if item.Title != "" {
			fmt.Fprintf(w, "\n-- %s --\n", item.Title)
		} else {
			fmt.Fprintln(w)
		}
		switch item.Kind {
		case "text":
			fmt.Fprintln(w, item.Text)
		case "kpi":
			fmt.Fprintf(w, "%s\n", item.Value)
		case "table":
			renderTextGrid(w, item.Grid)
		case "chart":
			renderTextChart(w, item.Chart)
		}
	}
	return nil
}

func renderTextGrid(w io.Writer, g *Grid) {
	if g == nil {
		return
	}
	widths := make([]int, len(g.Columns))
	cells := make([][]string, 0, len(g.Rows)+1)
	header := make([]string, len(g.Columns))
	for i, c := range g.Columns {
		header[i] = c
		widths[i] = len(c)
	}
	cells = append(cells, header)
	for _, row := range g.Rows {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = storage.FormatValue(v)
			if len(line[i]) > widths[i] {
				widths[i] = len(line[i])
			}
		}
		cells = append(cells, line)
	}
	for r, line := range cells {
		for i, cell := range line {
			fmt.Fprintf(w, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w)
		if r == 0 {
			for _, width := range widths {
				fmt.Fprint(w, strings.Repeat("-", width), "  ")
			}
			fmt.Fprintln(w)
		}
	}
}

func renderTextChart(w io.Writer, cd *ChartData) {
	if cd == nil || len(cd.Series) == 0 {
		return
	}
	const barWidth = 40
	s := cd.Series[0]
	maxVal := 0.0
	for _, v := range s.Values {
		if math.Abs(v) > maxVal {
			maxVal = math.Abs(v)
		}
	}
	labelWidth := 0
	for _, l := range cd.Labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for i, l := range cd.Labels {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(math.Abs(s.Values[i]) / maxVal * barWidth))
		}
		fmt.Fprintf(w, "%-*s | %s %s\n", labelWidth, l,
			strings.Repeat("#", n), storage.FormatValue(s.Values[i]))
	}
	if len(cd.Series) > 1 {
		fmt.Fprintf(w, "(first of %d series: %s)\n", len(cd.Series), s.Name)
	}
}

// RenderCSV writes every table element as CSV (charts and KPIs are
// skipped); multiple tables are separated by a blank line.
func RenderCSV(w io.Writer, out *Output) error {
	first := true
	for _, item := range out.Items {
		if item.Kind != "table" || item.Grid == nil {
			continue
		}
		if !first {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		first = false
		cw := csv.NewWriter(w)
		if err := cw.Write(item.Grid.Columns); err != nil {
			return err
		}
		for _, row := range item.Grid.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				if v == nil {
					cells[i] = ""
				} else {
					cells[i] = storage.FormatValue(v)
				}
			}
			if err := cw.Write(cells); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes the full output as JSON (the Information Delivery
// Service's machine-readable form).
func RenderJSON(w io.Writer, out *Output) error {
	type jsonItem struct {
		Kind  string     `json:"kind"`
		Title string     `json:"title,omitempty"`
		Grid  *Grid      `json:"grid,omitempty"`
		Chart *ChartData `json:"chart,omitempty"`
		Value string     `json:"value,omitempty"`
		Text  string     `json:"text,omitempty"`
	}
	doc := struct {
		Name  string     `json:"name"`
		Title string     `json:"title"`
		Items []jsonItem `json:"items"`
	}{Name: out.Name, Title: out.Title}
	for _, item := range out.Items {
		doc.Items = append(doc.Items, jsonItem(item))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// RenderHTML writes a self-contained HTML dashboard with inline SVG
// charts — the web-browser delivery channel of the paper's current
// release.
func RenderHTML(w io.Writer, out *Output) error {
	fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
h1{color:#234} .card{background:#fff;border:1px solid #ddd;border-radius:6px;
padding:1em;margin:1em 0;box-shadow:0 1px 2px rgba(0,0,0,.05)}
table{border-collapse:collapse} th,td{border:1px solid #ccc;padding:4px 10px;text-align:left}
th{background:#eef} .kpi{font-size:2.2em;font-weight:bold;color:#246}
</style></head><body>
<h1>%s</h1>
`, html.EscapeString(out.Title), html.EscapeString(out.Title))
	for _, item := range out.Items {
		fmt.Fprint(w, `<div class="card">`)
		if item.Title != "" {
			fmt.Fprintf(w, "<h2>%s</h2>\n", html.EscapeString(item.Title))
		}
		switch item.Kind {
		case "text":
			fmt.Fprintf(w, "<p>%s</p>\n", html.EscapeString(item.Text))
		case "kpi":
			fmt.Fprintf(w, `<div class="kpi">%s</div>`+"\n", html.EscapeString(item.Value))
		case "table":
			renderHTMLGrid(w, item.Grid)
		case "chart":
			renderSVGChart(w, item.Chart)
		}
		fmt.Fprintln(w, `</div>`)
	}
	_, err := fmt.Fprintln(w, "</body></html>")
	return err
}

func renderHTMLGrid(w io.Writer, g *Grid) {
	if g == nil {
		return
	}
	fmt.Fprint(w, "<table><tr>")
	for _, c := range g.Columns {
		fmt.Fprintf(w, "<th>%s</th>", html.EscapeString(c))
	}
	fmt.Fprintln(w, "</tr>")
	for _, row := range g.Rows {
		fmt.Fprint(w, "<tr>")
		for _, v := range row {
			fmt.Fprintf(w, "<td>%s</td>", html.EscapeString(storage.FormatValue(v)))
		}
		fmt.Fprintln(w, "</tr>")
	}
	fmt.Fprintln(w, "</table>")
}

var chartPalette = []string{"#4472c4", "#ed7d31", "#a5a5a5", "#ffc000", "#5b9bd5", "#70ad47"}

// renderSVGChart draws bar, line, or pie charts as inline SVG.
func renderSVGChart(w io.Writer, cd *ChartData) {
	if cd == nil || len(cd.Series) == 0 || len(cd.Labels) == 0 {
		return
	}
	const width, height, pad = 640, 280, 40
	switch cd.Kind {
	case ChartPie:
		renderSVGPie(w, cd, width, height)
		return
	default:
	}
	maxVal := 0.0
	for _, s := range cd.Series {
		for _, v := range s.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	plotW, plotH := float64(width-2*pad), float64(height-2*pad)
	n := len(cd.Labels)
	fmt.Fprintf(w, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`+"\n", width, height)
	// Axes.
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#888"/>`+"\n", pad, height-pad, width-pad, height-pad)
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#888"/>`+"\n", pad, pad, pad, height-pad)
	if cd.Kind == ChartBar {
		groupW := plotW / float64(n)
		barW := groupW / float64(len(cd.Series)+1)
		for si, s := range cd.Series {
			color := chartPalette[si%len(chartPalette)]
			for i, v := range s.Values {
				h := v / maxVal * plotH
				x := float64(pad) + float64(i)*groupW + float64(si)*barW + barW/2
				y := float64(height-pad) - h
				fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %g</title></rect>`+"\n",
					x, y, barW, h, color, html.EscapeString(cd.Labels[i]), html.EscapeString(s.Name), v)
			}
		}
	} else { // line
		step := plotW / float64(maxInt(n-1, 1))
		var pts strings.Builder
		for si, s := range cd.Series {
			color := chartPalette[si%len(chartPalette)]
			pts.Reset()
			for i, v := range s.Values {
				x := float64(pad) + float64(i)*step
				y := float64(height-pad) - v/maxVal*plotH
				if i > 0 {
					pts.WriteByte(' ')
				}
				pts.WriteString(strconv.FormatFloat(x, 'f', 1, 64))
				pts.WriteByte(',')
				pts.WriteString(strconv.FormatFloat(y, 'f', 1, 64))
			}
			fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				pts.String(), color)
		}
	}
	// X labels (sparse when crowded).
	stepLbl := 1
	if n > 12 {
		stepLbl = n / 12
	}
	groupW := plotW / float64(n)
	for i := 0; i < n; i += stepLbl {
		x := float64(pad) + float64(i)*groupW + groupW/2
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x, height-pad+14, html.EscapeString(cd.Labels[i]))
	}
	// Legend.
	for si, s := range cd.Series {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/><text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			width-pad-120, pad+si*16, chartPalette[si%len(chartPalette)],
			width-pad-105, pad+si*16+9, html.EscapeString(s.Name))
	}
	fmt.Fprintln(w, "</svg>")
}

func renderSVGPie(w io.Writer, cd *ChartData, width, height int) {
	s := cd.Series[0]
	total := 0.0
	for _, v := range s.Values {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		total = 1
	}
	cx, cy := float64(width)/2-80, float64(height)/2
	r := float64(height)/2 - 20
	fmt.Fprintf(w, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`+"\n", width, height)
	angle := -math.Pi / 2
	for i, v := range s.Values {
		if v <= 0 {
			continue
		}
		frac := v / total
		a2 := angle + frac*2*math.Pi
		large := 0
		if frac > 0.5 {
			large = 1
		}
		x1, y1 := cx+r*math.Cos(angle), cy+r*math.Sin(angle)
		x2, y2 := cx+r*math.Cos(a2), cy+r*math.Sin(a2)
		color := chartPalette[i%len(chartPalette)]
		fmt.Fprintf(w, `<path d="M%.1f,%.1f L%.1f,%.1f A%.1f,%.1f 0 %d 1 %.1f,%.1f Z" fill="%s"><title>%s: %g</title></path>`+"\n",
			cx, cy, x1, y1, r, r, large, x2, y2, color, html.EscapeString(cd.Labels[i]), v)
		angle = a2
	}
	for i, l := range cd.Labels {
		fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="10" height="10" fill="%s"/><text x="%.1f" y="%d" font-size="11">%s</text>`+"\n",
			cx+r+30, 20+i*16, chartPalette[i%len(chartPalette)], cx+r+45, 29+i*16, html.EscapeString(l))
	}
	fmt.Fprintln(w, "</svg>")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
