package report

import (
	"bytes"
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderGolden pins every renderer's full output byte-for-byte
// against testdata goldens, so layout regressions (column alignment, SVG
// geometry, CSV quoting, JSON shape) surface as diffs instead of passing
// the substring checks. Regenerate with: go test ./internal/report -run
// Golden -update
func TestRenderGolden(t *testing.T) {
	db := fixture(t)
	out, err := Run(context.Background(), DBQueryer(db), dashboardSpec())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		render func(w io.Writer, o *Output) error
	}{
		{"dashboard.text", RenderText},
		{"dashboard.html", RenderHTML},
		{"dashboard.csv", RenderCSV},
		{"dashboard.json", RenderJSON},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.render(&buf, out); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("%s output differs from golden:\n--- got ---\n%s\n--- want ---\n%s",
					c.name, buf.String(), want)
			}
		})
	}
}
