// Package report is the reporting substrate behind the ODBIS Reporting
// Service (RS) — the stand-in for BIRT plus the paper's ad-hoc reporting
// module (§3.3): "an easy way to define chart reports, data-table reports
// and to build dashboards".
//
// A Spec declares report elements (data tables, charts, KPIs, text) bound
// to SQL queries; Run executes the queries against any Queryer (the
// shared DB or a tenant catalog) and produces an Output that the
// renderers serialize to text, HTML (with inline SVG charts), CSV or
// JSON.
package report

import (
	"context"
	"fmt"
	"strings"

	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

// Queryer abstracts the data source of a report: *tenant.Catalog
// satisfies it directly, and *sql.DB via DBQueryer.
type Queryer interface {
	Query(ctx context.Context, query string, args ...storage.Value) (*sql.Result, error)
}

// QueryerFunc adapts a function to the Queryer interface.
type QueryerFunc func(ctx context.Context, query string, args ...storage.Value) (*sql.Result, error)

// Query implements Queryer.
func (f QueryerFunc) Query(ctx context.Context, query string, args ...storage.Value) (*sql.Result, error) {
	return f(ctx, query, args...)
}

// DBQueryer adapts a raw *sql.DB (whose context-aware entry point is
// QueryContext) to the Queryer interface.
func DBQueryer(db *sql.DB) Queryer { return QueryerFunc(db.QueryContext) }

// ChartKind selects a chart shape.
type ChartKind string

// Supported chart kinds.
const (
	ChartBar  ChartKind = "bar"
	ChartLine ChartKind = "line"
	ChartPie  ChartKind = "pie"
)

// Element is one building block of a report.
type Element struct {
	// Kind is "table", "chart", "kpi" or "text".
	Kind  string
	Title string

	// Query feeds table/chart/kpi elements; rows bind as declared below.
	Query string
	Args  []storage.Value

	// Table options: which result columns to show (empty = all) and a row
	// limit (0 = all).
	Columns []string
	Limit   int

	// Chart options: the label column and the numeric series columns
	// (empty series = every other column).
	Chart  ChartKind
	Label  string
	Series []string

	// KPI options: Format wraps the single value, e.g. "%.2f €".
	Format string

	// Text content for text elements.
	Text string
}

// Spec is a complete report or dashboard definition.
type Spec struct {
	Name        string
	Title       string
	Description string
	Elements    []Element
}

// Validate checks structural well-formedness without running queries.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("report: spec needs a name")
	}
	if len(s.Elements) == 0 {
		return fmt.Errorf("report: %s has no elements", s.Name)
	}
	for i, el := range s.Elements {
		switch el.Kind {
		case "table", "kpi":
			if el.Query == "" {
				return fmt.Errorf("report: %s element %d (%s) needs a query", s.Name, i, el.Kind)
			}
		case "chart":
			if el.Query == "" {
				return fmt.Errorf("report: %s element %d (chart) needs a query", s.Name, i)
			}
			switch el.Chart {
			case ChartBar, ChartLine, ChartPie:
			default:
				return fmt.Errorf("report: %s element %d: unknown chart kind %q", s.Name, i, el.Chart)
			}
		case "text":
			if el.Text == "" {
				return fmt.Errorf("report: %s element %d (text) is empty", s.Name, i)
			}
		default:
			return fmt.Errorf("report: %s element %d: unknown kind %q", s.Name, i, el.Kind)
		}
	}
	return nil
}

// Grid is a rendered data table.
type Grid struct {
	Columns []string
	Rows    [][]storage.Value
}

// Series is one numeric data series of a chart.
type Series struct {
	Name   string
	Values []float64
}

// ChartData is the computed form of a chart element.
type ChartData struct {
	Kind   ChartKind
	Labels []string
	Series []Series
}

// Item is one executed element.
type Item struct {
	Kind  string
	Title string
	Grid  *Grid      // table
	Chart *ChartData // chart
	Value string     // kpi (formatted)
	Text  string     // text
}

// Output is an executed report ready for rendering.
type Output struct {
	Name  string
	Title string
	Items []Item
}

// Run executes the spec against q. ctx bounds every element query; a
// cancelled or expired context aborts the report between (and inside)
// elements with the ctx error.
func Run(ctx context.Context, q Queryer, spec *Spec) (*Output, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	out := &Output{Name: spec.Name, Title: spec.Title}
	if out.Title == "" {
		out.Title = spec.Name
	}
	for i, el := range spec.Elements {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		item, err := runElement(ctx, q, el)
		if err != nil {
			return nil, fmt.Errorf("report: %s element %d (%s): %w", spec.Name, i, el.Kind, err)
		}
		out.Items = append(out.Items, item)
	}
	return out, nil
}

func runElement(ctx context.Context, q Queryer, el Element) (Item, error) {
	item := Item{Kind: el.Kind, Title: el.Title}
	switch el.Kind {
	case "text":
		item.Text = el.Text
		return item, nil
	case "table":
		res, err := q.Query(ctx, el.Query, el.Args...)
		if err != nil {
			return item, err
		}
		grid, err := gridFrom(res, el.Columns, el.Limit)
		if err != nil {
			return item, err
		}
		item.Grid = grid
		return item, nil
	case "kpi":
		res, err := q.Query(ctx, el.Query, el.Args...)
		if err != nil {
			return item, err
		}
		if len(res.Rows) == 0 || len(res.Rows[0]) == 0 {
			return item, fmt.Errorf("kpi query returned no value")
		}
		v := res.Rows[0][0]
		if el.Format != "" {
			switch x := storage.Normalize(v).(type) {
			case int64:
				item.Value = fmt.Sprintf(el.Format, x)
			case float64:
				item.Value = fmt.Sprintf(el.Format, x)
			default:
				item.Value = fmt.Sprintf(el.Format, storage.FormatValue(v))
			}
		} else {
			item.Value = storage.FormatValue(v)
		}
		return item, nil
	case "chart":
		res, err := q.Query(ctx, el.Query, el.Args...)
		if err != nil {
			return item, err
		}
		chart, err := chartFrom(res, el)
		if err != nil {
			return item, err
		}
		item.Chart = chart
		return item, nil
	default:
		return item, fmt.Errorf("unknown element kind %q", el.Kind)
	}
}

func gridFrom(res *sql.Result, columns []string, limit int) (*Grid, error) {
	idx := make([]int, 0, len(res.Columns))
	names := make([]string, 0, len(res.Columns))
	if len(columns) == 0 {
		for i, c := range res.Columns {
			idx = append(idx, i)
			names = append(names, c)
		}
	} else {
		for _, want := range columns {
			found := -1
			for i, c := range res.Columns {
				if strings.EqualFold(c, want) {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("result has no column %q (have %v)", want, res.Columns)
			}
			idx = append(idx, found)
			names = append(names, res.Columns[found])
		}
	}
	g := &Grid{Columns: names}
	for _, row := range res.Rows {
		if limit > 0 && len(g.Rows) >= limit {
			break
		}
		out := make([]storage.Value, len(idx))
		for i, j := range idx {
			out[i] = row[j]
		}
		g.Rows = append(g.Rows, out)
	}
	return g, nil
}

func chartFrom(res *sql.Result, el Element) (*ChartData, error) {
	labelIdx := 0
	if el.Label != "" {
		found := -1
		for i, c := range res.Columns {
			if strings.EqualFold(c, el.Label) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("result has no label column %q", el.Label)
		}
		labelIdx = found
	}
	seriesIdx := make([]int, 0, len(res.Columns))
	seriesNames := make([]string, 0, len(res.Columns))
	if len(el.Series) == 0 {
		for i, c := range res.Columns {
			if i == labelIdx {
				continue
			}
			seriesIdx = append(seriesIdx, i)
			seriesNames = append(seriesNames, c)
		}
	} else {
		for _, want := range el.Series {
			found := -1
			for i, c := range res.Columns {
				if strings.EqualFold(c, want) {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("result has no series column %q", want)
			}
			seriesIdx = append(seriesIdx, found)
			seriesNames = append(seriesNames, res.Columns[found])
		}
	}
	if len(seriesIdx) == 0 {
		return nil, fmt.Errorf("chart has no series columns")
	}
	cd := &ChartData{Kind: el.Chart}
	cd.Series = make([]Series, len(seriesIdx))
	for i, name := range seriesNames {
		cd.Series[i].Name = name
	}
	for _, row := range res.Rows {
		cd.Labels = append(cd.Labels, storage.FormatValue(row[labelIdx]))
		for i, j := range seriesIdx {
			f, ok := numeric(row[j])
			if !ok {
				return nil, fmt.Errorf("series %q has non-numeric value %v", seriesNames[i], row[j])
			}
			cd.Series[i].Values = append(cd.Series[i].Values, f)
		}
	}
	return cd, nil
}

func numeric(v storage.Value) (float64, bool) {
	switch x := storage.Normalize(v).(type) {
	case nil:
		return 0, true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// --- template registry (upload-and-execute, like the BIRT module) ---

// Store keeps named report specs, grouped like the paper's report-groups.
type Store struct {
	specs  map[string]*Spec
	groups map[string][]string
}

// NewStore returns an empty report store.
func NewStore() *Store {
	return &Store{specs: make(map[string]*Spec), groups: make(map[string][]string)}
}

// Save registers (or replaces) a spec under a group.
func (st *Store) Save(group string, spec *Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, exists := st.specs[spec.Name]; !exists {
		st.groups[group] = append(st.groups[group], spec.Name)
	}
	st.specs[spec.Name] = spec
	return nil
}

// Get retrieves a spec by name.
func (st *Store) Get(name string) (*Spec, bool) {
	s, ok := st.specs[name]
	return s, ok
}

// Delete removes a spec.
func (st *Store) Delete(name string) {
	delete(st.specs, name)
	for g, names := range st.groups {
		for i, n := range names {
			if n == name {
				st.groups[g] = append(names[:i], names[i+1:]...)
				break
			}
		}
	}
}

// Groups lists group names with their report names.
func (st *Store) Groups() map[string][]string {
	out := make(map[string][]string, len(st.groups))
	for g, names := range st.groups {
		out[g] = append([]string(nil), names...)
	}
	return out
}
