package report

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

func fixture(t *testing.T) *sql.DB {
	t.Helper()
	e := storage.MustOpenMemory()
	t.Cleanup(func() { e.Close() })
	db := sql.NewDB(e)
	for _, q := range []string{
		"CREATE TABLE admissions (ward TEXT, month INT, patients INT, cost FLOAT)",
		`INSERT INTO admissions VALUES
			('cardio', 1, 40, 8000.0), ('cardio', 2, 35, 7200.0),
			('neuro', 1, 22, 9100.0), ('neuro', 2, 28, 9900.0),
			('ortho', 1, 51, 4300.0), ('ortho', 2, 47, 4100.0)`,
	} {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func dashboardSpec() *Spec {
	return &Spec{
		Name:  "healthcare",
		Title: "Healthcare Dashboard",
		Elements: []Element{
			{Kind: "kpi", Title: "Total Patients", Query: "SELECT SUM(patients) FROM admissions"},
			{Kind: "kpi", Title: "Avg Cost", Query: "SELECT AVG(cost) FROM admissions", Format: "%.1f €"},
			{Kind: "chart", Title: "Patients by Ward", Chart: ChartBar,
				Query: "SELECT ward, SUM(patients) AS patients FROM admissions GROUP BY ward ORDER BY ward",
				Label: "ward"},
			{Kind: "chart", Title: "Cost Trend", Chart: ChartLine,
				Query: "SELECT month, SUM(cost) AS cost FROM admissions GROUP BY month ORDER BY month",
				Label: "month"},
			{Kind: "chart", Title: "Ward Share", Chart: ChartPie,
				Query: "SELECT ward, SUM(patients) AS patients FROM admissions GROUP BY ward ORDER BY ward",
				Label: "ward"},
			{Kind: "table", Title: "Detail",
				Query:   "SELECT ward, month, patients, cost FROM admissions ORDER BY ward, month",
				Columns: []string{"ward", "month", "patients"}, Limit: 4},
			{Kind: "text", Title: "Notes", Text: "Synthetic healthcare data."},
		},
	}
}

func TestValidate(t *testing.T) {
	bad := []*Spec{
		{},
		{Name: "x"},
		{Name: "x", Elements: []Element{{Kind: "bogus"}}},
		{Name: "x", Elements: []Element{{Kind: "table"}}},
		{Name: "x", Elements: []Element{{Kind: "chart", Query: "SELECT 1", Chart: "sunburst"}}},
		{Name: "x", Elements: []Element{{Kind: "text"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := dashboardSpec().Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestRunDashboard(t *testing.T) {
	db := fixture(t)
	out, err := Run(context.Background(), DBQueryer(db), dashboardSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 7 {
		t.Fatalf("items = %d", len(out.Items))
	}
	if out.Items[0].Value != "223" {
		t.Errorf("kpi = %q", out.Items[0].Value)
	}
	if !strings.HasSuffix(out.Items[1].Value, "€") {
		t.Errorf("formatted kpi = %q", out.Items[1].Value)
	}
	bar := out.Items[2].Chart
	if bar == nil || len(bar.Labels) != 3 || bar.Labels[0] != "cardio" {
		t.Fatalf("bar chart = %+v", bar)
	}
	if bar.Series[0].Values[0] != 75 { // cardio: 40+35
		t.Errorf("cardio patients = %v", bar.Series[0].Values[0])
	}
	tbl := out.Items[5].Grid
	if tbl == nil || len(tbl.Columns) != 3 || len(tbl.Rows) != 4 {
		t.Errorf("table = %+v", tbl)
	}
}

func TestRunErrors(t *testing.T) {
	db := fixture(t)
	bad := &Spec{Name: "x", Elements: []Element{{Kind: "table", Query: "SELECT * FROM missing"}}}
	if _, err := Run(context.Background(), DBQueryer(db), bad); err == nil {
		t.Error("query error swallowed")
	}
	bad = &Spec{Name: "x", Elements: []Element{{Kind: "chart", Chart: ChartBar,
		Query: "SELECT ward, ward AS w2 FROM admissions", Label: "ward"}}}
	if _, err := Run(context.Background(), DBQueryer(db), bad); err == nil {
		t.Error("non-numeric series accepted")
	}
	bad = &Spec{Name: "x", Elements: []Element{{Kind: "table",
		Query: "SELECT ward FROM admissions", Columns: []string{"ghost"}}}}
	if _, err := Run(context.Background(), DBQueryer(db), bad); err == nil {
		t.Error("unknown column accepted")
	}
	bad = &Spec{Name: "x", Elements: []Element{{Kind: "kpi", Query: "SELECT patients FROM admissions WHERE 1 = 0"}}}
	if _, err := Run(context.Background(), DBQueryer(db), bad); err == nil {
		t.Error("empty kpi accepted")
	}
}

func TestRenderText(t *testing.T) {
	db := fixture(t)
	out, _ := Run(context.Background(), DBQueryer(db), dashboardSpec())
	var buf bytes.Buffer
	if err := RenderText(&buf, out); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"Healthcare Dashboard", "Total Patients", "223", "cardio", "#", "ward"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q", want)
		}
	}
}

func TestRenderHTML(t *testing.T) {
	db := fixture(t)
	out, _ := Run(context.Background(), DBQueryer(db), dashboardSpec())
	var buf bytes.Buffer
	if err := RenderHTML(&buf, out); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{"<svg", "<table>", "polyline", "<path", "kpi"} {
		if !strings.Contains(html, want) {
			t.Errorf("html output missing %q", want)
		}
	}
	// XSS safety: titles are escaped.
	spec := dashboardSpec()
	spec.Title = `<script>alert(1)</script>`
	out2, _ := Run(context.Background(), DBQueryer(db), spec)
	buf.Reset()
	RenderHTML(&buf, out2)
	if strings.Contains(buf.String(), "<script>alert") {
		t.Error("unescaped title in HTML")
	}
}

func TestRenderCSV(t *testing.T) {
	db := fixture(t)
	out, _ := Run(context.Background(), DBQueryer(db), dashboardSpec())
	var buf bytes.Buffer
	if err := RenderCSV(&buf, out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "ward,month,patients" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 5 { // header + 4 limited rows
		t.Errorf("csv lines = %d", len(lines))
	}
}

func TestRenderJSON(t *testing.T) {
	db := fixture(t)
	out, _ := Run(context.Background(), DBQueryer(db), dashboardSpec())
	var buf bytes.Buffer
	if err := RenderJSON(&buf, out); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if doc["name"] != "healthcare" {
		t.Errorf("json name = %v", doc["name"])
	}
	items := doc["items"].([]any)
	if len(items) != 7 {
		t.Errorf("json items = %d", len(items))
	}
}

func TestStore(t *testing.T) {
	st := NewStore()
	spec := dashboardSpec()
	if err := st.Save("health", spec); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("health", &Spec{Name: "bad"}); err == nil {
		t.Error("invalid spec saved")
	}
	got, ok := st.Get("healthcare")
	if !ok || got.Title != "Healthcare Dashboard" {
		t.Errorf("get = %v %v", got, ok)
	}
	// Re-saving replaces without duplicating the group entry.
	st.Save("health", spec)
	if g := st.Groups(); len(g["health"]) != 1 {
		t.Errorf("groups = %v", g)
	}
	st.Delete("healthcare")
	if _, ok := st.Get("healthcare"); ok {
		t.Error("delete failed")
	}
	if g := st.Groups(); len(g["health"]) != 0 {
		t.Errorf("group entry not removed: %v", g)
	}
}

func TestChartSeriesSelection(t *testing.T) {
	db := fixture(t)
	spec := &Spec{Name: "s", Elements: []Element{{
		Kind: "chart", Chart: ChartBar,
		Query:  "SELECT ward, SUM(patients) AS p, SUM(cost) AS c FROM admissions GROUP BY ward ORDER BY ward",
		Label:  "ward",
		Series: []string{"c"},
	}}}
	out, err := Run(context.Background(), DBQueryer(db), spec)
	if err != nil {
		t.Fatal(err)
	}
	cd := out.Items[0].Chart
	if len(cd.Series) != 1 || cd.Series[0].Name != "c" {
		t.Errorf("series = %+v", cd.Series)
	}
	// Default series: every non-label column.
	spec.Elements[0].Series = nil
	out, _ = Run(context.Background(), DBQueryer(db), spec)
	if len(out.Items[0].Chart.Series) != 2 {
		t.Errorf("default series = %+v", out.Items[0].Chart.Series)
	}
}
