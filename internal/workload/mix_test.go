package workload

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

// runMix loads the full workload mix (healthcare + retail star) with the
// given seeds into a fresh engine and returns canonical aggregate
// results over both — the fingerprint benchmarks and experiments rely on
// when comparing runs.
func runMix(t *testing.T, hSeed, rSeed int64) []string {
	t.Helper()
	e := storage.MustOpenMemory()
	t.Cleanup(func() { e.Close() })
	if _, err := (Healthcare{Rows: 300, Seed: hSeed}).LoadAdmissions(e, "admissions"); err != nil {
		t.Fatal(err)
	}
	if _, err := (Retail{Facts: 1000, Products: 10, Stores: 4, Seed: rSeed}).Load(e, nil); err != nil {
		t.Fatal(err)
	}
	db := sql.NewDB(e)
	var out []string
	for _, q := range []string{
		"SELECT ward, SUM(patients), SUM(cost) FROM admissions GROUP BY ward ORDER BY ward",
		"SELECT month, COUNT(*) FROM admissions GROUP BY month ORDER BY month",
		`SELECT d.year, COUNT(*), SUM(f.amount)
		 FROM fact_sales f JOIN dim_date d ON f.date_id = d.id
		 GROUP BY d.year ORDER BY d.year`,
		`SELECT p.category, SUM(f.qty)
		 FROM fact_sales f JOIN dim_product p ON f.product_id = p.id
		 GROUP BY p.category ORDER BY p.category`,
	} {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("mix query %q: %v", q, err)
		}
		out = append(out, fmt.Sprint(res.Rows))
	}
	return out
}

// TestWorkloadMixDeterministic pins the property every benchmark and
// experiment depends on: the same seeds produce byte-identical data —
// across engines, across runs — and different seeds actually change it.
func TestWorkloadMixDeterministic(t *testing.T) {
	a := runMix(t, 7, 11)
	b := runMix(t, 7, 11)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seeds diverge:\n%v\nvs\n%v", a, b)
	}
	c := runMix(t, 8, 12)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produce identical data; seeding is dead")
	}
}

// TestRetailCSVDeterministic mirrors the healthcare generator check for
// the retail star: two loads with one seed must write identical fact
// rows (checked via an order-insensitive aggregate fingerprint).
func TestRetailFactFingerprintDeterministic(t *testing.T) {
	fingerprint := func(seed int64) string {
		e := storage.MustOpenMemory()
		defer e.Close()
		if _, err := (Retail{Facts: 500, Seed: seed}).Load(e, nil); err != nil {
			t.Fatal(err)
		}
		res, err := sql.NewDB(e).Query(
			"SELECT COUNT(*), SUM(amount), SUM(qty), MIN(amount), MAX(amount) FROM fact_sales")
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(res.Rows)
	}
	if a, b := fingerprint(3), fingerprint(3); a != b {
		t.Errorf("retail fingerprint diverges: %s vs %s", a, b)
	}
	if a, c := fingerprint(3), fingerprint(4); a == c {
		t.Error("retail seed has no effect")
	}
}
