package workload

import (
	"strings"
	"testing"

	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

func TestHealthcareCSVDeterministic(t *testing.T) {
	a := Healthcare{Rows: 100, Seed: 7}.AdmissionsCSV()
	b := Healthcare{Rows: 100, Seed: 7}.AdmissionsCSV()
	if a != b {
		t.Error("generator not deterministic")
	}
	c := Healthcare{Rows: 100, Seed: 8}.AdmissionsCSV()
	if a == c {
		t.Error("seed has no effect")
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 101 {
		t.Errorf("lines = %d", len(lines))
	}
	if lines[0] != "admitted,ward,severity,patients,cost,stay_days" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestHealthcareLoad(t *testing.T) {
	e := storage.MustOpenMemory()
	defer e.Close()
	n, err := Healthcare{Rows: 500}.LoadAdmissions(e, "admissions")
	if err != nil || n != 500 {
		t.Fatalf("load: %v n=%d", err, n)
	}
	db := sql.NewDB(e)
	res, err := db.Query("SELECT COUNT(DISTINCT ward), COUNT(DISTINCT month) FROM admissions")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) < 5 {
		t.Errorf("wards = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].(int64) < 12 {
		t.Errorf("months = %v", res.Rows[0][1])
	}
}

func TestRetailLoad(t *testing.T) {
	e := storage.MustOpenMemory()
	defer e.Close()
	n, err := Retail{Facts: 2000, Products: 20, Stores: 5}.Load(e, nil)
	if err != nil || n != 2000 {
		t.Fatalf("load: %v n=%d", err, n)
	}
	db := sql.NewDB(e)
	res, err := db.Query(`
		SELECT d.year, SUM(f.amount)
		FROM fact_sales f JOIN dim_date d ON f.date_id = d.id
		GROUP BY d.year ORDER BY d.year`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("years = %v", res.Rows)
	}
	// FK integrity: every fact joins a product.
	res, _ = db.Query(`
		SELECT COUNT(*) FROM fact_sales f
		LEFT JOIN dim_product p ON f.product_id = p.id
		WHERE p.id IS NULL`)
	if res.Rows[0][0] != int64(0) {
		t.Errorf("orphan facts = %v", res.Rows[0][0])
	}
}

func TestRetailLoadWithMapping(t *testing.T) {
	e := storage.MustOpenMemory()
	defer e.Close()
	prefix := func(s string) string { return "tn_" + s }
	if _, err := (Retail{Facts: 100}).Load(e, prefix); err != nil {
		t.Fatal(err)
	}
	if !e.HasTable("tn_fact_sales") || e.HasTable("fact_sales") {
		t.Errorf("tables = %v", e.Tables())
	}
}
