package workload

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
)

// TestMixStatementsExecute runs the full mix — setup plus a few hundred
// drawn statements — against a real engine, proving every statement the
// load harness can emit is valid SQL over the schema SetupStmts creates.
func TestMixStatementsExecute(t *testing.T) {
	e := storage.MustOpenMemory()
	t.Cleanup(func() { e.Close() })
	db := sql.NewDB(e)
	m := Mix{WritePct: 30}
	rng := rand.New(rand.NewSource(42))
	for _, s := range m.SetupStmts(rng, 50) {
		if _, err := db.Query(s.SQL, s.Args...); err != nil {
			t.Fatalf("setup %q: %v", s.SQL, err)
		}
	}
	writes := 0
	for i := 0; i < 400; i++ {
		s := m.Next(rng)
		if s.Write {
			writes++
		}
		if _, err := db.Query(s.SQL, s.Args...); err != nil {
			t.Fatalf("mix stmt %q args %v: %v", s.SQL, s.Args, err)
		}
	}
	// 30% of 400 draws: well within [60, 180] unless the draw is broken.
	if writes < 60 || writes > 180 {
		t.Fatalf("writes = %d of 400, want ~120", writes)
	}
}

// TestMixDeterministic pins that the same seed replays the same
// statement sequence — what makes the harness A/B comparison fair.
func TestMixDeterministic(t *testing.T) {
	draw := func(seed int64) []string {
		m := Mix{}
		rng := rand.New(rand.NewSource(seed))
		var out []string
		for _, s := range m.SetupStmts(rng, 10) {
			out = append(out, fmt.Sprint(s.SQL, s.Args))
		}
		for i := 0; i < 100; i++ {
			s := m.Next(rng)
			out = append(out, fmt.Sprint(s.SQL, s.Args))
		}
		return out
	}
	if !reflect.DeepEqual(draw(7), draw(7)) {
		t.Fatal("same seed produced different sequences")
	}
	if reflect.DeepEqual(draw(7), draw(8)) {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestMixWritePctZeroIsDefault documents the zero-value contract:
// WritePct 0 means the 20% default, negative disables writes.
func TestMixWritePctBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	def := 0
	for i := 0; i < 1000; i++ {
		if (Mix{}).Next(rng).Write {
			def++
		}
	}
	if def < 100 || def > 320 {
		t.Fatalf("default write draws = %d of 1000, want ~200", def)
	}
	for i := 0; i < 200; i++ {
		if (Mix{WritePct: -1}).Next(rng).Write {
			t.Fatal("WritePct -1 must draw no writes")
		}
	}
}
