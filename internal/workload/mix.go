package workload

import (
	"math/rand"

	"github.com/odbis/odbis/internal/storage"
)

// Stmt is one statement of the closed-loop traffic mix: SQL text plus
// positional arguments, ready for Session.Query or the wire client.
// Write marks statements that mutate state (the load harness uses it to
// decide retry safety and to report read/write throughput separately).
type Stmt struct {
	SQL   string
	Args  []storage.Value
	Write bool
}

// Mix models the request stream a subscribed BI tenant sends the
// platform: mostly dashboard-style aggregate reads over an operational
// sales table, with a configurable fraction of single-row ingest
// writes. It is deterministic for a given *rand.Rand, so two harness
// runs with the same seed replay the same statement sequence — the
// property the HTTP-vs-binary A/B comparison depends on.
type Mix struct {
	// WritePct is the percentage of statements that are writes
	// (default 20; 0 is honored, so use a negative value only if you
	// want the default).
	WritePct int
}

// MixTable is the operational table the mix reads and writes.
const MixTable = "ops_sales"

// mixRegions/mixCategories bound the dimension cardinalities of the
// generated rows (shared vocabulary with the Retail star generator).
var (
	mixRegions    = Regions
	mixCategories = Categories
)

// SetupStmts returns the DDL plus seedRows single-row inserts that
// prepare a tenant for the mix (seedRows <= 0 defaults to 200). Run
// them once per tenant before calling Next; the seed rows guarantee the
// read queries aggregate over real data from the first request.
func (m Mix) SetupStmts(rng *rand.Rand, seedRows int) []Stmt {
	if seedRows <= 0 {
		seedRows = 200
	}
	stmts := make([]Stmt, 0, seedRows+1)
	stmts = append(stmts, Stmt{
		SQL: "CREATE TABLE " + MixTable +
			" (region TEXT, category TEXT, qty INT, amount FLOAT)",
		Write: true,
	})
	for i := 0; i < seedRows; i++ {
		stmts = append(stmts, m.insert(rng))
	}
	return stmts
}

// ReadQueries is the canonical dashboard read set, in fixed order:
// a regional revenue rollup, a category breakdown, a filtered count,
// and a full count. Next draws reads uniformly from this slice.
var ReadQueries = []string{
	"SELECT region, SUM(amount) FROM " + MixTable + " GROUP BY region ORDER BY region",
	"SELECT category, SUM(qty), SUM(amount) FROM " + MixTable + " GROUP BY category ORDER BY category",
	"SELECT region, COUNT(*) FROM " + MixTable + " WHERE qty > ? GROUP BY region ORDER BY region",
	"SELECT COUNT(*) FROM " + MixTable,
}

// Next draws the next statement of the mix from rng: an ingest write
// with probability WritePct/100, otherwise one of ReadQueries.
func (m Mix) Next(rng *rand.Rand) Stmt {
	writePct := m.WritePct
	if writePct == 0 {
		writePct = 20
	} else if writePct < 0 {
		writePct = 0
	}
	if rng.Intn(100) < writePct {
		return m.insert(rng)
	}
	switch q := ReadQueries[rng.Intn(len(ReadQueries))]; q {
	case ReadQueries[2]:
		return Stmt{SQL: q, Args: []storage.Value{int64(rng.Intn(8))}}
	default:
		return Stmt{SQL: q}
	}
}

func (m Mix) insert(rng *rand.Rand) Stmt {
	return Stmt{
		SQL: "INSERT INTO " + MixTable + " (region, category, qty, amount) VALUES (?, ?, ?, ?)",
		Args: []storage.Value{
			mixRegions[rng.Intn(len(mixRegions))],
			mixCategories[rng.Intn(len(mixCategories))],
			int64(1 + rng.Intn(9)),
			float64(rng.Intn(50000)) / 100,
		},
		Write: true,
	}
}
