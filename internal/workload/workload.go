// Package workload generates deterministic synthetic datasets for the
// examples, tests and benchmarks. The paper evaluates nothing
// quantitatively and ships no data; these generators stand in for the
// customer data a production ODBIS deployment would host (DESIGN.md
// substitution table). All generators are seeded and reproducible.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/odbis/odbis/internal/etl"
	"github.com/odbis/odbis/internal/storage"
)

// Healthcare generates the admissions dataset behind the paper's Fig. 6
// dashboard example: hospital wards, months, admissions with patient
// counts and costs.
type Healthcare struct {
	// Rows is the number of admission facts (default 1000).
	Rows int
	// Seed drives the generator (default 1).
	Seed int64
}

// Wards used by the healthcare generator.
var Wards = []string{"cardiology", "neurology", "orthopedics", "oncology", "pediatrics", "emergency"}

// Severities used by the healthcare generator.
var Severities = []string{"low", "medium", "high", "critical"}

// AdmissionsCSV renders the dataset as CSV, the upload format of the
// Integration Service.
func (h Healthcare) AdmissionsCSV() string {
	rows := h.Rows
	if rows <= 0 {
		rows = 1000
	}
	seed := h.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString("admitted,ward,severity,patients,cost,stay_days\n")
	base := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < rows; i++ {
		day := base.AddDate(0, 0, rng.Intn(540))
		ward := Wards[rng.Intn(len(Wards))]
		sev := Severities[rng.Intn(len(Severities))]
		patients := 1 + rng.Intn(4)
		cost := float64(500+rng.Intn(20000)) / 10
		stay := 1 + rng.Intn(21)
		fmt.Fprintf(&sb, "%s,%s,%s,%d,%.1f,%d\n",
			day.Format("2006-01-02"), ward, sev, patients, cost, stay)
	}
	return sb.String()
}

// LoadAdmissions loads the dataset directly into an engine table
// (creating it), returning the row count. It is the fast path for
// benchmarks that do not exercise the ETL service.
func (h Healthcare) LoadAdmissions(e *storage.Engine, table string) (int, error) {
	sink := &etl.TableSink{Engine: e, Table: table, CreateTable: true}
	pipe := &etl.Pipeline{
		Source: &etl.CSVSource{Data: h.AdmissionsCSV()},
		Transforms: []etl.Transform{
			etl.Derive{Field: "month", Expression: "FORMAT_TIME('2006-01', admitted)"},
		},
		Sink: sink,
	}
	_, written, err := pipe.Run(context.Background())
	return written, err
}

// Retail generates a star schema: dim_date, dim_product, dim_store plus
// fact_sales, loaded straight into an engine.
type Retail struct {
	// Facts is the fact row count (default 10000).
	Facts int
	// Products, Stores bound the dimension cardinalities.
	Products int
	Stores   int
	Seed     int64
}

// Categories used by the retail generator.
var Categories = []string{"toys", "electronics", "grocery", "clothing", "sports"}

// Regions used by the retail generator.
var Regions = []string{"north", "south", "east", "west"}

// Load creates and fills the star schema using the given table-name
// mapping (identity when nil; tenant catalogs pass Catalog.Physical).
// It returns the number of fact rows.
func (r Retail) Load(e *storage.Engine, tableFor func(string) string) (int, error) {
	if tableFor == nil {
		tableFor = func(s string) string { return s }
	}
	facts := r.Facts
	if facts <= 0 {
		facts = 10000
	}
	products := r.Products
	if products <= 0 {
		products = 50
	}
	stores := r.Stores
	if stores <= 0 {
		stores = 12
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	mkSchema := func(name string, cols []storage.Column, pk ...string) (*storage.Schema, error) {
		return storage.NewSchema(tableFor(name), cols, pk...)
	}
	dateSchema, err := mkSchema("dim_date", []storage.Column{
		{Name: "id", Type: storage.TypeInt, NotNull: true},
		{Name: "year", Type: storage.TypeInt},
		{Name: "quarter", Type: storage.TypeString},
		{Name: "month", Type: storage.TypeInt},
	}, "id")
	if err != nil {
		return 0, err
	}
	prodSchema, err := mkSchema("dim_product", []storage.Column{
		{Name: "id", Type: storage.TypeInt, NotNull: true},
		{Name: "category", Type: storage.TypeString},
		{Name: "sku", Type: storage.TypeString},
		{Name: "price", Type: storage.TypeFloat},
	}, "id")
	if err != nil {
		return 0, err
	}
	storeSchema, err := mkSchema("dim_store", []storage.Column{
		{Name: "id", Type: storage.TypeInt, NotNull: true},
		{Name: "region", Type: storage.TypeString},
		{Name: "city", Type: storage.TypeString},
	}, "id")
	if err != nil {
		return 0, err
	}
	factSchema, err := mkSchema("fact_sales", []storage.Column{
		{Name: "date_id", Type: storage.TypeInt},
		{Name: "product_id", Type: storage.TypeInt},
		{Name: "store_id", Type: storage.TypeInt},
		{Name: "amount", Type: storage.TypeFloat},
		{Name: "qty", Type: storage.TypeInt},
	})
	if err != nil {
		return 0, err
	}
	for _, s := range []*storage.Schema{dateSchema, prodSchema, storeSchema, factSchema} {
		if !e.HasTable(s.Name) {
			if err := e.CreateTable(s); err != nil {
				return 0, err
			}
		}
	}
	err = e.Update(func(tx *storage.Tx) error {
		// 24 months of dates.
		id := int64(1)
		for _, y := range []int64{2025, 2026} {
			for m := int64(1); m <= 12; m++ {
				q := fmt.Sprintf("Q%d", (m-1)/3+1)
				if _, err := tx.Insert(dateSchema.Name, storage.Row{id, y, q, m}); err != nil {
					return err
				}
				id++
			}
		}
		for i := 1; i <= products; i++ {
			row := storage.Row{
				int64(i),
				Categories[rng.Intn(len(Categories))],
				fmt.Sprintf("sku-%04d", i),
				float64(100+rng.Intn(9900)) / 100,
			}
			if _, err := tx.Insert(prodSchema.Name, row); err != nil {
				return err
			}
		}
		for i := 1; i <= stores; i++ {
			row := storage.Row{
				int64(i),
				Regions[rng.Intn(len(Regions))],
				fmt.Sprintf("city-%02d", i),
			}
			if _, err := tx.Insert(storeSchema.Name, row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	// Facts in batches to bound transaction size.
	const batch = 5000
	for start := 0; start < facts; start += batch {
		end := start + batch
		if end > facts {
			end = facts
		}
		err := e.Update(func(tx *storage.Tx) error {
			for i := start; i < end; i++ {
				row := storage.Row{
					int64(rng.Intn(24) + 1),
					int64(rng.Intn(products) + 1),
					int64(rng.Intn(stores) + 1),
					float64(rng.Intn(50000)) / 100,
					int64(rng.Intn(9) + 1),
				}
				if _, err := tx.Insert(factSchema.Name, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return start, err
		}
	}
	return facts, nil
}
