// Benchmarks regenerating every experiment of DESIGN.md §3 as testing.B
// targets — one set per paper figure/section claim plus the design
// ablations. `cmd/odbis-bench` prints the same experiments as parameter
// sweeps; these benches give per-op numbers under the standard Go
// harness:
//
//	go test -bench=. -benchmem
package odbis

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/odbis/odbis/internal/bpm"
	"github.com/odbis/odbis/internal/bus"
	"github.com/odbis/odbis/internal/etl"
	"github.com/odbis/odbis/internal/mddws"
	"github.com/odbis/odbis/internal/mddws/process"
	"github.com/odbis/odbis/internal/metamodel"
	"github.com/odbis/odbis/internal/metamodel/cwm"
	"github.com/odbis/odbis/internal/metamodel/odm"
	"github.com/odbis/odbis/internal/obs"
	"github.com/odbis/odbis/internal/olap"
	"github.com/odbis/odbis/internal/report"
	"github.com/odbis/odbis/internal/rules"
	"github.com/odbis/odbis/internal/security"
	"github.com/odbis/odbis/internal/server"
	"github.com/odbis/odbis/internal/services"
	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
	"github.com/odbis/odbis/internal/storage/orm"
	"github.com/odbis/odbis/internal/tenant"
	"github.com/odbis/odbis/internal/workload"
)

// --- shared fixtures ---

func benchPlatform(b *testing.B) (*services.Platform, *services.Session) {
	b.Helper()
	e := storage.MustOpenMemory()
	b.Cleanup(func() { e.Close() })
	reg, err := tenant.NewRegistry(e)
	if err != nil {
		b.Fatal(err)
	}
	sec, err := security.NewManager(e, security.Options{HashIterations: 16, TokenSecret: []byte("bench")})
	if err != nil {
		b.Fatal(err)
	}
	p := services.NewPlatform(reg, sec)
	if err := p.Bootstrap("admin", "admin"); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Registry.Create("acme", "Acme", "enterprise"); err != nil {
		b.Fatal(err)
	}
	if err := sec.CreateUser(security.UserSpec{
		Username: "bench", Password: "pw", Tenant: "acme",
		Roles: []string{services.RoleDesigner},
	}); err != nil {
		b.Fatal(err)
	}
	sess, _, err := p.Login("bench", "pw")
	if err != nil {
		b.Fatal(err)
	}
	return p, sess
}

func benchRetailEngine(b *testing.B, facts int) *storage.Engine {
	b.Helper()
	e := storage.MustOpenMemory()
	b.Cleanup(func() { e.Close() })
	if _, err := (workload.Retail{Facts: facts, Products: 100, Stores: 20}).Load(e, nil); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchRetailCubeSpec() olap.CubeSpec {
	return olap.CubeSpec{
		Name:      "Sales",
		FactTable: "fact_sales",
		Measures: []olap.MeasureSpec{
			{Name: "amount", Column: "amount", Agg: olap.AggSum},
			{Name: "qty", Column: "qty", Agg: olap.AggSum},
		},
		Dimensions: []olap.DimensionSpec{
			{Name: "Date", Table: "dim_date", Key: "id", FactFK: "date_id",
				Levels: []olap.LevelSpec{{Name: "Year", Column: "year"}, {Name: "Quarter", Column: "quarter"}}},
			{Name: "Product", Table: "dim_product", Key: "id", FactFK: "product_id",
				Levels: []olap.LevelSpec{{Name: "Category", Column: "category"}}},
			{Name: "Store", Table: "dim_store", Key: "id", FactFK: "store_id",
				Levels: []olap.LevelSpec{{Name: "Region", Column: "region"}}},
		},
	}
}

// --- E1 / Figure 1: end-to-end SaaS requests ---

func benchmarkFigure1(b *testing.B, tenants int) {
	p, _ := benchPlatform(b)
	ts := httptest.NewServer(server.New(p))
	b.Cleanup(ts.Close)
	admin, _, err := p.Login("admin", "admin")
	if err != nil {
		b.Fatal(err)
	}
	var tokens []string
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%02d", i)
		if _, err := admin.CreateTenant(context.Background(), id, id, "enterprise"); err != nil {
			b.Fatal(err)
		}
		user := "u-" + id
		if err := admin.CreateUser(context.Background(), security.UserSpec{
			Username: user, Password: "pw", Tenant: id, Roles: []string{services.RoleDesigner},
		}); err != nil {
			b.Fatal(err)
		}
		sess, token, err := p.Login(user, "pw")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := (workload.Healthcare{Rows: 200, Seed: int64(i + 1)}).LoadAdmissions(
			p.Registry.Engine(), sess.Catalog.Physical("admissions")); err != nil {
			b.Fatal(err)
		}
		if err := sess.SaveReport(context.Background(), "ops", &report.Spec{
			Name: "bench-dash", Title: "D",
			Elements: []report.Element{
				{Kind: "kpi", Title: "P", Query: "SELECT SUM(patients) FROM admissions"},
				{Kind: "table", Title: "T", Query: "SELECT ward, cost FROM admissions", Limit: 10},
			},
		}); err != nil {
			b.Fatal(err)
		}
		tokens = append(tokens, token)
	}
	statsDB := sql.NewDB(p.Registry.Engine())
	before := statsDB.PlanCacheStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		token := tokens[i%len(tokens)]
		req, _ := http.NewRequest("GET", ts.URL+"/api/reports/bench-dash?format=json", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		var sink bytes.Buffer
		sink.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	// Dashboard refreshes re-run a fixed query set, so after the cold
	// first render every lookup should hit the plan cache; perf_gate.sh
	// holds this ratio at >= 0.90 for the 1-tenant figure.
	after := statsDB.PlanCacheStats()
	lookups := (after.Hits - before.Hits) + (after.Misses - before.Misses)
	if sql.PlanCacheEnabled() && lookups > 0 {
		b.ReportMetric(float64(after.Hits-before.Hits)/float64(lookups), "hit_ratio")
	}
}

func BenchmarkFigure1_EndToEnd_1Tenant(b *testing.B)   { benchmarkFigure1(b, 1) }
func BenchmarkFigure1_EndToEnd_8Tenants(b *testing.B)  { benchmarkFigure1(b, 8) }
func BenchmarkFigure1_EndToEnd_32Tenants(b *testing.B) { benchmarkFigure1(b, 32) }

// The _ObsOff variants rerun E1 with the observability subsystem
// disarmed. The armed-vs-disarmed delta within one bench run is the
// measurement of obs overhead; comparing armed figures across
// BENCH_PR*.json files from different runs measures host noise instead.
func BenchmarkFigure1_EndToEnd_1Tenant_ObsOff(b *testing.B) {
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	benchmarkFigure1(b, 1)
}

func BenchmarkFigure1_EndToEnd_8Tenants_ObsOff(b *testing.B) {
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	benchmarkFigure1(b, 8)
}

// The _NoPlanCache variant reruns E1 with plan caching disabled: every
// dashboard element pays parse + plan on every refresh. The delta
// against the cached 1-tenant figure (within one bench run) is the
// compile cost the plan cache removes from the request path.
func BenchmarkFigure1_EndToEnd_1Tenant_NoPlanCache(b *testing.B) {
	sql.SetPlanCacheEnabled(false)
	defer sql.SetPlanCacheEnabled(true)
	benchmarkFigure1(b, 1)
}

// --- E2 / §2: multi-tenant shared store vs isolated engines ---

func BenchmarkSection2_MultiTenant_SharedQuery(b *testing.B) {
	e := storage.MustOpenMemory()
	b.Cleanup(func() { e.Close() })
	reg, err := tenant.NewRegistry(e)
	if err != nil {
		b.Fatal(err)
	}
	const tenants = 8
	var catalogs []*tenant.Catalog
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%02d", i)
		reg.Create(id, id, "enterprise")
		cat, err := reg.Catalog(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := (workload.Retail{Facts: 2000, Seed: int64(i + 1)}).Load(e, cat.Physical); err != nil {
			b.Fatal(err)
		}
		catalogs = append(catalogs, cat)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := catalogs[i%tenants]
		if _, err := cat.Query(context.Background(), "SELECT COUNT(*) FROM fact_sales"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection2_MultiTenant_IsolatedQuery(b *testing.B) {
	const tenants = 8
	var dbs []*sql.DB
	for i := 0; i < tenants; i++ {
		e := storage.MustOpenMemory()
		b.Cleanup(func() { e.Close() })
		if _, err := (workload.Retail{Facts: 2000, Seed: int64(i + 1)}).Load(e, nil); err != nil {
			b.Fatal(err)
		}
		dbs = append(dbs, sql.NewDB(e))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dbs[i%tenants].Query("SELECT COUNT(*) FROM fact_sales"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3 / Figure 2: MDA pipeline ---

func benchmarkFigure2(b *testing.B, dims int) {
	spec := cwm.StarSpec{Name: "S"}
	var names []string
	for i := 0; i < dims; i++ {
		name := fmt.Sprintf("D%02d", i)
		names = append(names, name)
		spec.Dimensions = append(spec.Dimensions, cwm.DimensionSpec{
			Name:   name,
			Levels: []cwm.LevelSpec{{Name: fmt.Sprintf("L%da", i)}, {Name: fmt.Sprintf("L%db", i)}},
		})
	}
	spec.Facts = []cwm.FactSpec{{
		Name:       "F",
		Measures:   []cwm.MeasureSpec{{Name: "m", Aggregation: "sum"}},
		Dimensions: names,
	}}
	cim, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mddws.BuildFromConceptual(cim); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2_MDAPipeline_2Dims(b *testing.B)  { benchmarkFigure2(b, 2) }
func BenchmarkFigure2_MDAPipeline_8Dims(b *testing.B)  { benchmarkFigure2(b, 8) }
func BenchmarkFigure2_MDAPipeline_16Dims(b *testing.B) { benchmarkFigure2(b, 16) }

// --- E4 / Figure 3: 2TUP process runs ---

func benchmarkFigure3(b *testing.B, components int) {
	var names []string
	for i := 0; i < components; i++ {
		names = append(names, fmt.Sprintf("c%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := process.NewRun("layer", names)
		if err != nil {
			b.Fatal(err)
		}
		if err := run.RunAll(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_Process_1Component(b *testing.B)  { benchmarkFigure3(b, 1) }
func BenchmarkFigure3_Process_8Components(b *testing.B) { benchmarkFigure3(b, 8) }

// --- E5 / Figure 4: per-layer overhead ---

func benchmarkFigure4(b *testing.B, layer string) {
	p, sess := benchPlatform(b)
	e := p.Registry.Engine()
	if _, err := (workload.Retail{Facts: 2000}).Load(e, sess.Catalog.Physical); err != nil {
		b.Fatal(err)
	}
	factTable := sess.Catalog.Physical("fact_sales")
	schema, err := e.Schema(factTable)
	if err != nil {
		b.Fatal(err)
	}
	amountPos, _ := schema.ColumnIndex("amount")
	db := sql.NewDB(e)
	logical := "SELECT SUM(amount) FROM fact_sales"
	physical := "SELECT SUM(amount) FROM " + factTable

	var fn func() error
	switch layer {
	case "storage":
		fn = func() error {
			return e.View(func(tx *storage.Tx) error {
				sum := 0.0
				return tx.Scan(factTable, func(_ storage.RID, row storage.Row) bool {
					if f, ok := row[amountPos].(float64); ok {
						sum += f
					}
					return true
				})
			})
		}
	case "sql":
		fn = func() error { _, err := db.Query(physical); return err }
	case "catalog":
		fn = func() error { _, err := sess.Catalog.Query(context.Background(), logical); return err }
	case "service":
		fn = func() error { _, err := sess.Query(context.Background(), logical); return err }
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4_Layer_Storage(b *testing.B) { benchmarkFigure4(b, "storage") }
func BenchmarkFigure4_Layer_SQL(b *testing.B)     { benchmarkFigure4(b, "sql") }
func BenchmarkFigure4_Layer_Catalog(b *testing.B) { benchmarkFigure4(b, "catalog") }
func BenchmarkFigure4_Layer_Service(b *testing.B) { benchmarkFigure4(b, "service") }

// --- E6 / Figure 5: integrated stack ---

type benchMeta struct {
	ID   int64 `orm:"id,pk"`
	Name string
	Size int64
}

func BenchmarkFigure5_Stack_ORM(b *testing.B) {
	e := storage.MustOpenMemory()
	b.Cleanup(func() { e.Close() })
	mapper, err := orm.NewMapper[benchMeta](e, "meta")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := benchMeta{ID: int64(i), Name: "o", Size: int64(i % 1000)}
		if err := mapper.Save(&obj); err != nil {
			b.Fatal(err)
		}
		if _, _, err := mapper.Get(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5_Stack_ORMPlusRules(b *testing.B) {
	e := storage.MustOpenMemory()
	b.Cleanup(func() { e.Close() })
	mapper, err := orm.NewMapper[benchMeta](e, "meta")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := rules.NewEngine(rules.Rule{
		Name: "oversize",
		When: []rules.Condition{{Var: "o", Kind: "Meta", Where: "o.size > 500"}},
		Then: func(s *rules.Session, bn rules.Bindings) error { return nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := benchMeta{ID: int64(i), Name: "o", Size: int64(i % 1000)}
		if err := mapper.Save(&obj); err != nil {
			b.Fatal(err)
		}
		s := eng.NewSession()
		s.Assert("Meta", map[string]storage.Value{"id": obj.ID, "size": obj.Size})
		if _, err := s.FireAll(context.Background(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5_Stack_ORMViaBus(b *testing.B) {
	e := storage.MustOpenMemory()
	b.Cleanup(func() { e.Close() })
	mapper, err := orm.NewMapper[benchMeta](e, "meta")
	if err != nil {
		b.Fatal(err)
	}
	esb := bus.New()
	esb.Subscribe("meta.save", func(m *bus.Message) (*bus.Message, error) {
		obj := m.Body.(benchMeta)
		return nil, mapper.Save(&obj)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := esb.Send("meta.save", bus.NewMessage(benchMeta{ID: int64(i), Name: "o"})); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7 / Figure 6: dashboard builds ---

func benchmarkFigure6(b *testing.B, widgets int) {
	e := storage.MustOpenMemory()
	b.Cleanup(func() { e.Close() })
	if _, err := (workload.Healthcare{Rows: 10000}).LoadAdmissions(e, "admissions"); err != nil {
		b.Fatal(err)
	}
	db := sql.NewDB(e)
	all := []report.Element{
		{Kind: "kpi", Title: "P", Query: "SELECT SUM(patients) FROM admissions"},
		{Kind: "chart", Title: "W", Chart: report.ChartBar,
			Query: "SELECT ward, SUM(patients) AS p FROM admissions GROUP BY ward", Label: "ward"},
		{Kind: "chart", Title: "T", Chart: report.ChartLine,
			Query: "SELECT month, SUM(cost) AS c FROM admissions GROUP BY month ORDER BY month", Label: "month"},
		{Kind: "table", Title: "D", Query: "SELECT ward, cost FROM admissions ORDER BY cost DESC", Limit: 20},
		{Kind: "chart", Title: "S", Chart: report.ChartPie,
			Query: "SELECT severity, COUNT(*) AS n FROM admissions GROUP BY severity", Label: "severity"},
		{Kind: "kpi", Title: "A", Query: "SELECT AVG(stay_days) FROM admissions"},
		{Kind: "chart", Title: "SS", Chart: report.ChartBar,
			Query: "SELECT severity, AVG(stay_days) AS d FROM admissions GROUP BY severity", Label: "severity"},
		{Kind: "table", Title: "M", Query: "SELECT month, COUNT(*) AS n FROM admissions GROUP BY month"},
	}
	spec := &report.Spec{Name: "d", Title: "D", Elements: all[:widgets]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := report.Run(context.Background(), report.DBQueryer(db), spec)
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.RenderHTML(&buf, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6_Dashboard_1Widget(b *testing.B)  { benchmarkFigure6(b, 1) }
func BenchmarkFigure6_Dashboard_4Widgets(b *testing.B) { benchmarkFigure6(b, 4) }
func BenchmarkFigure6_Dashboard_8Widgets(b *testing.B) { benchmarkFigure6(b, 8) }

// --- E8 / §3.1 IS: ETL throughput ---

func benchmarkETL(b *testing.B, rows int) {
	csvData := workload.Healthcare{Rows: rows}.AdmissionsCSV()
	b.SetBytes(int64(len(csvData)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := storage.MustOpenMemory()
		pipe := &etl.Pipeline{
			Source: &etl.CSVSource{Data: csvData},
			Transforms: []etl.Transform{
				etl.Filter{Condition: "cost IS NOT NULL"},
				etl.Derive{Field: "cost_per_day", Expression: "cost / stay_days"},
			},
			Sink: &etl.TableSink{Engine: e, Table: "admissions", CreateTable: true},
		}
		if _, _, err := pipe.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

func BenchmarkIS_ETL_1kRows(b *testing.B)  { benchmarkETL(b, 1000) }
func BenchmarkIS_ETL_10kRows(b *testing.B) { benchmarkETL(b, 10000) }

// --- E9 / §3.1 AS: OLAP build + navigation ---

func BenchmarkAS_OLAP_Build100k(b *testing.B) {
	e := benchRetailEngine(b, 100000)
	spec := benchRetailCubeSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := olap.Build(context.Background(), e, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAS_OLAP_GroupByRegion(b *testing.B) {
	e := benchRetailEngine(b, 100000)
	cube, err := olap.Build(context.Background(), e, benchRetailCubeSpec())
	if err != nil {
		b.Fatal(err)
	}
	cube.SetCache(0)
	q := olap.Query{Rows: []olap.LevelRef{{Dimension: "Store", Level: "Region"}}, Measures: []string{"amount"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Execute(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAS_OLAP_DrillThreeAxes(b *testing.B) {
	e := benchRetailEngine(b, 100000)
	cube, err := olap.Build(context.Background(), e, benchRetailCubeSpec())
	if err != nil {
		b.Fatal(err)
	}
	cube.SetCache(0)
	q := olap.Query{
		Rows: []olap.LevelRef{
			{Dimension: "Store", Level: "Region"},
			{Dimension: "Product", Level: "Category"},
			{Dimension: "Date", Level: "Year"},
		},
		Measures: []string{"amount", "qty"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Execute(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10 / §3.1 MDS: metadata operations ---

func BenchmarkMDS_Metadata_CreateRunDelete(b *testing.B) {
	_, sess := benchPlatform(b)
	if _, err := sess.Query(context.Background(), "CREATE TABLE t (x INT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Query(context.Background(), "INSERT INTO t VALUES (1), (2), (3)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("ds-%d", i)
		if err := sess.CreateDataSet(context.Background(), name, "", "SELECT COUNT(*) FROM t", ""); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.RunDataSet(context.Background(), name); err != nil {
			b.Fatal(err)
		}
		if err := sess.DeleteDataSet(context.Background(), name); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A1: index ablation ---

func benchmarkIndexAblation(b *testing.B, disable bool) {
	e := storage.MustOpenMemory()
	b.Cleanup(func() { e.Close() })
	db := sql.NewDB(e)
	if _, err := db.Query("CREATE TABLE ev (id INT PRIMARY KEY, bucket INT, payload TEXT)"); err != nil {
		b.Fatal(err)
	}
	err := e.Update(func(tx *storage.Tx) error {
		for i := 0; i < 50000; i++ {
			if _, err := tx.Insert("ev", storage.Row{int64(i), int64(i % 1000), "x"}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Query("CREATE INDEX ev_bucket ON ev (bucket)"); err != nil {
		b.Fatal(err)
	}
	db.DisableIndexes = disable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM ev WHERE bucket = ?", int64(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Index_Scan(b *testing.B)  { benchmarkIndexAblation(b, true) }
func BenchmarkAblation_Index_Probe(b *testing.B) { benchmarkIndexAblation(b, false) }

// --- A2: cube cache ablation ---

func benchmarkCubeCache(b *testing.B, size int) {
	e := benchRetailEngine(b, 50000)
	cube, err := olap.Build(context.Background(), e, benchRetailCubeSpec())
	if err != nil {
		b.Fatal(err)
	}
	cube.SetCache(size)
	q := olap.Query{
		Rows:     []olap.LevelRef{{Dimension: "Store", Level: "Region"}, {Dimension: "Product", Level: "Category"}},
		Measures: []string{"amount"},
	}
	if _, err := cube.Execute(context.Background(), q); err != nil { // warm
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Execute(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_CubeCache_Off(b *testing.B) { benchmarkCubeCache(b, 0) }
func BenchmarkAblation_CubeCache_On(b *testing.B)  { benchmarkCubeCache(b, 256) }

// --- A3: bus ablation ---

func BenchmarkAblation_Bus_Send(b *testing.B) {
	esb := bus.New()
	esb.Subscribe("work", func(m *bus.Message) (*bus.Message, error) {
		return bus.NewMessage(m.Body.(int) + 1), nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := esb.Send("work", bus.NewMessage(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A4: WAL durability ablation ---

func benchmarkWAL(b *testing.B, mode storage.SyncMode) {
	e, err := storage.Open(storage.Options{Dir: b.TempDir(), Sync: mode})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	schema, _ := storage.NewSchema("ev", []storage.Column{
		{Name: "id", Type: storage.TypeInt},
		{Name: "payload", Type: storage.TypeString},
	})
	if err := e.CreateTable(schema); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := e.Update(func(tx *storage.Tx) error {
			_, err := tx.Insert("ev", storage.Row{int64(i), "payload"})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_WAL_SyncNone(b *testing.B)     { benchmarkWAL(b, storage.SyncNone) }
func BenchmarkAblation_WAL_SyncBuffered(b *testing.B) { benchmarkWAL(b, storage.SyncBuffered) }
func BenchmarkAblation_WAL_SyncFull(b *testing.B)     { benchmarkWAL(b, storage.SyncFull) }

// --- MDDWS extras: XMI round-trip of a realistic model ---

func BenchmarkMDDWS_XMIRoundTrip(b *testing.B) {
	spec := cwm.StarSpec{
		Name: "S",
		Dimensions: []cwm.DimensionSpec{
			{Name: "D1", Levels: []cwm.LevelSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}}},
			{Name: "D2", Levels: []cwm.LevelSpec{{Name: "x"}, {Name: "y"}}},
		},
		Facts: []cwm.FactSpec{{
			Name:       "F",
			Measures:   []cwm.MeasureSpec{{Name: "m1"}, {Name: "m2"}},
			Dimensions: []string{"D1", "D2"},
		}},
	}
	cim, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xml, err := cim.ExportString()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := metamodel.ImportString(cwm.Conceptual, xml); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension benches: ODM semantic alignment, BPM process execution ---

func BenchmarkODM_AlignSchemas(b *testing.B) {
	onto, err := odm.Spec{
		Name:    "o",
		Classes: []odm.ClassSpec{{Name: "Sale"}},
		Properties: []odm.PropertySpec{
			{Name: "revenue", Domain: "Sale", Synonyms: []string{"turnover", "sales_amount"}},
			{Name: "customer", Domain: "Sale", Synonyms: []string{"client", "buyer"}},
		},
	}.Build()
	if err != nil {
		b.Fatal(err)
	}
	mkModel := func(table string, cols []string) *metamodel.Model {
		m := metamodel.NewModel(cwm.Relational)
		tab := m.MustNew("Table").MustSet("name", table)
		for _, c := range cols {
			col := m.MustNew("Column").MustSet("name", c).MustSet("type", "TEXT")
			tab.MustAdd("columns", col)
		}
		return m
	}
	var srcCols, dstCols []string
	for i := 0; i < 30; i++ {
		srcCols = append(srcCols, fmt.Sprintf("col_%02d", i))
		dstCols = append(dstCols, fmt.Sprintf("col_%02d", i))
	}
	srcCols = append(srcCols, "client", "turnover", "ship_datee")
	dstCols = append(dstCols, "customer", "revenue", "ship_date")
	src := mkModel("s", srcCols)
	dst := mkModel("d", dstCols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := odm.AlignSchemas(src, dst, onto, odm.AlignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBPM_ProcessRun(b *testing.B) {
	esb := bus.New()
	esb.Subscribe("scoring", func(m *bus.Message) (*bus.Message, error) {
		return bus.NewMessage(map[string]storage.Value{"score": int64(75)}), nil
	})
	d, err := bpm.Define("approval", "score",
		bpm.Step{Name: "score", Kind: bpm.StepService, Channel: "scoring", Next: "route"},
		bpm.Step{Name: "route", Kind: bpm.StepGateway, Branches: []bpm.Branch{
			{Condition: "score >= 80", To: "approve"},
			{Condition: "score >= 40", To: "review"},
			{To: "reject"},
		}},
		bpm.Step{Name: "approve", Kind: bpm.StepSet, Variable: "outcome", Expression: "'approved'", Next: "done"},
		bpm.Step{Name: "review", Kind: bpm.StepSet, Variable: "outcome", Expression: "'review'", Next: "done"},
		bpm.Step{Name: "reject", Kind: bpm.StepSet, Variable: "outcome", Expression: "'rejected'", Next: "done"},
		bpm.Step{Name: "done", Kind: bpm.StepEnd},
	)
	if err != nil {
		b.Fatal(err)
	}
	eng := &bpm.Engine{Bus: esb}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), d, map[string]storage.Value{"amount": float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
