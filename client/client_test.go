package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/odbis/odbis/internal/fault"
	"github.com/odbis/odbis/internal/netsrv"
	"github.com/odbis/odbis/internal/security"
	"github.com/odbis/odbis/internal/server"
	"github.com/odbis/odbis/internal/services"
	"github.com/odbis/odbis/internal/storage"
	"github.com/odbis/odbis/internal/tenant"
)

// newTestStack boots an in-memory platform with a protocol listener
// and returns the listener address plus a designer user's token.
func newTestStack(t *testing.T, opts netsrv.Options) (net.Addr, string) {
	t.Helper()
	e := storage.MustOpenMemory()
	t.Cleanup(func() { e.Close() })
	reg, err := tenant.NewRegistry(e)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := security.NewManager(e, security.Options{HashIterations: 8, TokenSecret: []byte("test")})
	if err != nil {
		t.Fatal(err)
	}
	p := services.NewPlatform(reg, sec)
	if err := p.Bootstrap("root", "toor"); err != nil {
		t.Fatal(err)
	}
	root, _, err := p.Login("root", "toor")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := root.CreateTenant(ctx, "acme", "Acme", "standard"); err != nil {
		t.Fatal(err)
	}
	if err := root.CreateUser(ctx, security.UserSpec{
		Username: "ada", Password: "pw", Tenant: "acme",
		Roles: []string{services.RoleDesigner},
	}); err != nil {
		t.Fatal(err)
	}
	_, token, err := p.Login("ada", "pw")
	if err != nil {
		t.Fatal(err)
	}
	srv := netsrv.New(p, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, token
}

func TestDialQueryClose(t *testing.T) {
	addr, token := newTestStack(t, netsrv.Options{})
	c, err := Dial(Config{Addr: addr.String(), Token: token})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Tenant() != "acme" {
		t.Fatalf("tenant = %q, want acme", c.Tenant())
	}
	ctx := context.Background()
	if _, err := c.Query(ctx, "CREATE TABLE t (a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, "INSERT INTO t (a, b) VALUES (?, ?)", int64(1), "x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	res, err = c.Query(ctx, "SELECT a, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || len(res.Rows) != 1 || res.Rows[0][0] != int64(1) || res.Rows[0][1] != "x" {
		t.Fatalf("result = %+v", res)
	}
}

func TestDialBadToken(t *testing.T) {
	addr, _ := newTestStack(t, netsrv.Options{})
	_, err := Dial(Config{Addr: addr.String(), Token: "bogus"})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != 401 {
		t.Fatalf("err = %v, want ServerError 401", err)
	}
}

func TestServerErrorDoesNotPoisonConnection(t *testing.T) {
	addr, token := newTestStack(t, netsrv.Options{})
	c, err := Dial(Config{Addr: addr.String(), Token: token, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	_, err = c.Query(ctx, "SELECT nope FROM missing")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ServerError", err)
	}
	// Same (sole) connection serves the next request fine.
	if _, err := c.Query(ctx, "CREATE TABLE ok (i INT)"); err != nil {
		t.Fatal(err)
	}
}

func TestBusyErrorSurfacesBackoff(t *testing.T) {
	adm := server.NewAdmission(1, 0)
	addr, token := newTestStack(t, netsrv.Options{Admission: adm, RetryBackoff: 300 * time.Millisecond})
	c, err := Dial(Config{Addr: addr.String(), Token: token, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ok, _ := adm.Acquire(context.Background())
	if !ok {
		t.Fatal("could not saturate admission")
	}
	_, err = c.Query(context.Background(), "SELECT 1")
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BusyError", err)
	}
	if be.Backoff != 300*time.Millisecond {
		t.Fatalf("backoff = %v", be.Backoff)
	}
	adm.Release()
	// A shed request is not a broken connection: the pool reuses it.
	if _, err := c.Query(context.Background(), "CREATE TABLE ok (i INT)"); err != nil {
		t.Fatal(err)
	}
}

// TestIdempotentReadRetriesOnFreshConnection kills the pooled
// connection under the client's feet; the next SELECT must transparently
// land on a fresh connection, while a write must surface the failure.
func TestIdempotentReadRetriesOnFreshConnection(t *testing.T) {
	addr, token := newTestStack(t, netsrv.Options{})
	c, err := Dial(Config{Addr: addr.String(), Token: token, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Query(ctx, "CREATE TABLE r (i INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "INSERT INTO r (i) VALUES (?)", int64(7)); err != nil {
		t.Fatal(err)
	}

	// Poison the pooled socket from the client side: the server never
	// executed anything, the next use just fails at the transport.
	c.mu.Lock()
	c.idle[0].conn.Close()
	c.mu.Unlock()

	res, err := c.Query(ctx, "SELECT i FROM r")
	if err != nil {
		t.Fatalf("read did not retry: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(7) {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Same poisoning, but a write: no auto-retry.
	c.mu.Lock()
	c.idle[0].conn.Close()
	c.mu.Unlock()
	if _, err := c.Query(ctx, "INSERT INTO r (i) VALUES (?)", int64(8)); err == nil {
		t.Fatal("write after transport failure must error, not silently retry")
	}
}

// TestHealthCheckedCheckout proves a connection idle beyond MaxIdleTime
// is ping-verified (and replaced when dead) before carrying a request.
func TestHealthCheckedCheckout(t *testing.T) {
	addr, token := newTestStack(t, netsrv.Options{})
	c, err := Dial(Config{Addr: addr.String(), Token: token, MaxConns: 1, MaxIdleTime: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Query(ctx, "CREATE TABLE h (i INT)"); err != nil {
		t.Fatal(err)
	}
	// Kill the idle connection; with MaxIdleTime=1ns every checkout
	// health-checks, discovers the corpse, and dials fresh — so the
	// query below succeeds without ever seeing the dead socket.
	c.mu.Lock()
	c.idle[0].conn.Close()
	c.mu.Unlock()
	time.Sleep(time.Millisecond)
	if _, err := c.Query(ctx, "INSERT INTO h (i) VALUES (?)", int64(1)); err != nil {
		t.Fatalf("health-checked checkout failed: %v", err)
	}
}

func TestPing(t *testing.T) {
	addr, token := newTestStack(t, netsrv.Options{})
	c, err := Dial(Config{Addr: addr.String(), Token: token})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCallDeadline(t *testing.T) {
	addr, token := newTestStack(t, netsrv.Options{})
	c, err := Dial(Config{Addr: addr.String(), Token: token, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Hold the server's request path with a delay fault, then issue a
	// query under a short context deadline: the socket deadline trips
	// and the call comes back instead of hanging.
	if err := fault.Arm(fault.NetsrvSession, fault.Behavior{Mode: fault.ModeDelay, Delay: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Query(ctx, "CREATE TABLE d (i INT)")
	if err == nil {
		t.Fatal("want deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call took %v, deadline did not bite", elapsed)
	}
}

func TestClosedClient(t *testing.T) {
	addr, token := newTestStack(t, netsrv.Options{})
	c, err := Dial(Config{Addr: addr.String(), Token: token})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Query(context.Background(), "SELECT 1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestBoundedPoolUnderConcurrency hammers a small pool from many
// goroutines; every request must complete and the pool must never
// exceed its bound (enforced structurally by the slot channel — this
// test proves liveness under contention, and runs under -race in CI).
func TestBoundedPoolUnderConcurrency(t *testing.T) {
	addr, token := newTestStack(t, netsrv.Options{})
	c, err := Dial(Config{Addr: addr.String(), Token: token, MaxConns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Query(ctx, "CREATE TABLE load (w INT, i INT)"); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 10, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := c.Query(ctx, "INSERT INTO load (w, i) VALUES (?, ?)", int64(w), int64(i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, "SELECT COUNT(*) FROM load")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(workers*perWorker) {
		t.Fatalf("count = %v, want %d", res.Rows[0][0], workers*perWorker)
	}
}
