// Package client is the first-class programmatic consumer of an ODBIS
// platform: a connection-pooled client for the binary wire protocol
// (internal/proto) served by -listen-proto.
//
// Where the HTTP API pays connection setup, JSON codec and token
// verification per request, a pooled client pays the handshake once
// per connection and rides persistent sessions afterwards:
//
//	c, err := client.Dial(client.Config{Addr: "host:9091", Token: token})
//	defer c.Close()
//	res, err := c.Query(ctx, "SELECT ward, SUM(patients) FROM admissions GROUP BY ward")
//
// Pool semantics:
//
//   - The pool is bounded (MaxConns): at most that many connections
//     exist, and callers beyond it wait for a checkout or their
//     context, whichever ends first.
//   - Checkout is health-checked: a connection idle longer than
//     MaxIdleTime is ping-verified before reuse, so a silently dead
//     socket (server restart, NAT timeout) is discovered at checkout
//     rather than surfacing as a failed query.
//   - Every call takes a deadline from its context (plus the optional
//     CallTimeout floor), enforced on the socket itself.
//   - Idempotent reads (SELECT/EXPLAIN) that fail on a transport error
//     are retried once on a fresh connection; writes are never
//     auto-retried (the frames may have reached the server).
//   - A RETRY frame (admission control shed the request) surfaces as
//     *BusyError with the server's backoff hint — like a 503, honoring
//     it is the caller's decision, so the client does not sleep-retry
//     on its own.
//
// The client launches no goroutines and is safe for concurrent use.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/odbis/odbis/internal/proto"
	"github.com/odbis/odbis/internal/storage"
)

// Config configures a pooled client.
type Config struct {
	// Addr is the platform's -listen-proto address (host:port).
	Addr string
	// Token is the bearer token presented in the handshake — the same
	// token POST /api/login returns.
	Token string
	// MaxConns bounds the pool (default 4).
	MaxConns int
	// DialTimeout bounds connection establishment including the
	// handshake (default 5s).
	DialTimeout time.Duration
	// CallTimeout, when set, caps each call even if the caller's
	// context carries no deadline.
	CallTimeout time.Duration
	// MaxIdleTime is how long a pooled connection may sit unused before
	// checkout ping-verifies it (default 30s; 0 uses the default,
	// negative disables the check).
	MaxIdleTime time.Duration
	// MaxFrame bounds inbound frame payloads (default proto's).
	MaxFrame int
}

// Result is one query's complete result set.
type Result struct {
	Columns  []string
	Rows     []storage.Row
	Affected int
	// Plan is the server's access-path description for the outermost
	// table, as in the HTTP result shape.
	Plan string
}

// ServerError is a failure reported by the platform (an ERROR frame).
// Code carries the same HTTP-equivalent status the JSON API would
// return for the identical request.
type ServerError struct {
	Code    int
	Message string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("odbis: server error %d: %s", e.Code, e.Message)
}

// BusyError is an admission-control rejection (a RETRY frame): the
// platform shed the request before executing it. Backoff is the
// server's hint; the request may be retried after it.
type BusyError struct {
	Backoff time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("odbis: server at capacity, retry after %v", e.Backoff)
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("odbis: client closed")

// errGoAway marks a server-initiated drain observed mid-call.
var errGoAway = errors.New("odbis: server sent GOAWAY")

// Client is a bounded pool of authenticated protocol connections.
type Client struct {
	cfg Config
	// slots bounds total live connections: a token is held for every
	// checked-out OR idle connection's caller; acquiring one is the
	// right to dial if the idle stack is empty.
	slots chan struct{}

	mu     sync.Mutex
	idle   []*poolConn // LIFO: most recently used first, stays warm
	closed bool

	// tenant is the identity the server confirmed in the first WELCOME.
	tenantOnce sync.Once
	tenant     string
}

// poolConn is one authenticated connection. It is owned by exactly one
// caller between checkout and checkin, so its state needs no lock.
type poolConn struct {
	conn     net.Conn
	w        *proto.Writer
	r        *proto.Reader
	buf      []byte // reused encode buffer
	nextID   uint32
	lastUsed time.Time
}

// Dial validates the configuration and establishes (and pools) one
// connection eagerly, so a bad address or token fails here rather than
// on the first query.
func Dial(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("odbis: Config.Addr is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 4
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.MaxIdleTime == 0 {
		cfg.MaxIdleTime = 30 * time.Second
	}
	c := &Client{cfg: cfg, slots: make(chan struct{}, cfg.MaxConns)}
	pc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.idle = append(c.idle, pc)
	c.mu.Unlock()
	return c, nil
}

// Tenant returns the tenant identity the server confirmed during the
// first handshake ("" before any connection succeeded).
func (c *Client) Tenant() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenant
}

// Close tears down idle connections and marks the client closed.
// Checked-out connections are closed as they come back.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, pc := range idle {
		pc.goodbye()
	}
	return nil
}

// Query runs one statement and returns its complete result. Idempotent
// reads (SELECT/EXPLAIN) are retried once on a fresh connection after
// a transport failure; server-reported errors are never retried.
func (c *Client) Query(ctx context.Context, sqlText string, args ...storage.Value) (*Result, error) {
	res, err := c.do(ctx, sqlText, args)
	if err != nil && retriableRead(sqlText, err) && ctx.Err() == nil {
		res, err = c.do(ctx, sqlText, args)
	}
	return res, err
}

// Ping round-trips a keepalive frame on a pooled connection.
func (c *Client) Ping(ctx context.Context) error {
	pc, err := c.checkout(ctx)
	if err != nil {
		return err
	}
	if err := pc.applyDeadline(ctx, c.cfg.CallTimeout); err != nil {
		c.checkin(pc, false)
		return err
	}
	err = pc.ping()
	c.checkin(pc, err == nil)
	return err
}

// retriableRead reports whether the statement is an idempotent read
// whose failure mode was transport-level (the request may never have
// executed, and re-executing is harmless even if it did). Server
// ERROR and RETRY responses are deterministic answers, not transport
// failures, and are never retried here.
func retriableRead(sqlText string, err error) bool {
	var se *ServerError
	var be *BusyError
	if errors.As(err, &se) || errors.As(err, &be) || errors.Is(err, ErrClosed) {
		return false
	}
	head := strings.ToUpper(strings.TrimSpace(sqlText))
	return strings.HasPrefix(head, "SELECT") || strings.HasPrefix(head, "EXPLAIN")
}

// do runs one query attempt over one checked-out connection.
func (c *Client) do(ctx context.Context, sqlText string, args []storage.Value) (*Result, error) {
	pc, err := c.checkout(ctx)
	if err != nil {
		return nil, err
	}
	if err := pc.applyDeadline(ctx, c.cfg.CallTimeout); err != nil {
		c.checkin(pc, false)
		return nil, err
	}
	res, err := pc.query(sqlText, args)
	if err != nil {
		// The connection survives only server-level answers; any
		// transport or framing error poisons it.
		var se *ServerError
		var be *BusyError
		healthy := errors.As(err, &se) || errors.As(err, &be)
		c.checkin(pc, healthy)
		return nil, err
	}
	c.checkin(pc, true)
	return res, nil
}

// checkout acquires a pool slot and returns a healthy connection:
// the most recently used idle one (ping-verified when it sat idle too
// long) or a freshly dialed one.
func (c *Client) checkout(ctx context.Context) (*poolConn, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	select {
	case c.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	// Slot held from here: every return path either hands the caller a
	// connection (checkin releases) or releases the slot itself.
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			<-c.slots
			return nil, ErrClosed
		}
		var pc *poolConn
		if n := len(c.idle); n > 0 {
			pc = c.idle[n-1]
			c.idle = c.idle[:n-1]
		}
		c.mu.Unlock()
		if pc == nil {
			break
		}
		if c.cfg.MaxIdleTime > 0 && time.Since(pc.lastUsed) > c.cfg.MaxIdleTime {
			// Health check: a stale connection must prove liveness
			// before it may carry a request.
			pc.conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
			if pc.ping() != nil {
				pc.conn.Close()
				continue // next idle candidate, or dial fresh
			}
		}
		return pc, nil
	}
	pc, err := c.dial()
	if err != nil {
		<-c.slots
		return nil, err
	}
	return pc, nil
}

// checkin returns a connection to the pool (healthy) or discards it
// (broken), releasing the caller's slot either way.
func (c *Client) checkin(pc *poolConn, healthy bool) {
	pc.lastUsed = time.Now()
	pc.conn.SetDeadline(time.Time{})
	c.mu.Lock()
	if healthy && !c.closed {
		c.idle = append(c.idle, pc)
		c.mu.Unlock()
		<-c.slots
		return
	}
	c.mu.Unlock()
	if healthy {
		pc.goodbye()
	} else {
		pc.conn.Close()
	}
	<-c.slots
}

// dial establishes and authenticates one connection.
func (c *Client) dial() (*poolConn, error) {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	pc := &poolConn{conn: conn, w: proto.NewWriter(conn), r: proto.NewReader(conn)}
	if c.cfg.MaxFrame > 0 {
		pc.r.SetMaxFrame(c.cfg.MaxFrame)
	}
	pc.buf = proto.AppendHello(pc.buf[:0], c.cfg.Token)
	if err := pc.writeFrame(proto.FrameHello, pc.buf); err != nil {
		conn.Close()
		return nil, err
	}
	ft, payload, err := pc.r.ReadFrame()
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch ft {
	case proto.FrameWelcome:
		tenantID, err := proto.ParseWelcome(payload)
		if err != nil {
			conn.Close()
			return nil, err
		}
		c.rememberTenant(tenantID)
	case proto.FrameError:
		_, code, msg, perr := proto.ParseError(payload)
		conn.Close()
		if perr != nil {
			return nil, perr
		}
		return nil, &ServerError{Code: int(code), Message: msg}
	case proto.FrameGoAway:
		reason, _ := proto.ParseGoAway(payload)
		conn.Close()
		return nil, fmt.Errorf("odbis: server refused session: %s", reason)
	default:
		conn.Close()
		return nil, fmt.Errorf("odbis: unexpected %v during handshake", ft)
	}
	conn.SetDeadline(time.Time{})
	pc.lastUsed = time.Now()
	return pc, nil
}

func (c *Client) rememberTenant(id string) {
	c.tenantOnce.Do(func() {
		c.mu.Lock()
		c.tenant = id
		c.mu.Unlock()
	})
}

// applyDeadline pushes the tighter of the context deadline and the
// call-timeout floor down onto the socket, so a stalled server cannot
// hold a call past its budget.
func (pc *poolConn) applyDeadline(ctx context.Context, callTimeout time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	deadline := time.Time{}
	if callTimeout > 0 {
		deadline = time.Now().Add(callTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	return pc.conn.SetDeadline(deadline)
}

func (pc *poolConn) writeFrame(ft proto.FrameType, payload []byte) error {
	if err := pc.w.WriteFrame(ft, payload); err != nil {
		return err
	}
	return pc.w.Flush()
}

// query sends one QUERY frame and consumes its full response stream.
func (pc *poolConn) query(sqlText string, args []storage.Value) (*Result, error) {
	pc.nextID++
	id := pc.nextID
	var err error
	if pc.buf, err = proto.AppendQuery(pc.buf[:0], id, sqlText, args); err != nil {
		return nil, err
	}
	if err := pc.writeFrame(proto.FrameQuery, pc.buf); err != nil {
		return nil, err
	}
	res := &Result{}
	for {
		ft, payload, err := pc.r.ReadFrame()
		if err != nil {
			return nil, err
		}
		switch ft {
		case proto.FrameResultHeader:
			gotID, cols, err := proto.ParseResultHeader(payload)
			if err != nil {
				return nil, err
			}
			if gotID != id {
				return nil, fmt.Errorf("odbis: response for request %d, expected %d", gotID, id)
			}
			res.Columns = cols
		case proto.FrameResultChunk:
			gotID, rows, err := proto.ParseRows(payload)
			if err != nil {
				return nil, err
			}
			if gotID != id {
				return nil, fmt.Errorf("odbis: chunk for request %d, expected %d", gotID, id)
			}
			res.Rows = append(res.Rows, rows...)
		case proto.FrameResultDone:
			gotID, affected, _, plan, err := proto.ParseDone(payload)
			if err != nil {
				return nil, err
			}
			if gotID != id {
				return nil, fmt.Errorf("odbis: done for request %d, expected %d", gotID, id)
			}
			res.Affected = int(affected)
			res.Plan = plan
			return res, nil
		case proto.FrameError:
			_, code, msg, perr := proto.ParseError(payload)
			if perr != nil {
				return nil, perr
			}
			return nil, &ServerError{Code: int(code), Message: msg}
		case proto.FrameRetry:
			_, backoff, perr := proto.ParseRetry(payload)
			if perr != nil {
				return nil, perr
			}
			return nil, &BusyError{Backoff: backoff}
		case proto.FrameGoAway:
			return nil, errGoAway
		default:
			return nil, fmt.Errorf("odbis: unexpected %v frame", ft)
		}
	}
}

// ping round-trips a PING frame.
func (pc *poolConn) ping() error {
	const probe = "hc"
	if err := pc.writeFrame(proto.FramePing, []byte(probe)); err != nil {
		return err
	}
	for {
		ft, payload, err := pc.r.ReadFrame()
		if err != nil {
			return err
		}
		switch ft {
		case proto.FramePong:
			if string(payload) != probe {
				return errors.New("odbis: pong payload mismatch")
			}
			return nil
		case proto.FrameGoAway:
			return errGoAway
		default:
			return fmt.Errorf("odbis: unexpected %v frame awaiting PONG", ft)
		}
	}
}

// goodbye announces a graceful close before closing the socket.
func (pc *poolConn) goodbye() {
	pc.conn.SetDeadline(time.Now().Add(time.Second))
	pc.writeFrame(proto.FrameGoAway, proto.AppendGoAway(nil, "client closing"))
	pc.conn.Close()
}
