module github.com/odbis/odbis

go 1.22
