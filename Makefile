.PHONY: build test vet vet-fix perf-gate ci bench

build:
	go build ./...

test:
	go test ./...

# vet runs both the stock Go checks and the ODBIS platform-invariant
# analyzers (tenant isolation, layer DAG, lock discipline, release
# paths, hot-path allocations, ...).
vet:
	go vet ./...
	go run ./cmd/odbis-vet ./...

# vet-fix applies every safe SuggestedFix (error renames, copy-on-return
# aliases, slice preallocation in hot loops) in place, then re-runs the
# suite to show what remains for hand-fixing.
vet-fix:
	go run ./cmd/odbis-vet -fix ./...

# perf-gate re-benches and diffs against scripts/perf_budget.json.
perf-gate:
	BENCH_OUT=/tmp/odbis_bench_fresh.json sh scripts/bench.sh
	sh scripts/perf_gate.sh /tmp/odbis_bench_fresh.json

ci:
	sh scripts/ci.sh

bench:
	go run ./cmd/odbis-bench
