.PHONY: build test vet ci bench

build:
	go build ./...

test:
	go test ./...

# vet runs both the stock Go checks and the ODBIS platform-invariant
# analyzers (tenant isolation, layer DAG, lock discipline, ...).
vet:
	go vet ./...
	go run ./cmd/odbis-vet ./...

ci:
	sh scripts/ci.sh

bench:
	go run ./cmd/odbis-bench
