.PHONY: build test vet vet-fix fmt-check perf-gate ci bench

build:
	go build ./...

test:
	go test ./...

# vet runs both the stock Go checks and the ODBIS platform-invariant
# analyzers (tenant isolation, layer DAG, lock discipline, release
# paths, hot-path allocations, ...).
vet:
	go vet ./...
	go run ./cmd/odbis-vet ./...

# vet-fix applies every safe SuggestedFix (error renames, copy-on-return
# aliases, slice preallocation in hot loops) in place, then re-runs the
# suite to show what remains for hand-fixing.
vet-fix:
	go run ./cmd/odbis-vet -fix ./...

# fmt-check is the same first-stage gate ci.sh runs: gofmt drift
# (fixtures under testdata exempt) plus the stock go vet checks.
fmt-check:
	@unformatted="$$(gofmt -l . | grep -v '/testdata/' || true)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	go vet ./...

# perf-gate re-benches and diffs against scripts/perf_budget.json.
perf-gate:
	BENCH_OUT=/tmp/odbis_bench_fresh.json sh scripts/bench.sh
	sh scripts/perf_gate.sh /tmp/odbis_bench_fresh.json

ci:
	sh scripts/ci.sh

bench:
	go run ./cmd/odbis-bench
