package odbis

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/odbis/odbis/internal/etl"
	"github.com/odbis/odbis/internal/mddws"
)

// TestDesignerProjectFlow drives the MDDWS project service through the
// public façade: project → conceptual model → 2TUP process → build →
// deploy into a tenant.
func TestDesignerProjectFlow(t *testing.T) {
	p := openPlatform(t)
	admin, _, _ := p.Login("admin", "admin")
	admin.CreateTenant(context.Background(), "dw", "DW Inc", "enterprise")
	admin.CreateUser(context.Background(), UserSpec{Username: "arch", Password: "pw", Tenant: "dw", Roles: []string{RoleDesigner}})
	arch, _, err := p.Login("arch", "pw")
	if err != nil {
		t.Fatal(err)
	}

	svc := p.Designer()
	if _, err := svc.CreateProject("warehouse", "dw"); err != nil {
		t.Fatal(err)
	}
	cim, err := StarSpec{
		Name: "Ops",
		Dimensions: []StarDimensionSpec{
			{Name: "Team", Levels: []StarLevelSpec{{Name: "Team"}}},
		},
		Facts: []FactSpec{{
			Name:       "Tickets",
			Measures:   []StarMeasureSpec{{Name: "count_open", Aggregation: "sum"}},
			Dimensions: []string{"Team"},
		}},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SaveConceptualModel("warehouse", cim); err != nil {
		t.Fatal(err)
	}
	run, err := svc.StartProcess("warehouse")
	if err != nil {
		t.Fatal(err)
	}
	if run.Done() {
		t.Fatal("fresh process already done")
	}
	result, err := svc.Build("warehouse")
	if err != nil {
		t.Fatal(err)
	}
	if !run.Done() {
		t.Error("Build did not drive the 2TUP run")
	}
	n, err := svc.Deploy(context.Background(), "warehouse", result, arch.Catalog)
	if err != nil || n != 2 {
		t.Fatalf("deploy: %v n=%d", err, n)
	}
	proj, _ := svc.Project("warehouse")
	if proj.Phase != "transition" {
		t.Errorf("phase = %s", proj.Phase)
	}
	if !arch.Catalog.HasTable("fact_tickets") {
		t.Errorf("generated table missing; tenant tables: %v", arch.Catalog.Tables())
	}
	// Generated load plan can be completed into a runnable job through
	// the public facade types.
	job, err := mddws.BuildLoadJob(mddws.LoadJobConfig{
		Plan:     result.Artifacts.LoadPlans[0],
		Source:   &etl.SliceSource{Records: []etl.Record{{"team_id": int64(1), "count_open": 3.0}}},
		Engine:   p.engine,
		TableFor: arch.Catalog.Physical,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Run(context.Background()).Err(); err != nil {
		t.Fatal(err)
	}
	res, err := arch.Query(context.Background(), "SELECT SUM(count_open) FROM fact_tickets")
	if err != nil || res.Rows[0][0] != 3.0 {
		t.Errorf("loaded fact = %v (%v)", res.Rows, err)
	}
}

func TestDeliverFormatsPublicAPI(t *testing.T) {
	p := openPlatform(t)
	admin, _, _ := p.Login("admin", "admin")
	admin.CreateTenant(context.Background(), "acme", "A", "standard")
	admin.CreateUser(context.Background(), UserSpec{Username: "u", Password: "pw", Tenant: "acme", Roles: []string{RoleDesigner}})
	u, _, _ := p.Login("u", "pw")
	u.Query(context.Background(), "CREATE TABLE s (g TEXT, v INT)")
	u.Query(context.Background(), "INSERT INTO s VALUES ('a', 1), ('b', 2)")
	out, err := u.RunAdHoc(context.Background(), &ReportSpec{
		Name: "r",
		Elements: []ReportElement{
			{Kind: "table", Title: "T", Query: "SELECT g, v FROM s ORDER BY g"},
			{Kind: "chart", Title: "C", Chart: ChartPie,
				Query: "SELECT g, SUM(v) AS v FROM s GROUP BY g", Label: "g"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wants := map[DeliveryFormat]string{
		FormatText: "T",
		FormatHTML: "<svg",
		FormatCSV:  "g,v",
		FormatJSON: `"name": "r"`,
	}
	for f, want := range wants {
		var buf bytes.Buffer
		if err := Deliver(&buf, f, out); err != nil {
			t.Fatalf("deliver %s: %v", f, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("format %s missing %q", f, want)
		}
	}
}

func TestBuildStarErrors(t *testing.T) {
	// A fact without measures violates the conceptual metamodel.
	if _, err := BuildStar(StarSpec{
		Name:       "Bad",
		Dimensions: []StarDimensionSpec{{Name: "D", Levels: []StarLevelSpec{{Name: "L"}}}},
		Facts:      []FactSpec{{Name: "F", Dimensions: []string{"D"}}},
	}); err == nil {
		t.Error("fact without measures accepted")
	}
	if _, err := BuildStar(StarSpec{
		Name:  "Bad2",
		Facts: []FactSpec{{Name: "F", Measures: []StarMeasureSpec{{Name: "m"}}, Dimensions: []string{"Ghost"}}},
	}); err == nil {
		t.Error("unknown dimension accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	// Opening over a file (not a directory) fails cleanly.
	if _, err := Open(Options{DataDir: "/dev/null/impossible"}); err == nil {
		t.Error("bad data dir accepted")
	}
}

func TestPlatformCheckpointAndReopenKeepsDesigns(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Options{DataDir: dir, TokenSecret: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	svc := p.Designer()
	if _, err := svc.CreateProject("proj", "none"); err != nil {
		t.Fatal(err)
	}
	cim, _ := StarSpec{
		Name:       "S",
		Dimensions: []StarDimensionSpec{{Name: "D", Levels: []StarLevelSpec{{Name: "L"}}}},
		Facts:      []FactSpec{{Name: "F", Measures: []StarMeasureSpec{{Name: "m"}}, Dimensions: []string{"D"}}},
	}.Build()
	if err := svc.SaveConceptualModel("proj", cim); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(Options{DataDir: dir, TokenSecret: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	restored, err := p2.Designer().ConceptualModel("proj")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := restored.FindByName("FactConcept", "F"); !ok {
		t.Error("design lost across restart")
	}
}

func TestEventsThroughPublicFacade(t *testing.T) {
	p := openPlatform(t)
	var kinds []string
	p.OnEvent(func(kind, tenant, subject string) {
		kinds = append(kinds, kind)
	})
	admin, _, _ := p.Login("admin", "admin")
	admin.CreateTenant(context.Background(), "evt", "E", "free")
	if len(kinds) == 0 || kinds[0] != "tenant.created" {
		t.Errorf("events = %v", kinds)
	}
}
