package odbis

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runPerfGate shells the real gate script against a synthetic fresh
// file and budget so regressions in the awk join are caught by go test,
// not by a silently green CI stage.
func runPerfGate(t *testing.T, fresh, budget string) (output string, exitCode int) {
	t.Helper()
	dir := t.TempDir()
	freshPath := filepath.Join(dir, "fresh.json")
	budgetPath := filepath.Join(dir, "budget.json")
	if err := os.WriteFile(freshPath, []byte(fresh), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(budgetPath, []byte(budget), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("sh", "scripts/perf_gate.sh", freshPath, budgetPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("perf_gate.sh did not run: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

const gateBudget = `[
  {"name": "BenchmarkPresent", "max_ns_per_op": 100, "why": "test row"},
  {"name": "BenchmarkGone", "max_ns_per_op": 100, "why": "test row"}
]`

// TestPerfGateMissingBenchmark: a gated benchmark absent from the fresh
// output must fail the gate — a deleted benchmark is a silently dropped
// performance contract, not a pass.
func TestPerfGateMissingBenchmark(t *testing.T) {
	fresh := `[
  {"name": "BenchmarkPresent", "iterations": 100, "ns_per_op": 50}
]`
	out, code := runPerfGate(t, fresh, gateBudget)
	if code == 0 {
		t.Fatalf("gate passed with a gated benchmark missing:\n%s", out)
	}
	if !strings.Contains(out, "MISSING") || !strings.Contains(out, "BenchmarkGone") {
		t.Errorf("missing-benchmark diagnostic absent:\n%s", out)
	}
}

// TestPerfGateEmptyFresh: an empty fresh file means the bench run
// produced nothing — the gate must hard-fail rather than vacuously pass
// (the historical bug: file classification by "first line seen" let an
// empty fresh file shift the budget into the fresh slot).
func TestPerfGateEmptyFresh(t *testing.T) {
	out, code := runPerfGate(t, "", gateBudget)
	if code == 0 {
		t.Fatalf("gate passed on an empty fresh file:\n%s", out)
	}
	if !strings.Contains(out, "no benchmarks parsed") {
		t.Errorf("empty-fresh diagnostic absent:\n%s", out)
	}
}

// TestPerfGateWithinBudget: the happy path still passes and reports
// every gated row.
func TestPerfGateWithinBudget(t *testing.T) {
	fresh := `[
  {"name": "BenchmarkPresent", "iterations": 100, "ns_per_op": 50},
  {"name": "BenchmarkGone", "iterations": 100, "ns_per_op": 99}
]`
	out, code := runPerfGate(t, fresh, gateBudget)
	if code != 0 {
		t.Fatalf("gate failed within budget (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "all 2 gated benchmarks within budget") {
		t.Errorf("pass summary absent:\n%s", out)
	}
}

// TestPerfGateTailCeiling: the max_p99_ns column (reported by the load
// harness) gates tail latency with the same tolerance as ns_per_op, and
// a gated row whose fresh run lacks the metric hard-fails rather than
// silently passing.
func TestPerfGateTailCeiling(t *testing.T) {
	budget := `[
  {"name": "BenchmarkLoad", "max_p99_ns": 1000000, "why": "tail row"}
]`
	ok := `[
  {"name": "BenchmarkLoad", "iterations": 100, "ns_per_op": 50, "p99_ns": 900000}
]`
	out, code := runPerfGate(t, ok, budget)
	if code != 0 {
		t.Fatalf("gate failed within p99 budget (exit %d):\n%s", code, out)
	}
	over := `[
  {"name": "BenchmarkLoad", "iterations": 100, "ns_per_op": 50, "p99_ns": 9000000}
]`
	out, code = runPerfGate(t, over, budget)
	if code == 0 {
		t.Fatalf("gate passed over p99 budget:\n%s", out)
	}
	if !strings.Contains(out, "TAIL") {
		t.Errorf("tail diagnostic absent:\n%s", out)
	}
	missing := `[
  {"name": "BenchmarkLoad", "iterations": 100, "ns_per_op": 50}
]`
	out, code = runPerfGate(t, missing, budget)
	if code == 0 {
		t.Fatalf("gate passed with p99 gated but unreported:\n%s", out)
	}
	if !strings.Contains(out, "MISSING") {
		t.Errorf("missing-p99 diagnostic absent:\n%s", out)
	}
}

// TestPerfGateOverBudget: exceeding a ceiling (after tolerance) fails.
func TestPerfGateOverBudget(t *testing.T) {
	fresh := `[
  {"name": "BenchmarkPresent", "iterations": 100, "ns_per_op": 50000},
  {"name": "BenchmarkGone", "iterations": 100, "ns_per_op": 99}
]`
	out, code := runPerfGate(t, fresh, gateBudget)
	if code == 0 {
		t.Fatalf("gate passed over budget:\n%s", out)
	}
	if !strings.Contains(out, "OVER") || !strings.Contains(out, "BenchmarkPresent") {
		t.Errorf("over-budget diagnostic absent:\n%s", out)
	}
}
