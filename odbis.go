// Package odbis is the public API of the ODBIS platform — an open-source
// infrastructure to build and deliver On-Demand Business Intelligence
// Services, reproducing Essaidi's EDBT 2010 architecture as a
// self-contained Go library.
//
// A Platform bundles the five-layer SaaS architecture of the paper:
//
//	technical resources   — embedded storage engine, SQL, OLAP, ETL,
//	                        rules and bus substrates
//	design & management   — MDDWS: model-driven DW design (CWM/MDA/2TUP)
//	administration        — tenants, plans, users/groups/roles/authorities
//	core BI services      — metadata, integration, analysis, reporting,
//	                        information delivery
//	end-user access       — HTTP/JSON + HTML dashboards (Handler)
//
// Quickstart:
//
//	p, err := odbis.Open(odbis.Options{})          // in-memory platform
//	defer p.Close()
//	admin, _, _ := p.Login("admin", "admin")       // bootstrap credentials
//	admin.CreateTenant("acme", "Acme Corp", "standard")
//	admin.CreateUser(odbis.UserSpec{Username: "ada", Password: "pw",
//	    Tenant: "acme", Roles: []string{odbis.RoleDesigner}})
//	ada, _, _ := p.Login("ada", "pw")
//	ada.Query("CREATE TABLE sales (region TEXT, amount FLOAT)")
//
// See the examples directory for complete scenarios: quickstart, the
// paper's healthcare dashboard (Fig. 6), a retail ETL→OLAP pipeline, a
// full model-driven DW build, and ontology-driven semantic integration.
package odbis

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/odbis/odbis/internal/mddws"
	"github.com/odbis/odbis/internal/metamodel"
	"github.com/odbis/odbis/internal/metamodel/cwm"
	"github.com/odbis/odbis/internal/metamodel/odm"
	"github.com/odbis/odbis/internal/netsrv"
	"github.com/odbis/odbis/internal/obs"
	"github.com/odbis/odbis/internal/olap"
	"github.com/odbis/odbis/internal/replica"
	"github.com/odbis/odbis/internal/report"
	"github.com/odbis/odbis/internal/security"
	"github.com/odbis/odbis/internal/server"
	"github.com/odbis/odbis/internal/services"
	"github.com/odbis/odbis/internal/sql"
	"github.com/odbis/odbis/internal/storage"
	"github.com/odbis/odbis/internal/tenant"
)

// --- re-exported domain types (aliases keep one canonical definition) ---

// Value is a cell value: nil, int64, float64, string, bool, time.Time or
// []byte.
type Value = storage.Value

// Session is an authenticated, tenant-scoped service context exposing the
// five core BI services plus administration.
type Session = services.Session

// UserSpec configures user creation.
type UserSpec = security.UserSpec

// TenantInfo is a tenant account.
type TenantInfo = tenant.Info

// Plan is a subscription tier.
type Plan = tenant.Plan

// QueryResult is the outcome of a SQL query.
type QueryResult = sql.Result

// CubeSpec declares an OLAP cube; CubeQuery navigates it.
type (
	CubeSpec      = olap.CubeSpec
	MeasureSpec   = olap.MeasureSpec
	DimensionSpec = olap.DimensionSpec
	CubeLevelSpec = olap.LevelSpec
	CubeQuery     = olap.Query
	CubeResult    = olap.Result
	LevelRef      = olap.LevelRef
)

// ReportSpec declares a report or dashboard; ReportElement is one block.
type (
	ReportSpec    = report.Spec
	ReportElement = report.Element
	ReportOutput  = report.Output
)

// JobSpec declares an integration job; JobStep one transform.
type (
	JobSpec = services.JobSpec
	JobStep = services.StepSpec
	JobAgg  = services.AggregDecl
)

// StarSpec describes a conceptual star schema for the model-driven
// designer.
type (
	StarSpec          = cwm.StarSpec
	FactSpec          = cwm.FactSpec
	StarMeasureSpec   = cwm.MeasureSpec
	StarDimensionSpec = cwm.DimensionSpec
	StarLevelSpec     = cwm.LevelSpec
	StarAttributeSpec = cwm.AttributeSpec
)

// Model is a metamodel-conforming model (CIM/PIM/PSM viewpoints).
type Model = metamodel.Model

// Ontology types (ODM) for semantic schema integration.
type (
	OntologySpec     = odm.Spec
	OntologyClass    = odm.ClassSpec
	OntologyProperty = odm.PropertySpec
	SchemaMatch      = odm.Match
)

// BuildOntology constructs an ODM ontology and returns its XML export —
// the form Session.SemanticAlign and POST /api/metadata/align accept.
func BuildOntology(spec OntologySpec) (string, error) {
	m, err := spec.Build()
	if err != nil {
		return "", err
	}
	return m.ExportString()
}

// ExplainMatches renders schema matches as a readable table.
func ExplainMatches(matches []SchemaMatch) string { return odm.Explain(matches) }

// BuildResult is the output of a model-driven DW build.
type BuildResult = mddws.BuildResult

// DeliveryFormat selects a client channel encoding.
type DeliveryFormat = services.Format

// Built-in roles, formats and aggregations.
const (
	RoleViewer   = services.RoleViewer
	RoleAnalyst  = services.RoleAnalyst
	RoleDesigner = services.RoleDesigner
	RoleAdmin    = services.RoleAdmin

	FormatText = services.FormatText
	FormatHTML = services.FormatHTML
	FormatCSV  = services.FormatCSV
	FormatJSON = services.FormatJSON

	ChartBar  = report.ChartBar
	ChartLine = report.ChartLine
	ChartPie  = report.ChartPie

	AggSum   = olap.AggSum
	AggAvg   = olap.AggAvg
	AggMin   = olap.AggMin
	AggMax   = olap.AggMax
	AggCount = olap.AggCount
)

// Deliver renders a report output onto w in the given format.
func Deliver(w interface{ Write([]byte) (int, error) }, f DeliveryFormat, out *ReportOutput) error {
	return services.Deliver(w, f, out)
}

// Options configure Open.
type Options struct {
	// DataDir is the durable data directory; empty runs fully in memory.
	DataDir string
	// SyncFull fsyncs the WAL on every commit (durable but slower).
	SyncFull bool
	// AdminUser/AdminPassword seed the first administrator
	// (default admin/admin; set explicitly in production).
	AdminUser     string
	AdminPassword string
	// TokenSecret signs session tokens; random (non-restart-safe) when
	// empty.
	TokenSecret []byte
	// RequestTimeout caps every authenticated HTTP API call: at the
	// deadline the request context is cancelled, in-flight work (SQL
	// scans, cube builds, ETL jobs) aborts at its next checkpoint and
	// rolls back, and the client receives 504 Gateway Timeout. Zero means
	// no server-imposed deadline.
	RequestTimeout time.Duration
	// SchedulerResolution is the integration scheduler's tick interval
	// (default 1s). The scheduler loop is bound to the platform lifetime:
	// Close cancels it and waits for any in-flight job.
	SchedulerResolution time.Duration
	// MaxInFlight bounds concurrently running HTTP API requests (load
	// shedding): beyond it, requests wait up to QueueWait for a slot and
	// are then rejected with 503 + Retry-After. Zero means unlimited.
	// /healthz is exempt.
	MaxInFlight int
	// QueueWait is how long an over-limit request may queue for an
	// admission slot before being shed (0 = shed immediately).
	QueueWait time.Duration
	// SlowRequest logs and counts any request whose trace exceeds this
	// duration (the slow-request log). Zero disables the slow log without
	// disabling tracing.
	SlowRequest time.Duration
	// Replicas runs N in-process WAL-shipped read replicas; SELECTs are
	// served from a healthy, lag-bounded replica with automatic fallback
	// to the primary. Zero (the default) disables replication entirely —
	// reads pay nothing beyond a nil check. Bounds: [0, 16].
	Replicas int
	// ReplicaMaxLag is the routing lag bound in WAL frames: a replica
	// more than this many frames behind the primary serves no reads until
	// it catches up. Zero selects the default (1024).
	ReplicaMaxLag uint64
	// BusDeadLetterCap bounds each bus channel's dead-letter queue
	// (default 128, bounds [1, 65536]); oldest letters drop beyond it.
	BusDeadLetterCap int
	// TraceRingSize bounds the in-memory request-trace history (default
	// 128, bounds [16, 65536]).
	TraceRingSize int
	// ListenProto, when set (host:port; use ":0" for an ephemeral port),
	// serves the binary wire protocol on a TCP listener beside the HTTP
	// API. Protocol sessions authenticate once with a bearer token, then
	// stream framed requests over the open connection; they share the
	// MaxInFlight admission semaphore with HTTP (over-limit requests get
	// a RETRY frame mirroring 503 + Retry-After), respect RequestTimeout,
	// refuse new sessions while readiness is degraded, and route reads
	// through the replica router. The bound address is ProtoAddr().
	ListenProto string
}

// Platform is a running ODBIS instance.
type Platform struct {
	engine    *storage.Engine
	registry  *tenant.Registry
	security  *security.Manager
	services  *services.Platform
	mddws     *mddws.Service
	replicas  *replica.Set
	handler   http.Handler
	netsrv    *netsrv.Server
	protoAddr net.Addr
}

// maxReplicas bounds Options.Replicas: in-process replicas multiply
// memory by full-copy count, so more than a handful is a configuration
// mistake, not a scale-out strategy.
const maxReplicas = 16

// defaultReplicaMaxLag is the routing lag bound when Options.ReplicaMaxLag
// is zero.
const defaultReplicaMaxLag = 1024

// Open boots (or recovers) a platform.
func Open(opts Options) (*Platform, error) {
	if opts.Replicas < 0 || opts.Replicas > maxReplicas {
		return nil, fmt.Errorf("odbis: Replicas %d out of range [0, %d]", opts.Replicas, maxReplicas)
	}
	mode := storage.SyncBuffered
	if opts.SyncFull {
		mode = storage.SyncFull
	}
	engine, err := storage.Open(storage.Options{Dir: opts.DataDir, Sync: mode})
	if err != nil {
		return nil, err
	}
	registry, err := tenant.NewRegistry(engine)
	if err != nil {
		engine.Close()
		return nil, err
	}
	sec, err := security.NewManager(engine, security.Options{TokenSecret: opts.TokenSecret})
	if err != nil {
		engine.Close()
		return nil, err
	}
	svc := services.NewPlatform(registry, sec)
	adminUser, adminPass := opts.AdminUser, opts.AdminPassword
	if adminUser == "" {
		adminUser, adminPass = "admin", "admin"
	}
	if err := svc.Bootstrap(adminUser, adminPass); err != nil {
		engine.Close()
		return nil, fmt.Errorf("odbis: bootstrap: %w", err)
	}
	designer, err := mddws.NewService(engine)
	if err != nil {
		engine.Close()
		return nil, err
	}
	if opts.SlowRequest > 0 {
		obs.SetSlowThreshold(opts.SlowRequest)
	}
	if opts.TraceRingSize > 0 {
		if err := obs.SetTraceRingSize(opts.TraceRingSize); err != nil {
			engine.Close()
			return nil, err
		}
	}
	if opts.BusDeadLetterCap > 0 {
		if err := svc.Bus.SetDeadLetterCap(opts.BusDeadLetterCap); err != nil {
			engine.Close()
			return nil, err
		}
	}
	var replicas *replica.Set
	if opts.Replicas > 0 {
		maxLag := opts.ReplicaMaxLag
		if maxLag == 0 {
			maxLag = defaultReplicaMaxLag
		}
		replicas = replica.New(engine, opts.Replicas, replica.Options{MaxLagFrames: maxLag})
		svc.AttachReplicas(replicas)
	}
	svc.StartScheduler(context.Background(), opts.SchedulerResolution)
	// One admission semaphore serves every front door: HTTP requests and
	// protocol-session requests draw from the same MaxInFlight budget, so
	// total in-flight work stays bounded no matter how traffic splits.
	adm := server.NewAdmission(opts.MaxInFlight, opts.QueueWait)
	p := &Platform{
		engine:   engine,
		registry: registry,
		security: sec,
		services: svc,
		mddws:    designer,
		replicas: replicas,
		handler: server.NewWithOptions(svc, server.Options{
			RequestTimeout: opts.RequestTimeout,
			Admission:      adm,
		}),
	}
	if opts.ListenProto != "" {
		ns := netsrv.New(svc, netsrv.Options{
			RequestTimeout: opts.RequestTimeout,
			Admission:      adm,
			RetryBackoff:   time.Second,
			// New protocol sessions follow the same readiness the HTTP
			// /readyz probe reports: WAL latch healthy, replica fleet not
			// fully tripped.
			Ready: func() bool {
				if !engine.WALHealthy() {
					return false
				}
				return replicas == nil || !replicas.AllTripped()
			},
		})
		addr, err := ns.Listen(opts.ListenProto)
		if err != nil {
			svc.Close()
			engine.Close()
			return nil, fmt.Errorf("odbis: listen-proto: %w", err)
		}
		p.netsrv = ns
		p.protoAddr = addr
	}
	return p, nil
}

// Close stops the platform's background machinery (scheduler loop,
// detached bus deliveries), checkpoints (for durable platforms) and
// releases the engine. No platform goroutine survives Close.
func (p *Platform) Close() error {
	// The protocol listener goes first: it stops accepting, cancels
	// in-flight protocol requests, notifies open sessions with GOAWAY
	// and joins every session goroutine — after it returns, nothing is
	// still submitting work to the services below.
	if p.netsrv != nil {
		p.netsrv.Close()
	}
	// Stop replica followers next: they subscribe to the
	// engine's frame stream and must not observe teardown as a fault.
	if p.replicas != nil {
		p.replicas.Close()
	}
	p.services.Close()
	// Persist any metered usage still pending in memory; losing the final
	// flush would under-bill the current period after a clean shutdown.
	p.registry.FlushUsage()
	if err := p.engine.Checkpoint(); err != nil {
		p.engine.Close()
		return err
	}
	return p.engine.Close()
}

// Login authenticates a user and returns a service session plus a bearer
// token for the HTTP API.
func (p *Platform) Login(username, password string) (*Session, string, error) {
	return p.services.Login(username, password)
}

// Resume rebuilds a session from a bearer token.
func (p *Platform) Resume(token string) (*Session, error) {
	return p.services.Resume(token)
}

// Handler is the HTTP façade (mount it on any mux or server).
func (p *Platform) Handler() http.Handler { return p.handler }

// ProtoAddr is the bound address of the binary protocol listener (nil
// unless Options.ListenProto was set). With ListenProto ":0" this is
// where the ephemeral port lands — dial it with the client package.
func (p *Platform) ProtoAddr() net.Addr { return p.protoAddr }

// ListenAndServe runs the HTTP API on addr (blocking).
func (p *Platform) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, p.handler)
}

// Designer returns the MDDWS model-driven design service.
func (p *Platform) Designer() *mddws.Service { return p.mddws }

// OnEvent subscribes fn to the platform event stream (the service-bus
// channel every service publishes on): job completions, cube builds,
// report executions, tenant administration, access denials. Handlers run
// synchronously on the publishing goroutine.
func (p *Platform) OnEvent(fn func(kind, tenant, subject string)) {
	p.services.OnEvent(func(ev services.Event) {
		fn(ev.Kind, ev.Tenant, ev.Subject)
	})
}

// BuildStar runs the full model-driven pipeline for a conceptual star
// schema: CIM → PIM (OLAP) → PSM (relational + ETL) → DDL/cube/load-plan
// artifacts.
func BuildStar(spec StarSpec) (*BuildResult, error) {
	cim, err := spec.Build()
	if err != nil {
		return nil, err
	}
	return mddws.BuildFromConceptual(cim)
}

// DefinePlan registers a custom subscription plan.
func (p *Platform) DefinePlan(plan Plan) error { return p.registry.DefinePlan(plan) }

// EngineStats reports storage-engine counters (tables, rows, reads,
// writes).
func (p *Platform) EngineStats() storage.Stats { return p.engine.Stats() }

// Checkpoint forces a snapshot + WAL truncation on durable platforms.
func (p *Platform) Checkpoint() error { return p.engine.Checkpoint() }
